//! The future-work collectives in action: a NIC-level barrier and a
//! NIC-level allreduce on the same multicast group, driven through the
//! public API. The whole collective — gathering UP tokens, combining
//! partial values, releasing the result — happens inside the simulated NIC
//! firmware; the hosts only enter and get notified.
//!
//! Run with: `cargo run --release --example nic_collectives`

use std::sync::Mutex;
use std::sync::Arc;

use myri_mcast::gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use myri_mcast::mcast::{
    McastExt, McastNotice, McastRequest, ReduceOp, SpanningTree, TreeShape,
};
use myri_mcast::net::{Fabric, GroupId, NodeId, PortId, Topology};
use myri_mcast::sim::SimTime;

const PORT: PortId = PortId(0);
const GID: GroupId = GroupId(1);
const N: u32 = 8;

struct App {
    me: NodeId,
    tree: SpanningTree,
    phase: u32,
    log: Arc<Mutex<Vec<String>>>,
}

impl HostApp<McastExt> for App {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 8);
        ctx.ext(McastRequest::CreateGroup {
            group: GID,
            port: PORT,
            root: self.tree.root(),
            parent: self.tree.parent(self.me),
            children: self.tree.children(self.me).to_vec(),
        });
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => {
                // Phase 1: everyone meets at a NIC-level barrier.
                ctx.ext(McastRequest::BarrierEnter { group: GID, tag: 1 });
            }
            Notice::Ext(McastNotice::BarrierDone { tag, .. }) => {
                if self.me.0 == 0 {
                    self.log
                        .lock().expect("shared app state mutex poisoned")
                        .push(format!("[{}] barrier {tag} done", ctx.now()));
                }
                self.phase += 1;
                // Phase 2: sum every node's id; phase 3: max of id*id.
                if self.phase == 1 {
                    ctx.ext(McastRequest::AllreduceEnter {
                        group: GID,
                        value: self.me.0 as u64,
                        op: ReduceOp::Sum,
                        tag: 2,
                    });
                }
            }
            Notice::Ext(McastNotice::AllreduceDone { result, tag, .. }) => {
                if self.me.0 == 0 {
                    self.log
                        .lock().expect("shared app state mutex poisoned")
                        .push(format!("[{}] allreduce {tag} => {result}", ctx.now()));
                }
                self.phase += 1;
                if self.phase == 2 {
                    let expect: u64 = (0..N as u64).sum();
                    assert_eq!(result, expect);
                    ctx.ext(McastRequest::AllreduceEnter {
                        group: GID,
                        value: (self.me.0 as u64) * (self.me.0 as u64),
                        op: ReduceOp::Max,
                        tag: 3,
                    });
                } else {
                    assert_eq!(result, ((N - 1) as u64).pow(2));
                }
            }
            _ => {}
        }
    }
}

fn main() {
    let fabric = Fabric::new(Topology::for_nodes(N), 7);
    let dests: Vec<NodeId> = (1..N).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..N {
        cluster.set_app(
            NodeId(i),
            Box::new(App {
                me: NodeId(i),
                tree: tree.clone(),
                phase: 0,
                log: log.clone(),
            }),
        );
    }
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    println!("NIC-level collectives over an {N}-node group (binomial tree):\n");
    for line in log.lock().expect("shared app state mutex poisoned").iter() {
        println!("  {line}");
    }
    println!(
        "\nbarrier -> sum(0..{N}) -> max(i^2), all combined in NIC firmware;\n\
         total simulated time {} (including group setup).",
        eng.now()
    );
    assert!(eng.now() > SimTime::ZERO);
}
