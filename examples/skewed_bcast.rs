//! Process-skew tolerance at the MPI level (the paper's §6.3 headline).
//!
//! Real parallel programs are never perfectly synchronized. With the
//! traditional host-based `MPI_Bcast`, a delayed process stalls its whole
//! subtree, because forwarding happens in the host library. With the
//! NIC-based broadcast the NIC forwards regardless of what the host is
//! doing, so a delayed process hurts nobody but itself.
//!
//! Run with: `cargo run --release --example skewed_bcast`

use myri_mcast::mpi::{execute_mpi, BcastImpl, MpiRun};
use myri_mcast::sim::SimDuration;

fn main() {
    println!("MPI_Bcast host-CPU time under process skew (16 ranks, 4-byte payload)\n");
    println!(
        "{:>14}  {:>16}  {:>16}  {:>8}",
        "avg skew (us)", "host-based (us)", "NIC-based (us)", "factor"
    );
    for avg_skew in [0u64, 50, 100, 200, 400] {
        // Uniform draw on [-2a, +2a] has positive-half mean a.
        let window = SimDuration::from_micros(avg_skew * 4);
        let measure = |b: BcastImpl| {
            let run = MpiRun::bcast_loop(16, 4, b, window, 5, 100);
            execute_mpi(&run).bcast_cpu.mean()
        };
        let hb = measure(BcastImpl::HostBinomial);
        let nb = measure(BcastImpl::NicBased);
        println!("{avg_skew:>14}  {hb:>16.2}  {nb:>16.2}  {:>7.2}x", hb / nb);
    }
    println!(
        "\nHost-based time grows with skew (delayed ancestors block their\n\
         subtrees); NIC-based time stays flat — the message is already sitting\n\
         in host memory when a late process finally calls MPI_Bcast."
    );
}
