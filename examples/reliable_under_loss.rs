//! Reliability demo: multicast over a lossy network.
//!
//! The paper's scheme is *directly* reliable — per-child acknowledged-
//! sequence arrays, timeout, and retransmission only to the children that
//! have not acknowledged, sourced from the registered host-memory replica.
//! This example injects random loss and targeted drops and shows every
//! message still arriving exactly once, in order, with intact payloads
//! (the workload asserts payload length on every delivery).
//!
//! Run with: `cargo run --release --example reliable_under_loss`

use myri_mcast::net::{DropRule, FaultPlan, NodeId};
use myri_mcast::{Scenario, TreeShape};

fn main() {
    println!("NIC-based multicast on a lossy fabric (8 nodes, 2 KB messages)\n");
    println!(
        "{:>18}  {:>12}  {:>14}  {:>10}",
        "fault plan", "latency", "retransmits", "iterations"
    );

    let base = || {
        Scenario::nic_based(8)
            .size(2048)
            .tree(TreeShape::Binomial)
            .warmup(3)
            .iters(50)
    };

    // Clean network.
    let clean = base().run();
    println!(
        "{:>18}  {:>9.2} us  {:>14}  {:>10}",
        "none",
        clean.latency.mean(),
        clean.retransmissions,
        clean.latency.count()
    );
    assert_eq!(clean.retransmissions, 0);

    // Random bit-error-style loss.
    for loss in [0.005f64, 0.02, 0.05] {
        let out = base().loss(loss).run();
        println!(
            "{:>17}%  {:>9.2} us  {:>14}  {:>10}",
            loss * 100.0,
            out.latency.mean(),
            out.retransmissions,
            out.latency.count()
        );
        assert_eq!(out.latency.count(), 50, "all iterations must complete");
    }

    // A targeted burst: drop the next 5 data packets entering node 3.
    let out = base()
        .faults(FaultPlan {
            rules: vec![DropRule {
                dst: Some(NodeId(3)),
                data: Some(true),
                count: 5,
                ..DropRule::default()
            }],
            ..FaultPlan::default()
        })
        .run();
    println!(
        "{:>18}  {:>9.2} us  {:>14}  {:>10}",
        "5-pkt burst @n3",
        out.latency.mean(),
        out.retransmissions,
        out.latency.count()
    );
    assert!(out.retransmissions >= 5);

    println!(
        "\nEvery run delivered all 50 multicasts in order despite the faults;\n\
         each recovery costs roughly one resend timeout (~20 ms, GM-era\n\
         firmware cadence), amortized over the run. Dropped ACKs often heal\n\
         for free through cumulative acknowledgment (the 0.5% row)."
    );
}
