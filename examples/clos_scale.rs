//! Scalability beyond the paper's testbed: the paper evaluated on a
//! 16-node cluster and left large-system scalability as future work ("we
//! intend to study its scalability in large scale systems"). The simulated
//! substrate has no such limit: this example runs the same GM-level
//! comparison over two-level Clos fabrics up to 128 nodes.
//!
//! Run with: `cargo run --release --example clos_scale`

use myri_mcast::net::{TopoKind, Topology};
use myri_mcast::{McastMode, Scenario, TreeShape};

fn main() {
    println!("NIC-based vs host-based multicast at scale (256-byte messages)\n");
    println!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>8}",
        "nodes", "topology", "host-based", "NIC-based", "speedup"
    );
    for n in [8u32, 16, 32, 64, 128] {
        let topo = Topology::for_nodes(n);
        let kind = match topo.kind() {
            TopoKind::SingleCrossbar => "crossbar".to_string(),
            TopoKind::Clos { leaves, spines, .. } => format!("clos {leaves}x{spines}"),
        };
        // TreeShape::auto() accounts for route depth (4 hops cross-leaf in
        // a two-level Clos) when picking the size-adapted tree.
        let measure = |mode: McastMode, shape: TreeShape| {
            let s = match mode {
                McastMode::NicBased => Scenario::nic_based(n),
                McastMode::HostBased => Scenario::host_based(n),
            };
            s.size(256)
                .tree(shape)
                .warmup(3)
                .iters(30)
                .run()
                .latency
                .mean()
        };
        let hb = measure(McastMode::HostBased, TreeShape::Binomial);
        let nb = measure(McastMode::NicBased, TreeShape::auto());
        println!(
            "{n:>6}  {kind:>10}  {:>9.2} us  {:>9.2} us  {:>7.2}x",
            hb,
            nb,
            hb / nb
        );
    }
    println!(
        "\nThe advantage grows with system size: deeper trees mean more\n\
         intermediate hosts removed from the critical path, with no\n\
         centralized resource anywhere in the scheme."
    );
}
