//! Scalability beyond the paper's testbed: the paper evaluated on a
//! 16-node cluster and left large-system scalability as future work ("we
//! intend to study its scalability in large scale systems"). The simulated
//! substrate has no such limit: this example runs the same GM-level
//! comparison over two-level Clos fabrics up to 128 nodes.
//!
//! Run with: `cargo run --release --example clos_scale`

use myri_mcast::gm::GmParams;
use myri_mcast::mcast::{execute, shape_for_size, McastMode, McastRun, TreeShape};
use myri_mcast::net::{NetParams, TopoKind, Topology};

fn main() {
    println!("NIC-based vs host-based multicast at scale (256-byte messages)\n");
    println!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>8}",
        "nodes", "topology", "host-based", "NIC-based", "speedup"
    );
    for n in [8u32, 16, 32, 64, 128] {
        let topo = Topology::for_nodes(n);
        let kind = match topo.kind() {
            TopoKind::SingleCrossbar => "crossbar".to_string(),
            TopoKind::Clos { leaves, spines, .. } => format!("clos {leaves}x{spines}"),
        };
        // Cross-leaf routes have 4 hops in a two-level Clos.
        let hops = if matches!(topo.kind(), TopoKind::SingleCrossbar) {
            2
        } else {
            4
        };
        let shape = shape_for_size(
            256,
            n as usize - 1,
            &GmParams::default(),
            &NetParams::default(),
            hops,
        );
        let measure = |mode: McastMode, shape: TreeShape| {
            let mut run = McastRun::new(n, 256, mode, shape);
            run.warmup = 3;
            run.iters = 30;
            execute(&run).latency.mean()
        };
        let hb = measure(McastMode::HostBased, TreeShape::Binomial);
        let nb = measure(McastMode::NicBased, shape);
        println!(
            "{n:>6}  {kind:>10}  {:>9.2} us  {:>9.2} us  {:>7.2}x",
            hb,
            nb,
            hb / nb
        );
    }
    println!(
        "\nThe advantage grows with system size: deeper trees mean more\n\
         intermediate hosts removed from the critical path, with no\n\
         centralized resource anywhere in the scheme."
    );
}
