//! Quickstart: compare the paper's NIC-based multicast against the
//! traditional host-based multicast on a 16-node simulated Myrinet cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use myri_mcast::gm::GmParams;
use myri_mcast::mcast::{execute, shape_for_size, McastMode, McastRun, TreeShape};
use myri_mcast::net::NetParams;

fn main() {
    println!("NIC-based vs host-based multicast, 16 nodes (simulated Myrinet/GM-2)\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}  {:>16}",
        "size", "host-based", "NIC-based", "speedup", "NB tree (h/fan)"
    );
    for size in [8usize, 128, 1024, 4096, 16384] {
        // The host builds the spanning tree: binomial for the traditional
        // scheme, size-adapted (postal-optimal or pipeline k-ary) for the
        // NIC-based one.
        let nb_shape = shape_for_size(size, 15, &GmParams::default(), &NetParams::default(), 2);

        let mut hb = McastRun::new(16, size, McastMode::HostBased, TreeShape::Binomial);
        hb.warmup = 5;
        hb.iters = 50;
        let hb_out = execute(&hb);

        let mut nb = McastRun::new(16, size, McastMode::NicBased, nb_shape);
        nb.warmup = 5;
        nb.iters = 50;
        let nb_out = execute(&nb);

        println!(
            "{size:>8}  {:>9.2} us  {:>9.2} us  {:>7.2}x  {:>13}",
            hb_out.latency.mean(),
            nb_out.latency.mean(),
            hb_out.latency.mean() / nb_out.latency.mean(),
            format!("{}/{:.1}", nb_out.height, nb_out.avg_fanout),
        );
    }
    println!(
        "\nThe NIC-based scheme wins everywhere: small messages avoid repeated\n\
         send-request processing (multisend), large messages pipeline packet\n\
         by packet through forwarding NICs without host involvement."
    );
}
