//! Quickstart: compare the paper's NIC-based multicast against the
//! traditional host-based multicast on a 16-node simulated Myrinet cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use myri_mcast::{Scenario, TreeShape};

fn main() {
    println!("NIC-based vs host-based multicast, 16 nodes (simulated Myrinet/GM-2)\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}  {:>16}",
        "size", "host-based", "NIC-based", "speedup", "NB tree (h/fan)"
    );
    for size in [8usize, 128, 1024, 4096, 16384] {
        let measure = |s: Scenario, shape: TreeShape| {
            s.size(size).tree(shape).warmup(5).iters(50).run()
        };
        // Binomial for the traditional scheme; TreeShape::auto() resolves to
        // the size-adapted (postal-optimal or pipeline k-ary) tree.
        let hb = measure(Scenario::host_based(16), TreeShape::Binomial);
        let nb = measure(Scenario::nic_based(16), TreeShape::auto());
        println!(
            "{size:>8}  {:>9.2} us  {:>9.2} us  {:>7.2}x  {:>13}",
            hb.latency.mean(),
            nb.latency.mean(),
            hb.latency.mean() / nb.latency.mean(),
            format!("{}/{:.1}", nb.height, nb.avg_fanout),
        );
    }
    println!(
        "\nThe NIC-based scheme wins everywhere: small messages avoid repeated\n\
         send-request processing (multisend), large messages pipeline packet\n\
         by packet through forwarding NICs without host involvement."
    );
}
