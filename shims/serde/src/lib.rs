//! In-tree offline shim for the subset of `serde` this workspace uses:
//! `#[derive(Serialize)]` on plain named-field structs plus enough impls to
//! serialize the benchmark result tables. See README "Offline builds".
//!
//! Instead of serde's visitor architecture, serialization here goes through a
//! simple JSON-shaped [`Value`] tree that `serde_json` (the sibling shim)
//! renders. The `Serialize` name works both as the trait and as the derive
//! macro, exactly like `use serde::Serialize` with the real crate.

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree, the intermediate form of this shim's
/// serialization pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace `key` in a `Map` value. Panics on non-map.
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Map(entries) => {
                if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                    e.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            _ => panic!("Value::insert on non-map"),
        }
    }
}

/// Types convertible to a [`Value`] tree (this shim's `serde::Serialize`).
pub trait Serialize {
    /// Convert to the intermediate value tree.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )* };
}
macro_rules! ser_int {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )* };
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => { $(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_json_value()),+])
            }
        }
    )* };
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
