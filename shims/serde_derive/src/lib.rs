//! In-tree offline shim of `serde_derive`: `#[derive(Serialize)]` for plain
//! named-field structs, written against `proc_macro` directly (no `syn` or
//! `quote`, which are unavailable offline). See README "Offline builds".
//!
//! Supported input shape: `struct Name { field: Ty, ... }` — optionally with
//! field attributes and visibility modifiers, which are skipped. Tuple
//! structs, enums and generics are rejected with a compile error; the
//! workspace only derives on flat result-row structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim trait) for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name>` and the brace-delimited field group.
    let mut name = None;
    let mut fields_group = None;
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                for t in &tokens[i + 1..] {
                    if let TokenTree::Group(g) = t {
                        if g.delimiter() == Delimiter::Brace {
                            fields_group = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
        }
        i += 1;
    }

    let (name, fields_stream) = match (name, fields_group) {
        (Some(n), Some(f)) => (n, f),
        _ => {
            return "compile_error!(\"serde shim: #[derive(Serialize)] supports only \
                    named-field structs\");"
                .parse()
                .expect("valid error tokens")
        }
    };

    let fields = parse_field_names(fields_stream);

    let mut entries = String::new();
    for f in &fields {
        entries.push_str(&format!(
            "(String::from(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f})),"
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extract field names from the body of a named-field struct: skip
/// attributes and visibility, take the identifier before each `:`, then skip
/// to the next top-level comma (types may contain `::` and nested generics,
/// but commas inside `<...>`/`(...)`/`[...]` arrive as part of `Group`s or
/// between matched punct pairs we track by depth).
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes: `#` followed by a bracket group.
        while i + 1 < tokens.len() {
            match (&tokens[i], &tokens[i + 1]) {
                (TokenTree::Punct(p), TokenTree::Group(g))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    i += 2;
                }
                _ => break,
            }
        }
        // Skip visibility: `pub` optionally followed by `(...)`.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        // Field name.
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        fields.push(field.to_string());
        i += 1;
        // Expect `:`; then consume the type up to a comma at angle-depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}
