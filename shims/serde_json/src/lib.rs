//! In-tree offline shim for the subset of `serde_json` this workspace uses:
//! pretty/compact rendering of anything implementing the shim `Serialize`,
//! plus a small strict JSON parser returning [`serde::Value`] (used by the
//! perf-baseline merge in `bench`). See README "Offline builds".

pub use serde::Value;

use std::fmt;

/// Serialization/parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Render `value` as pretty-printed JSON (2-space indent, like serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(0));
    Ok(out)
}

/// Render `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None);
    Ok(out)
}

fn write_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                // serde_json rejects non-finite floats; emit null like
                // serde_json::Value's lossy mode.
                out.push_str("null");
            } else if *x == x.trunc() && x.abs() < 1e16 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    write_indent(out, level + 1);
                    write_value(out, item, Some(level + 1));
                } else {
                    write_value(out, item, None);
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                write_indent(out, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    write_indent(out, level + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    write_value(out, val, Some(level + 1));
                } else {
                    write_json_string(out, k);
                    out.push(':');
                    write_value(out, val, None);
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                write_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document into a [`Value`] tree.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-utf8 number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("non-utf8 string"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Float(1.5), Value::Float(2.0)])),
            ("s".into(), Value::Str("x\"y".into())),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("2.0"));
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested() {
        let v = from_str(r#"{"x": [1, -2, 3.5], "y": {"z": null, "t": true}}"#).unwrap();
        assert_eq!(v.get("x"), Some(&Value::Seq(vec![
            Value::UInt(1),
            Value::Int(-2),
            Value::Float(3.5)
        ])));
        assert_eq!(v.get("y").unwrap().get("t"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.25f64).unwrap(), "2.25");
    }
}
