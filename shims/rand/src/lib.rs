//! In-tree offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The sandboxed build environment has no access to a crates registry, so the
//! workspace vendors a minimal reimplementation instead (see README "Offline
//! builds"). Compatibility matters here: `gm_sim::DetRng` wraps `SmallRng`,
//! and every simulated stochastic draw flows through it, so this shim
//! reproduces rand 0.8's algorithms **bit for bit** for the APIs it exposes:
//!
//! * `SmallRng` is Xoshiro256++ (rand 0.8's 64-bit SmallRng).
//! * `SeedableRng::seed_from_u64` expands the seed with the same PCG32 stream
//!   that `rand_core` 0.6 uses.
//! * `gen::<f64>()` is the 53-bit multiply-based `[0, 1)` sample.
//! * `gen_range` uses widening-multiply rejection sampling with the same zone
//!   computation as rand 0.8's `UniformInt`.
//!
//! Any simulation output produced with the real crate is therefore identical
//! under this shim.

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Construction from seeds (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with PCG32 exactly as
    /// `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        // rand 0.8: one bit from the top of next_u32.
        (rng.next_u32() >> 31) != 0
    }
}

impl SampleStandard for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // Multiply-based [0,1) with 53 bits of precision (rand 0.8 float.rs).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges uniformly samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// Element type produced.
    type Output;

    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! uniform_int_impl {
    ($($ty:ty => $uty:ty),* $(,)?) => {
        $(
            impl SampleRange for core::ops::Range<$ty> {
                type Output = $ty;
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // rand 0.8 UniformInt::sample_single (widened to u64).
                    let range = self.end.wrapping_sub(self.start) as $uty as u64;
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u64();
                        let (hi, lo) = wmul64(v, range);
                        if lo <= zone {
                            return self.start.wrapping_add(hi as $ty);
                        }
                    }
                }
            }

            impl SampleRange for core::ops::RangeInclusive<$ty> {
                type Output = $ty;
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (low, high) = (*self.start(), *self.end());
                    assert!(low <= high, "cannot sample empty range");
                    // rand 0.8 UniformInt::sample_single_inclusive.
                    let range = high.wrapping_sub(low).wrapping_add(1) as $uty as u64;
                    if range == 0 {
                        // The full integer domain.
                        return rng.next_u64() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.next_u64();
                        let (hi, lo) = wmul64(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        )*
    };
}

uniform_int_impl! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

/// Named RNG implementations (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8's 64-bit `SmallRng`: Xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // Xoshiro cannot run from the all-zero state; rand's
                // seed_from_u64 never produces it, but guard direct seeding.
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    0x2545F4914F6CDD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // Xoshiro256++ step (rand_xoshiro 0.6).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn known_answer_seed_expansion() {
        // PCG32 expansion of seed 0 must differ from seed 1's.
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_bounded() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.gen_range(0u64..7) < 7);
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn full_inclusive_i64_range_does_not_loop() {
        let mut r = SmallRng::seed_from_u64(11);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }
}
