//! In-tree offline shim for the subset of `criterion` this workspace uses: a
//! wall-clock microbenchmark harness with warmup, calibrated sample sizes and
//! median-of-samples reporting. See README "Offline builds".
//!
//! Results print to stdout and are merged into
//! `results/criterion_summary.json` at the workspace root so perf-tracking
//! scripts can diff runs. Sample budgets honour `CRITERION_SAMPLE_MS`
//! (default 20 ms per sample) and `CRITERION_SAMPLES` (default 11).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and entry point (mirror of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    results: Vec<BenchResult>,
}

#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    median_ns: f64,
    min_ns: f64,
    throughput: Option<Throughput>,
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes harness-less bench binaries with `--bench`
        // plus any user-supplied filter string.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            filter,
            results: Vec::new(),
        }
    }
}

fn sample_ms() -> u64 {
    std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
}

fn n_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.into(), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.enabled(&name) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        let mut per_iter: Vec<f64> = b.samples;
        if per_iter.is_empty() {
            eprintln!("warning: bench {name} recorded no samples");
            return;
        }
        per_iter.sort_by(|a, x| a.partial_cmp(x).expect("finite sample"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / median * 1e3),
            Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / median * 1e9 / (1 << 20) as f64),
        });
        println!(
            "bench {name:<55} median {:>12} min {:>12}{}",
            fmt_ns(median),
            fmt_ns(min),
            rate.unwrap_or_default()
        );
        self.results.push(BenchResult {
            name,
            median_ns: median,
            min_ns: min,
            throughput,
        });
    }

    /// Write collected results to `results/criterion_summary.json` (merge
    /// with any existing file) and clear the registry. Called by the
    /// `criterion_group!` expansion; harmless to call repeatedly.
    pub fn final_summary(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        let path = std::path::Path::new(root).join("criterion_summary.json");
        let mut doc = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or(serde_json::Value::Map(vec![]));
        if !matches!(doc, serde_json::Value::Map(_)) {
            doc = serde_json::Value::Map(vec![]);
        }
        for r in self.results.drain(..) {
            let mut entry = serde_json::Value::Map(vec![]);
            entry.insert("median_ns", serde_json::Value::Float(r.median_ns));
            entry.insert("min_ns", serde_json::Value::Float(r.min_ns));
            if let Some(Throughput::Elements(n)) = r.throughput {
                entry.insert(
                    "melem_per_s",
                    serde_json::Value::Float(n as f64 / r.median_ns * 1e3),
                );
            }
            doc.insert(&r.name, entry);
        }
        if std::fs::create_dir_all(root).is_ok() {
            if let Ok(s) = serde_json::to_string_pretty(&doc) {
                let _ = std::fs::write(&path, s);
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; this shim sizes samples from
    /// `CRITERION_SAMPLES` / `CRITERION_SAMPLE_MS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.full);
        let throughput = self.throughput;
        self.criterion.run_one(name, throughput, |b| f(b, input));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` repeatedly; the sample budget is calibrated from a
    /// warmup estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: time single calls until 5 ms elapses.
        let warm_start = Instant::now();
        let mut one = Duration::ZERO;
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(5) || warm_iters < 3 {
            let t0 = Instant::now();
            black_box(routine());
            one += t0.elapsed();
            warm_iters += 1;
        }
        let est_ns = (one.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let per_sample = ((sample_ms() as f64 * 1e6 / est_ns) as u64).clamp(1, 100_000_000);
        for _ in 0..n_samples() {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warmup + calibration.
        let mut one = Duration::ZERO;
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(5) || warm_iters < 3 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            one += t0.elapsed();
            warm_iters += 1;
        }
        let est_ns = (one.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let per_sample = ((sample_ms() as f64 * 1e6 / est_ns) as u64).clamp(1, 10_000_000);
        for _ in 0..n_samples() {
            let mut spent = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                spent += t0.elapsed();
            }
            self.samples.push(spent.as_nanos() as f64 / per_sample as f64);
        }
    }
}

/// Declare a benchmark group function (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declare the bench binary's `main` (mirror of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        std::env::set_var("CRITERION_SAMPLES", "3");
        let mut c = Criterion::default();
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1u64 + 1)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns > 0.0);
        c.results.clear();
    }
}
