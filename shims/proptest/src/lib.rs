//! In-tree offline shim for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, range/tuple/`prop_map`/`prop_oneof!` strategies,
//! `collection::{vec, btree_set}`, `any`, and the `prop_assert*` family. See
//! README "Offline builds".
//!
//! Differences from real proptest, deliberately accepted for a sandboxed
//! test environment:
//!
//! * **No shrinking** — a failing case reports its deterministic case index
//!   and re-runs identically (seeds derive from the test's module path), so
//!   failures are reproducible even though they are not minimized.
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning `Err`, which
//!   is equivalent under this runner.

use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG (xoshiro256++ seeded from the test name and
/// case index, so every run draws identical inputs).
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut seed = splitmix(h ^ case.wrapping_mul(0xA24B_AED4_963E_E407));
        let mut s = [0u64; 4];
        for slot in &mut s {
            seed = splitmix(seed);
            *slot = seed;
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply mapping; bias is negligible for test generation.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (mirror of `proptest::strategy::Strategy`;
/// generation only, no shrink tree).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Object-safe strategy view, used by [`Union`] / `prop_oneof!`.
pub trait DynStrategy<V> {
    /// Draw one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `arms`.
    pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

/// Box a strategy for use as a [`Union`] arm, pinning the union's value type
/// to this arm's value type (used by `prop_oneof!`).
pub fn boxed_arm<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
    Box::new(s)
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample_dyn(rng)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => { $(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )* };
}
int_strategy!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => { $(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )* };
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical whole-domain strategy (mirror of `Arbitrary`).
pub trait ArbitraryValue {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($ty:ty),*) => { $(
        impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )* };
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection size specification accepted by [`collection`] strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}
impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}
impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of distinct values from `element`; like proptest, may yield
    /// fewer than the target size if the element domain is small.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let target = self.size.lo + rng.below(span.max(1)) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property-test file needs (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, ArbitraryValue, DynStrategy, Just, ProptestConfig, SizeRange, Strategy, TestRng,
        Union,
    };
}

/// Assert inside a property (panics on failure under this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when a generated input is uninteresting. Must
/// appear at the top level of a `proptest!` body (it early-returns from the
/// case closure, like real proptest's `Err(Reject)`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let mut __arms = vec![$crate::boxed_arm($first)];
        $( __arms.push($crate::boxed_arm($rest)); )*
        $crate::Union::new(__arms)
    }};
}

/// Define property tests (mirror of `proptest::proptest!`).
///
/// Each case's inputs derive deterministically from the test's module path,
/// name and case index, so failures reproduce exactly on re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = __config.cases;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(__test_name, __case as u64);
                    let __run = || {
                        $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                        $body
                    };
                    if let Err(__panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} \
                             (deterministic; rerunning reproduces it)",
                            __test_name,
                            __case + 1,
                            __cases,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (3u32..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5i64..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_set_sizes() {
        let mut rng = TestRng::for_case("sizes", 1);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..100, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s: BTreeSet<u32> =
                crate::collection::btree_set(0u32..1000, 1..8).sample(&mut rng);
            assert!(s.len() < 8);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("same", 3);
        let mut b = TestRng::for_case("same", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("same", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_works(x in 0u64..50, (a, b) in (0u32..10, 1u32..10), v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 50);
            prop_assume!(a != 100); // never rejects
            prop_assert!(b >= 1 && a < 10);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn oneof_and_map(choice in prop_oneof![Just(1u32), Just(2u32), (5u32..8).prop_map(|x| x * 10)]) {
            prop_assert!(choice == 1 || choice == 2 || (50..80).contains(&choice));
        }
    }
}
