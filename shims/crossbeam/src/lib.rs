//! In-tree offline shim for the subset of `crossbeam` this workspace uses:
//! multi-producer multi-consumer channels (`crossbeam::channel`). See README
//! "Offline builds".
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar`; disconnect semantics match
//! crossbeam-channel: `recv` drains remaining messages after all senders
//! drop, then returns `Err(RecvError)`; `send` fails once all receivers are
//! gone.

/// MPMC channels (mirror of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; clonable (consumers compete for messages).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: all receivers disconnected; returns the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error: channel empty and all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Queue `msg`; fails only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.chan
                .queue
                .lock()
                .expect("channel poisoned")
                .push_back(msg);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .ready
                    .wait(queue)
                    .expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.queue.lock().expect("channel poisoned");
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fan_out_fan_in() {
        let (work_tx, work_rx) = channel::unbounded::<u64>();
        let (res_tx, res_rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            work_tx.send(i).unwrap();
        }
        drop(work_tx);
        thread::scope(|s| {
            for _ in 0..4 {
                let rx = work_rx.clone();
                let tx = res_tx.clone();
                s.spawn(move || {
                    while let Ok(x) = rx.recv() {
                        tx.send(x * 2).unwrap();
                    }
                });
            }
            drop(res_tx);
            let mut got: Vec<u64> = res_rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn recv_error_after_senders_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}
