//! In-tree offline shim for the subset of the `bytes` crate this workspace
//! uses: cheaply-clonable immutable byte buffers ([`Bytes`]) and a growable
//! builder ([`BytesMut`]). See README "Offline builds".
//!
//! Semantics match the real crate for the operations exposed: `Bytes` clones
//! and `slice()` share one allocation (reference-counted), `from_static`
//! borrows without allocating, and `BytesMut::freeze` converts without
//! copying more than once.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// A cheaply clonable, sliceable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Borrow a static slice without allocating.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing this buffer's storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice start {begin} > end {end}");
        assert!(end <= len, "slice end {end} out of bounds ({len})");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        let all = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a.as_ref(),
        };
        &all[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[inline]
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[inline]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append `extend` to the end of the buffer.
    #[inline]
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Number of bytes written.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no bytes have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] (single move, no copy).
    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { buf: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds_check() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn static_and_eq() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, b"hello".to_vec());
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2]);
        m.extend_from_slice(&[3]);
        let f = m.freeze();
        assert_eq!(&f[..], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
