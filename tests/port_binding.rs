//! The group's delivery-port binding (protection axis): a multicast group
//! bound to port B must deliver only on port B, even when port A has
//! credits too.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use myri_mcast::gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use myri_mcast::net::{Fabric, GroupId, NodeId, PortId, Topology};

const PA: PortId = PortId(0);
const PB: PortId = PortId(1);

type Log = Arc<Mutex<Vec<(PortId, u64)>>>;

#[test]
fn multicast_groups_deliver_only_on_their_port() {
    use myri_mcast::mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};

    struct GroupHost {
        me: NodeId,
        tree: SpanningTree,
        log: Log,
    }
    impl HostApp<McastExt> for GroupHost {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
            // Credits on both ports; the group is bound to port B.
            ctx.provide_recv(PA, 8);
            ctx.provide_recv(PB, 8);
            ctx.ext(McastRequest::CreateGroup {
                group: GroupId(1),
                port: PB,
                root: NodeId(0),
                parent: self.tree.parent(self.me),
                children: self.tree.children(self.me).to_vec(),
            });
        }
        fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
            match n {
                Notice::Ext(McastNotice::GroupReady { .. }) if self.me.0 == 0 => {
                    ctx.ext(McastRequest::Send {
                        group: GroupId(1),
                        data: Bytes::from_static(b"grp"),
                        tag: 9,
                    });
                }
                Notice::Recv { port, tag, .. } => {
                    self.log.lock().unwrap().push((port, tag));
                }
                _ => {}
            }
        }
    }
    let n = 4u32;
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let logs: Vec<Log> = (0..n).map(|_| Log::default()).collect();
    let mut c = Cluster::new(
        GmParams::default(),
        Fabric::new(Topology::for_nodes(n), 3),
        |_| McastExt::new(),
    );
    for i in 0..n {
        c.set_app(
            NodeId(i),
            Box::new(GroupHost {
                me: NodeId(i),
                tree: tree.clone(),
                log: logs[i as usize].clone(),
            }),
        );
    }
    c.into_engine().run_to_idle();
    for (i, log) in logs.iter().enumerate().skip(1) {
        let got = log.lock().unwrap();
        assert_eq!(got.len(), 1, "node {i}");
        assert_eq!(got[0], (PB, 9), "delivery bound to the group's port");
    }
}
