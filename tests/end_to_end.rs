//! Workspace-level integration tests: every layer of the stack exercised
//! together, from the event engine up through the MPI library.

use myri_mcast::mcast::{execute_max_over_probes, AckMode, McastMode, McastRun, TreeShape};
use myri_mcast::mpi::{execute_mpi, BcastImpl, MpiOp, MpiRun};
use myri_mcast::net::FaultPlan;
use myri_mcast::sim::SimDuration;
use myri_mcast::Scenario;

fn scenario(mode: McastMode, n: u32) -> Scenario {
    match mode {
        McastMode::NicBased => Scenario::nic_based(n),
        McastMode::HostBased => Scenario::host_based(n),
    }
}

#[test]
fn nic_beats_host_across_the_size_spectrum_16_nodes() {
    for size in [8usize, 256, 1024, 8192, 16384] {
        let m = |mode: McastMode, shape: TreeShape| {
            scenario(mode, 16)
                .size(size)
                .tree(shape)
                .warmup(3)
                .iters(20)
                .run()
                .latency
                .mean()
        };
        let hb = m(McastMode::HostBased, TreeShape::Binomial);
        let nb = m(McastMode::NicBased, TreeShape::auto());
        assert!(
            nb < hb,
            "size {size}: NIC-based ({nb:.1}us) must beat host-based ({hb:.1}us)"
        );
    }
}

#[test]
fn multisend_improvement_shape_matches_fig3() {
    // Improvement factor decays with size and levels off around 1.
    let m = |size: usize, mode: McastMode| {
        scenario(mode, 5)
            .size(size)
            .tree(TreeShape::Flat)
            .ack(AckMode::NicAck)
            .warmup(3)
            .iters(20)
            .run()
            .latency
            .mean()
    };
    let small = m(8, McastMode::HostBased) / m(8, McastMode::NicBased);
    let mid = m(512, McastMode::HostBased) / m(512, McastMode::NicBased);
    let large = m(16384, McastMode::HostBased) / m(16384, McastMode::NicBased);
    assert!(small > 1.5, "small-message multisend factor was {small:.2}");
    assert!(mid < small, "factor must decay with size");
    assert!(
        (0.9..=1.1).contains(&large),
        "large messages level off near 1, got {large:.2}"
    );
}

#[test]
fn gm_level_dip_exists_at_2_to_4_kb() {
    let factor = |size: usize| {
        let m = |mode: McastMode, s: TreeShape| {
            scenario(mode, 16)
                .size(size)
                .tree(s)
                .warmup(3)
                .iters(15)
                .run()
                .latency
                .mean()
        };
        m(McastMode::HostBased, TreeShape::Binomial) / m(McastMode::NicBased, TreeShape::auto())
    };
    let small = factor(64);
    let dip = factor(4096).min(factor(2048));
    let large = factor(16384);
    assert!(
        dip < small && dip < large,
        "2-4KB dip missing: small {small:.2}, dip {dip:.2}, large {large:.2}"
    );
}

#[test]
fn max_over_probes_dominates_single_probe() {
    let built = Scenario::nic_based(8)
        .size(4096)
        .tree(TreeShape::Binomial)
        .warmup(2)
        .iters(10)
        .build()
        .expect("valid scenario");
    let max = execute_max_over_probes(built.spec()).latency.mean();
    let single = built.run().latency.mean();
    assert!(max >= single * 0.999, "max {max:.2} vs single {single:.2}");
}

#[test]
fn multicast_survives_combined_loss_and_corruption() {
    let out = Scenario::nic_based(12)
        .size(6000)
        .tree(TreeShape::Binomial)
        .warmup(2)
        .iters(25)
        .faults(FaultPlan {
            drop_prob: 0.02,
            corrupt_prob: 0.01,
            rules: vec![],
        })
        .run();
    assert_eq!(out.latency.count(), 25, "all iterations delivered");
    assert!(out.retransmissions > 0);
}

#[test]
fn mpi_bcast_agrees_between_algorithms_and_scales() {
    for n in [4u32, 8, 16] {
        let m = |b: BcastImpl| {
            let run = MpiRun::bcast_loop(n, 1024, b, SimDuration::ZERO, 3, 15);
            execute_mpi(&run).latency.mean()
        };
        let hb = m(BcastImpl::HostBinomial);
        let nb = m(BcastImpl::NicBased);
        assert!(nb < hb, "n={n}: MPI NIC-based must win ({nb:.1} vs {hb:.1})");
    }
}

#[test]
fn mpi_skew_tolerance_grows_with_skew() {
    let cpu = |b: BcastImpl, avg_us: u64| {
        let run = MpiRun::bcast_loop(
            16,
            4,
            b,
            SimDuration::from_micros(avg_us * 4),
            3,
            40,
        );
        execute_mpi(&run).bcast_cpu.mean()
    };
    let f100 = cpu(BcastImpl::HostBinomial, 100) / cpu(BcastImpl::NicBased, 100);
    let f400 = cpu(BcastImpl::HostBinomial, 400) / cpu(BcastImpl::NicBased, 400);
    assert!(f100 > 1.5, "skew factor at 100us was {f100:.2}");
    assert!(f400 > f100, "factor must grow with skew: {f400:.2} vs {f100:.2}");
}

#[test]
fn mpi_rendezvous_broadcast_falls_back_to_host_based() {
    // Above the eager limit both algorithms take the host-based rendezvous
    // path, so their latencies must be identical.
    let m = |b: BcastImpl| {
        let run = MpiRun::bcast_loop(8, 40_000, b, SimDuration::ZERO, 2, 8);
        execute_mpi(&run).latency.mean()
    };
    let hb = m(BcastImpl::HostBinomial);
    let nb = m(BcastImpl::NicBased);
    assert!(
        (hb - nb).abs() / hb < 1e-9,
        "rendezvous sizes must be identical: {hb:.2} vs {nb:.2}"
    );
}

#[test]
fn mpi_point_to_point_ring_eager_and_rendezvous() {
    // A 4-rank ring of sends/recvs in both protocol regimes; even ranks
    // send first, odd ranks receive first (classic deadlock-free ring).
    for size in [512usize, 64_000] {
        let n = 4u32;
        let mut rank_ops = Vec::new();
        for me in 0..n {
            let to = (me + 1) % n;
            let from = (me + n - 1) % n;
            let mut ops = vec![MpiOp::Barrier];
            if me % 2 == 0 {
                ops.push(MpiOp::Send { to, size, tag: 7 });
                ops.push(MpiOp::Recv { from, tag: 7 });
            } else {
                ops.push(MpiOp::Recv { from, tag: 7 });
                ops.push(MpiOp::Send { to, size, tag: 7 });
            }
            rank_ops.push(ops);
        }
        let mut run =
            MpiRun::bcast_loop(n, size, BcastImpl::HostBinomial, SimDuration::ZERO, 0, 3);
        run.ops = vec![MpiOp::Barrier];
        run.rank_ops = Some(rank_ops);
        // Completing at all (engine goes idle, no deadlock, all barriers
        // passed) is the assertion; execute_mpi panics otherwise.
        let out = execute_mpi(&run);
        assert!(out.end_time > myri_mcast::sim::SimTime::ZERO);
    }
}

#[test]
fn multicast_to_an_arbitrary_subset_of_nodes() {
    // The paper: the NIC-based scheme with an optimal tree supports
    // "multicast to an arbitrary set of nodes in a system". Build a sparse
    // group on a 16-node cluster and check only members hear anything.
    use myri_mcast::net::NodeId;
    let out = Scenario::nic_based(16)
        .size(700)
        .tree(TreeShape::Binomial)
        .dests(vec![NodeId(2), NodeId(5), NodeId(9), NodeId(13)])
        .probe_node(NodeId(13))
        .warmup(2)
        .iters(10)
        .run();
    assert_eq!(out.latency.count(), 10);
    // Sparse group of 5 total members: binomial height 3.
    assert!(out.height <= 3);
    // Compare against the full-cluster group: fewer members, lower latency.
    let full = Scenario::nic_based(16)
        .size(700)
        .tree(TreeShape::Binomial)
        .warmup(2)
        .iters(10)
        .run();
    assert!(out.latency.mean() < full.latency.mean());
}

#[test]
fn non_members_never_see_group_traffic() {
    use myri_mcast::net::NodeId;
    let mut run = McastRun::new(8, 256, McastMode::NicBased, TreeShape::Flat);
    run.dests = vec![NodeId(3), NodeId(6)];
    run.probe = NodeId(6);
    run.warmup = 1;
    run.iters = 5;
    let (cluster, shared) = myri_mcast::mcast::build_cluster(&run);
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    assert_eq!(shared.lock().unwrap().iters_done, 5);
    // Nodes outside the group processed zero multicast receptions.
    for i in [1u32, 2, 4, 5, 7] {
        let c = &eng.world().nic(NodeId(i)).counters;
        assert_eq!(c.get("mcast_rx"), 0, "non-member {i} saw group traffic");
        assert_eq!(c.get("mcast_delivered"), 0);
    }
}

#[test]
fn deprecated_execute_shim_matches_scenario() {
    // The pre-redesign entry point still works and agrees with the builder.
    let mut run = McastRun::new(8, 1024, McastMode::NicBased, TreeShape::Binomial);
    run.warmup = 2;
    run.iters = 10;
    #[allow(deprecated)]
    let legacy = myri_mcast::mcast::execute(&run);
    let new = Scenario::nic_based(8)
        .size(1024)
        .tree(TreeShape::Binomial)
        .warmup(2)
        .iters(10)
        .run();
    assert_eq!(legacy.latency.mean().to_bits(), new.latency.mean().to_bits());
    assert_eq!(legacy.events, new.events);
}
