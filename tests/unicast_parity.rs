//! The paper's §6.1 claim as a test: "Our modification to GM was done by
//! leaving the code for other types of communications mostly unchanged. The
//! evaluation indicated that it has no noticeable impact on the performance
//! of non-multicast communications."
//!
//! We run identical unicast workloads on the unmodified firmware (`NoExt`)
//! and with the multicast extension installed (idle group present) and
//! require the timelines to be bit-identical.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use myri_mcast::gm::{Cluster, GmParams, HostApp, HostCtx, NicExtension, NoExt, Notice};
use myri_mcast::mcast::{McastExt, McastRequest};
use myri_mcast::net::{Fabric, GroupId, NodeId, PortId, Topology};
use myri_mcast::sim::SimTime;

const P0: PortId = PortId(0);

struct Pinger {
    size: usize,
    remaining: u32,
    times: Arc<Mutex<Vec<SimTime>>>,
}

impl<X: NicExtension> HostApp<X> for Pinger {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, X>) {
        ctx.provide_recv(P0, 2);
        ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), 0);
    }
    fn on_notice(&mut self, n: Notice<X::Notice>, ctx: &mut HostCtx<'_, X>) {
        if let Notice::Recv { .. } = n {
            self.times.lock().unwrap().push(ctx.now());
            self.remaining -= 1;
            ctx.provide_recv(P0, 1);
            if self.remaining > 0 {
                ctx.send(NodeId(1), P0, P0, Bytes::from(vec![0; self.size]), 0);
            }
        }
    }
}

struct Echo {
    size: usize,
}

impl<X: NicExtension> HostApp<X> for Echo {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, X>) {
        ctx.provide_recv(P0, 2);
    }
    fn on_notice(&mut self, n: Notice<X::Notice>, ctx: &mut HostCtx<'_, X>) {
        if let Notice::Recv { .. } = n {
            ctx.provide_recv(P0, 1);
            ctx.send(NodeId(0), P0, P0, Bytes::from(vec![0; self.size]), 0);
        }
    }
}

/// Wraps the pinger and additionally installs an idle multicast group.
struct PingerWithGroup(Pinger);

impl HostApp<McastExt> for PingerWithGroup {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.ext(McastRequest::CreateGroup {
            group: GroupId(1),
            port: P0,
            root: NodeId(0),
            parent: None,
            children: vec![NodeId(1)],
        });
        HostApp::<McastExt>::on_start(&mut self.0, ctx);
    }
    fn on_notice(
        &mut self,
        n: Notice<<McastExt as NicExtension>::Notice>,
        ctx: &mut HostCtx<'_, McastExt>,
    ) {
        self.0.on_notice(n, ctx);
    }
}

#[test]
fn idle_multicast_firmware_leaves_unicast_timelines_bit_identical() {
    for size in [1usize, 512, 4096, 16384] {
        let baseline = {
            let times = Arc::new(Mutex::new(Vec::new()));
            let mut c = Cluster::new(
                GmParams::default(),
                Fabric::new(Topology::for_nodes(2), 1),
                |_| NoExt,
            );
            c.set_app(
                NodeId(0),
                Box::new(Pinger {
                    size,
                    remaining: 25,
                    times: times.clone(),
                }),
            );
            c.set_app(NodeId(1), Box::new(Echo { size }));
            c.into_engine().run_to_idle();
            let t = times.lock().unwrap().clone();
            t
        };
        let with_ext = {
            let times = Arc::new(Mutex::new(Vec::new()));
            let mut c = Cluster::new(
                GmParams::default(),
                Fabric::new(Topology::for_nodes(2), 1),
                |_| McastExt::new(),
            );
            c.set_app(
                NodeId(0),
                Box::new(PingerWithGroup(Pinger {
                    size,
                    remaining: 25,
                    times: times.clone(),
                })),
            );
            c.set_app(NodeId(1), Box::new(Echo { size }));
            c.into_engine().run_to_idle();
            let t = times.lock().unwrap().clone();
            t
        };
        assert_eq!(baseline.len(), 25);
        // Group installation happens concurrently with the first ping, so
        // the first RTT may shift by the (sub-microsecond) host post; every
        // steady-state round trip must be bit-identical.
        let base_gaps: Vec<_> = baseline.windows(2).map(|w| w[1] - w[0]).collect();
        let ext_gaps: Vec<_> = with_ext.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(
            base_gaps, ext_gaps,
            "size {size}: multicast firmware perturbed unicast timing"
        );
    }
}
