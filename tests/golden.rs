//! Golden regression tests: exact, seed-pinned numbers from the protocol
//! stack. These exist to catch *accidental* behaviour changes — any
//! deliberate protocol or calibration change is expected to update them
//! (and should be cross-checked against EXPERIMENTS.md when it does).

use myri_mcast::gm::GmParams;
use myri_mcast::mcast::{McastMode, TreeShape};
use myri_mcast::mpi::{execute_mpi, BcastImpl, MpiRun};
use myri_mcast::sim::SimDuration;
use myri_mcast::Scenario;

fn mcast(n: u32, size: usize, mode: McastMode, shape: TreeShape) -> f64 {
    let s = match mode {
        McastMode::NicBased => Scenario::nic_based(n),
        McastMode::HostBased => Scenario::host_based(n),
    };
    s.size(size).tree(shape).warmup(5).iters(20).run().latency.mean()
}

#[test]
fn golden_gm_level_multicast_latencies() {
    // NIC-based, binomial tree, default seed and calibration.
    let cases = [
        (8u32, 64usize, McastMode::NicBased, 18.748),
        (16, 64, McastMode::NicBased, 20.600),
        (16, 4096, McastMode::NicBased, 103.032),
        (8, 64, McastMode::HostBased, 30.820),
        (16, 64, McastMode::HostBased, 38.658),
        (16, 4096, McastMode::HostBased, 174.850),
    ];
    for (n, size, mode, expect) in cases {
        let got = mcast(n, size, mode, TreeShape::Binomial);
        assert!(
            (got - expect).abs() < 0.01,
            "{mode:?} n={n} size={size}: got {got:.3}, golden {expect:.3}"
        );
    }
}

#[test]
fn golden_runs_are_bit_stable() {
    // The full output (not just the mean) is identical across process runs.
    let run = || {
        let out = Scenario::nic_based(12)
            .size(2048)
            .tree(TreeShape::KAry(2))
            .warmup(3)
            .iters(15)
            .run();
        (
            out.latency.mean().to_bits(),
            out.latency_p99.to_bits(),
            out.events,
            out.end_time,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn golden_mpi_bcast_latency() {
    let run = MpiRun::bcast_loop(8, 1024, BcastImpl::NicBased, SimDuration::ZERO, 3, 15);
    let got = execute_mpi(&run).latency.mean();
    let expect = 34.666;
    assert!(
        (got - expect).abs() < 0.01,
        "MPI NB 8x1024: got {got:.3}, golden {expect:.3}"
    );
}

#[test]
fn golden_calibration_constants_unchanged() {
    // The headline claims in EXPERIMENTS.md assume these defaults.
    let p = GmParams::default();
    assert_eq!(p.pci_bandwidth, 450_000_000);
    assert_eq!(p.send_token_proc.as_nanos(), 3_200);
    assert_eq!(p.callback_proc.as_nanos(), 450);
    assert_eq!(p.timeout.as_nanos(), 20_000_000);
    assert_eq!(myri_mcast::net::MTU, 4096);
    assert_eq!(myri_mcast::gm::EAGER_LIMIT, 16_287);
}
