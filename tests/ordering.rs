//! Ordering and concurrency guarantees of the NIC-based multicast, driven
//! through the public API with hand-rolled host applications.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use myri_mcast::gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use myri_mcast::mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};
use myri_mcast::net::{Fabric, FaultPlan, GroupId, NetParams, NodeId, PortId, Topology};
use myri_mcast::sim::SimTime;

const PORT: PortId = PortId(0);

type DeliveryLog = Arc<Mutex<Vec<(u64, Bytes)>>>;

/// Root app: installs its group entry and fires `count` back-to-back
/// multicasts without waiting for anything.
struct BurstRoot {
    gid: GroupId,
    tree: SpanningTree,
    count: u64,
    done: Arc<Mutex<u64>>,
}

impl HostApp<McastExt> for BurstRoot {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.ext(McastRequest::CreateGroup {
            group: self.gid,
            port: PORT,
            root: self.tree.root(),
            parent: None,
            children: self.tree.children(self.tree.root()).to_vec(),
        });
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => {
                // Fire the whole burst at once: messages of different sizes
                // (some multi-packet) must still arrive in post order.
                for i in 0..self.count {
                    let len = 100 + (i as usize * 2309) % 9000;
                    let fill = (i % 251) as u8;
                    ctx.ext(McastRequest::Send {
                        group: self.gid,
                        data: Bytes::from(vec![fill; len]),
                        tag: i,
                    });
                }
            }
            Notice::Ext(McastNotice::SendDone { .. }) => {
                *self.done.lock().unwrap() += 1;
            }
            _ => {}
        }
    }
}

/// Destination app: installs its entry and logs every delivery.
struct Logger {
    gid: GroupId,
    tree: SpanningTree,
    me: NodeId,
    log: DeliveryLog,
}

impl HostApp<McastExt> for Logger {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 64);
        ctx.ext(McastRequest::CreateGroup {
            group: self.gid,
            port: PORT,
            root: self.tree.root(),
            parent: Some(self.tree.parent(self.me).expect("non-root")),
            children: self.tree.children(self.me).to_vec(),
        });
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if let Notice::Recv { tag, data, .. } = n {
            ctx.provide_recv(PORT, 1);
            self.log.lock().unwrap().push((tag, data));
        }
    }
}

fn burst_cluster(
    n: u32,
    shape: TreeShape,
    count: u64,
    faults: FaultPlan,
) -> (Cluster<McastExt>, Vec<DeliveryLog>, Arc<Mutex<u64>>) {
    let topo = Topology::for_nodes(n);
    let fabric = Fabric::with_config(topo, NetParams::default(), faults, 77);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, shape);
    let gid = GroupId(9);
    let done = Arc::new(Mutex::new(0u64));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    cluster.set_app(
        NodeId(0),
        Box::new(BurstRoot {
            gid,
            tree: tree.clone(),
            count,
            done: done.clone(),
        }),
    );
    let mut logs = Vec::new();
    for &d in &dests {
        let log: DeliveryLog = Arc::default();
        logs.push(log.clone());
        cluster.set_app(
            d,
            Box::new(Logger {
                gid,
                tree: tree.clone(),
                me: d,
                log,
            }),
        );
    }
    (cluster, logs, done)
}

fn assert_burst_delivery(logs: &[DeliveryLog], count: u64) {
    for (i, log) in logs.iter().enumerate() {
        let log = log.lock().unwrap();
        assert_eq!(
            log.len(),
            count as usize,
            "destination {} received {} of {count} messages",
            i + 1,
            log.len()
        );
        for (k, (tag, data)) in log.iter().enumerate() {
            assert_eq!(*tag, k as u64, "delivery order violated at dest {}", i + 1);
            let expect_len = 100 + (k * 2309) % 9000;
            assert_eq!(data.len(), expect_len, "length corrupted");
            let fill = (k % 251) as u8;
            assert!(
                data.iter().all(|&b| b == fill),
                "payload corrupted at dest {} msg {k}",
                i + 1
            );
        }
    }
}

#[test]
fn burst_of_mixed_size_multicasts_arrives_in_order_everywhere() {
    for shape in [TreeShape::Binomial, TreeShape::Flat, TreeShape::Chain, TreeShape::KAry(2)] {
        let (cluster, logs, done) = burst_cluster(8, shape, 12, FaultPlan::none());
        let mut eng = cluster.into_engine();
        eng.run_to_idle();
        assert_burst_delivery(&logs, 12);
        assert_eq!(*done.lock().unwrap(), 12, "root must see every SendDone");
    }
}

#[test]
fn burst_survives_random_loss_in_order() {
    let (cluster, logs, done) = burst_cluster(8, TreeShape::Binomial, 10, FaultPlan::with_loss(0.03));
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    assert_burst_delivery(&logs, 10);
    assert_eq!(*done.lock().unwrap(), 10);
    // Loss must actually have occurred for this test to mean anything.
    let dropped: u64 = eng.world().fabric().counters().get("dropped_random");
    assert!(dropped > 0, "expected some loss at 3%");
}

#[test]
fn two_concurrent_groups_with_interleaved_membership() {
    // Group A: root 0 over 1..8; group B: root 7 over 0..7. Both burst at
    // once; every member of each group gets each group's messages in order.
    let n = 8u32;
    let topo = Topology::for_nodes(n);
    let fabric = Fabric::with_config(topo, NetParams::default(), FaultPlan::none(), 5);
    let dests_a: Vec<NodeId> = (1..n).map(NodeId).collect();
    let dests_b: Vec<NodeId> = (0..7).map(NodeId).collect();
    let tree_a = SpanningTree::build(NodeId(0), &dests_a, TreeShape::Binomial);
    let tree_b = SpanningTree::build(NodeId(7), &dests_b, TreeShape::Binomial);
    let (ga, gb) = (GroupId(1), GroupId(2));

    /// Member of both groups; roots of one group are members of the other.
    struct DualApp {
        me: NodeId,
        ga: GroupId,
        gb: GroupId,
        tree_a: SpanningTree,
        tree_b: SpanningTree,
        count: u64,
        log: DeliveryLog,
        ready: u32,
    }
    impl HostApp<McastExt> for DualApp {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
            ctx.provide_recv(PORT, 64);
            let install = |ctx: &mut HostCtx<'_, McastExt>, gid, tree: &SpanningTree, me| {
                if tree.root() == me {
                    ctx.ext(McastRequest::CreateGroup {
                        group: gid,
                        port: PORT,
                        root: me,
                        parent: None,
                        children: tree.children(me).to_vec(),
                    });
                } else {
                    ctx.ext(McastRequest::CreateGroup {
                        group: gid,
                        port: PORT,
                        root: tree.root(),
                        parent: Some(tree.parent(me).expect("member")),
                        children: tree.children(me).to_vec(),
                    });
                }
            };
            install(ctx, self.ga, &self.tree_a.clone(), self.me);
            install(ctx, self.gb, &self.tree_b.clone(), self.me);
        }
        fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
            match n {
                Notice::Ext(McastNotice::GroupReady { .. }) => {
                    self.ready += 1;
                    if self.ready == 2 {
                        let my_group = if self.me == self.tree_a.root() {
                            Some(self.ga)
                        } else if self.me == self.tree_b.root() {
                            Some(self.gb)
                        } else {
                            None
                        };
                        if let Some(g) = my_group {
                            for i in 0..self.count {
                                ctx.ext(McastRequest::Send {
                                    group: g,
                                    data: Bytes::from(vec![g.0 as u8; 500]),
                                    tag: i,
                                });
                            }
                        }
                    }
                }
                Notice::Recv { tag, data, .. } => {
                    ctx.provide_recv(PORT, 1);
                    self.log.lock().unwrap().push((tag, data));
                }
                _ => {}
            }
        }
    }

    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    let mut logs: Vec<DeliveryLog> = Vec::new();
    for i in 0..n {
        let log: DeliveryLog = Arc::default();
        logs.push(log.clone());
        cluster.set_app(
            NodeId(i),
            Box::new(DualApp {
                me: NodeId(i),
                ga,
                gb,
                tree_a: tree_a.clone(),
                tree_b: tree_b.clone(),
                count: 6,
                log,
                ready: 0,
            }),
        );
    }
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    assert!(eng.now() > SimTime::ZERO);
    for (i, log) in logs.iter().enumerate() {
        let log = log.lock().unwrap();
        // Node 0 only receives group B (6 msgs); node 7 only group A; the
        // rest receive both (12).
        let expect = if i == 0 || i == 7 { 6 } else { 12 };
        assert_eq!(log.len(), expect, "node {i}");
        // Per-group delivery order is preserved.
        for g in [1u8, 2] {
            let tags: Vec<u64> = log
                .iter()
                .filter(|(_, d)| d.first() == Some(&g))
                .map(|(t, _)| *t)
                .collect();
            if !tags.is_empty() {
                assert_eq!(tags, (0..6).collect::<Vec<u64>>(), "node {i} group {g}");
            }
        }
    }
}

#[test]
fn scarce_receive_credits_recover_via_retransmission() {
    // Destinations prepost only 2 credits for a 12-message burst and
    // replenish one per delivery: the NIC must drop messages without
    // tokens and recover them on the root's timeout, preserving order.
    let n = 4u32;
    let topo = Topology::for_nodes(n);
    let fabric = Fabric::new(topo, 3);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Flat);
    let gid = GroupId(4);
    let done = Arc::new(Mutex::new(0u64));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    cluster.set_app(
        NodeId(0),
        Box::new(BurstRoot {
            gid,
            tree: tree.clone(),
            count: 12,
            done: done.clone(),
        }),
    );

    struct StingyLogger {
        inner: Logger,
    }
    impl HostApp<McastExt> for StingyLogger {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
            ctx.provide_recv(PORT, 1);
            ctx.ext(McastRequest::CreateGroup {
                group: self.inner.gid,
                port: PORT,
                root: self.inner.tree.root(),
                parent: Some(self.inner.tree.parent(self.inner.me).expect("non-root")),
                children: self.inner.tree.children(self.inner.me).to_vec(),
            });
        }
        fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
            if let Notice::Recv { tag, data, .. } = n {
                self.inner.log.lock().unwrap().push((tag, data));
                // Dawdle before reposting the credit so the next message
                // finds the pool empty and must be recovered by timeout.
                ctx.compute(myri_mcast::sim::SimDuration::from_micros(40), 1_000_000);
                ctx.provide_recv(PORT, 1);
            }
        }
    }

    let mut logs = Vec::new();
    for &d in &dests {
        let log: DeliveryLog = Arc::default();
        logs.push(log.clone());
        cluster.set_app(
            d,
            Box::new(StingyLogger {
                inner: Logger {
                    gid,
                    tree: tree.clone(),
                    me: d,
                    log,
                },
            }),
        );
    }
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    assert_burst_delivery(&logs, 12);
    assert_eq!(*done.lock().unwrap(), 12);
    let token_drops: u64 = (1..n)
        .map(|i| eng.world().nic(NodeId(i)).counters.get("rx_drop_no_token"))
        .sum();
    assert!(token_drops > 0, "the credit wall must have been hit");
}
