#!/usr/bin/env bash
# Repo gate: tier-1 (release build + root test suite), the full workspace
# test matrix, and clippy with warnings-as-errors.
#
# Every dependency resolves to an in-tree shim crate under shims/ (see
# README "Offline builds"), so the whole gate runs with no network access.
# Pass --offline (or export CARGO_NET_OFFLINE=true) to forbid registry
# access outright; the script also falls back to --offline by itself when
# the registry is unreachable.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]] || [[ "${CARGO_NET_OFFLINE:-}" == "true" ]]; then
  CARGO_FLAGS+=(--offline)
elif ! cargo fetch --quiet >/dev/null 2>&1; then
  echo "ci: registry unreachable, continuing with --offline"
  CARGO_FLAGS+=(--offline)
fi

run() {
  echo "+ cargo $*"
  cargo "$@"
}

# Tier-1: release build + root test suite.
run build --release "${CARGO_FLAGS[@]}"
run test -q "${CARGO_FLAGS[@]}"

# Full workspace suites (unit + integration + property tests, incl. shims).
run test -q --workspace "${CARGO_FLAGS[@]}"

# Lints: the tree stays warning-free.
run clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

# Blocking determinism/unit-safety gate (see DESIGN.md "Static invariants").
# Writes the machine-readable report to results/simlint_report.json.
run run -q -p simlint "${CARGO_FLAGS[@]}" -- --workspace
echo "ci: simlint report at results/simlint_report.json"

echo "ci: all green"
