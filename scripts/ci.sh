#!/usr/bin/env bash
# Repo gate: tier-1 (release build + root test suite), the full workspace
# test matrix, and clippy with warnings-as-errors.
#
# Every dependency resolves to an in-tree shim crate under shims/ (see
# README "Offline builds"), so the whole gate runs with no network access.
# Pass --offline (or export CARGO_NET_OFFLINE=true) to forbid registry
# access outright; the script also falls back to --offline by itself when
# the registry is unreachable.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]] || [[ "${CARGO_NET_OFFLINE:-}" == "true" ]]; then
  CARGO_FLAGS+=(--offline)
elif ! cargo fetch --quiet >/dev/null 2>&1; then
  echo "ci: registry unreachable, continuing with --offline"
  CARGO_FLAGS+=(--offline)
fi

run() {
  echo "+ cargo $*"
  cargo "$@"
}

# Tier-1: release build + root test suite.
run build --release "${CARGO_FLAGS[@]}"
run test -q "${CARGO_FLAGS[@]}"

# Full workspace suites (unit + integration + property tests, incl. shims).
run test -q --workspace "${CARGO_FLAGS[@]}"

# Lints: the tree stays warning-free.
run clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

# Blocking determinism/unit-safety gate (see DESIGN.md "Static invariants").
# Writes the machine-readable report to results/simlint_report.json.
# Includes the probe-unique rule: ProbeId names stay unique workspace-wide.
run run -q -p simlint "${CARGO_FLAGS[@]}" -- --workspace
echo "ci: simlint report at results/simlint_report.json"

# Model-checking gate: exhaustively explore the CI configuration (3 nodes,
# window 2, loss budget 2, plus dup/reorder/crash budgets) of the reliable-
# multicast protocol and fail on any invariant violation or deadlock. The
# run is deterministic (fixed BFS order) and bounded by a state-count and
# wall budget; it writes results/simcheck_report.json (DESIGN.md §13).
run run -q --release -p simcheck "${CARGO_FLAGS[@]}" -- --ci
echo "ci: simcheck report at results/simcheck_report.json"

# Observability gate: one probed run must export a Perfetto-loadable Chrome
# trace-event document (--check re-parses it and validates ph/ts/pid/tid,
# B/E balance and per-track timestamp monotonicity) with the attribution
# buckets summing to the measured mean.
run run -q --release -p bench "${CARGO_FLAGS[@]}" --bin trace_explore -- \
  --nodes 16 --size 4096 --mode nic --shape adaptive --check
echo "ci: trace schema OK (results/trace_nic_16n_4096B.json)"

# Causal-tracing gate: the flow graph of the headline configuration must be
# acyclic with complete lineages, and every measured window's critical-path
# buckets must sum exactly to the completion latency (DESIGN.md §12).
run run -q --release -p bench "${CARGO_FLAGS[@]}" --bin flow_explore -- \
  --nodes 16 --size 4096 --mode nic --shape adaptive --check >/dev/null
echo "ci: flow check OK (lineages complete, critical-path buckets exact)"

# Perf-regression gate: re-measure the scalability sweep's dispatch rate
# and compare events_per_sec against the committed baseline; more than 25%
# regression fails the build. Rates are per-second, so the short gate run
# and the full baseline run compare fairly; the gate skips itself across
# hosts with different core counts. MYRI_CI_NO_PERF=1 opts out (e.g. on
# heavily loaded or throttled runners).
if [[ "${MYRI_CI_NO_PERF:-}" == "1" ]]; then
  echo "ci: perf gate skipped (MYRI_CI_NO_PERF=1)"
else
  perf_snapshot=$(mktemp)
  sweep_snapshot=$(mktemp)
  cp results/perf_baseline.json "$perf_snapshot"
  cp results/ext_scalability.json "$sweep_snapshot"
  run run -q --release -p bench "${CARGO_FLAGS[@]}" --bin ext_scalability -- \
    --iters 10 --warmup 2 >/dev/null
  run run -q --release -p bench "${CARGO_FLAGS[@]}" --bin perf_gate -- \
    ext_scalability "$perf_snapshot" results/perf_baseline.json 0.25
  # The gate run used reduced iterations; restore the committed artifacts.
  mv "$perf_snapshot" results/perf_baseline.json
  mv "$sweep_snapshot" results/ext_scalability.json
fi

echo "ci: all green"
