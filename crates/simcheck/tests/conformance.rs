//! Model ↔ implementation conformance.
//!
//! The checker and the simulator share their protocol core (`gm::proto`),
//! but the checker's transition system is hand-written on top of it. These
//! tests pin the two together: the clean CI configuration verifies
//! exhaustively, the seeded mutation is caught with a counterexample the
//! *simulator* also fails on with the identical delivery verdict, the
//! committed trace artifact stays byte-stable, and a property test drives
//! random valid action sequences against the invariants.

use std::collections::BTreeSet;

use gm::proto::ProtoMutation;
use proptest::prelude::*;
use simcheck::{
    apply, check, enabled, explore, extract_replay, is_goal, model_delivered, run, trace_json,
    Config, Limits, State, Topo,
};

fn never() -> impl FnMut() -> bool {
    || false
}

/// The configuration the committed mutation trace was generated with:
/// CI-sized protocol limits, loss-only environment, full concreteness
/// (no symmetry) and the simulator's scheduling regime (eager NIC).
fn mutation_trace_config() -> Config {
    let mut cfg = Config::ci()
        .with_mutation(ProtoMutation::SenderWindowOffByOne)
        .with_symmetry(false);
    cfg.dup = 0;
    cfg.reorder = 0;
    cfg.crash = 0;
    cfg.eager_nic = true;
    cfg
}

/// The roadmap's acceptance configuration — 3 nodes, window 2, loss budget
/// 2 (plus dup/reorder/crash) — explores exhaustively with zero violations.
#[test]
fn ci_configuration_is_exhaustively_clean() {
    let out = run(&Config::ci(), &Limits::default(), &mut never());
    assert!(out.complete, "CI exploration must drain its frontier");
    assert!(
        out.violation.is_none(),
        "violation: {:?}",
        out.violation.map(|v| (v.kind, v.detail))
    );
    assert!(
        out.states > 10_000,
        "the CI space is tens of thousands of states, got {}",
        out.states
    );
}

/// The seeded sender-window off-by-one is caught under full interleaving,
/// even with every environment budget zeroed: the adversary delays local
/// DMA until an ack outruns it and the widened horizon frees an unsent
/// record.
#[test]
fn mutation_is_caught_without_any_faults() {
    let mut cfg = Config::ci()
        .with_mutation(ProtoMutation::SenderWindowOffByOne)
        .with_symmetry(true);
    cfg.loss = 0;
    cfg.dup = 0;
    cfg.reorder = 0;
    cfg.crash = 0;
    let out = run(&cfg, &Limits::default(), &mut never());
    let cex = out.violation.expect("mutation must be caught");
    assert_eq!(cex.kind, "deadlock");
    // `run` re-extracts the trace with symmetry off, so it is concrete.
    assert!(!cex.steps.is_empty());
}

/// Regenerating the committed counterexample trace reproduces it
/// byte-for-byte (BFS order, canonical hashing and the JSON writer are all
/// deterministic).
#[test]
fn committed_mutation_trace_is_reproducible() {
    let cfg = mutation_trace_config();
    let out = explore(&cfg, &Limits::default(), &mut never());
    let cex = out.violation.expect("mutation must be caught");
    let regenerated = trace_json(&cfg, &Topo::binomial(cfg.nodes), &cex);
    assert_eq!(
        regenerated,
        include_str!("../traces/mutation_sender_window.json"),
        "committed trace artifact is stale — regenerate with \
         `cargo run -p simcheck -- --mutate sender-window-off-by-one \
         --no-symmetry --eager-nic --dup 0 --reorder 0 --crash 0 \
         --trace crates/simcheck/traces/mutation_sender_window.json`"
    );
}

/// The committed counterexample fails in the real simulator with the
/// *identical* delivery verdict: same delivered-member set, no send
/// completion, and no retransmissions (the bug frees the very record the
/// retransmit path needs).
#[test]
fn committed_mutation_trace_fails_in_the_simulator_identically() {
    let cfg = mutation_trace_config();
    let out = explore(&cfg, &Limits::default(), &mut never());
    let cex = out.violation.expect("mutation must be caught");
    let spec = extract_replay(&cfg, &cex)
        .expect("the committed trace uses only targeted first-transmission drops");
    assert!(!spec.drops.is_empty(), "this counterexample needs real loss");
    let sim = nic_mcast::replay(&spec);
    assert!(!sim.send_done, "the simulator must also fail to complete");
    assert_eq!(sim.retransmissions, 0, "the mutation kills retransmission");
    let model: BTreeSet<u32> = model_delivered(&cex);
    assert_eq!(sim.delivered, model, "delivery verdicts must agree");
}

/// The same drops without the mutation are recovered by Go-Back-N
/// retransmission — pinning the failure on the seeded bug, not the drops.
#[test]
fn same_drops_without_mutation_are_recovered() {
    let cfg = mutation_trace_config();
    let out = explore(&cfg, &Limits::default(), &mut never());
    let cex = out.violation.expect("mutation must be caught");
    let mut spec = extract_replay(&cfg, &cex).expect("replayable trace");
    spec.mutation = ProtoMutation::None;
    let sim = nic_mcast::replay(&spec);
    assert_eq!(
        sim.delivered,
        (1..cfg.nodes).map(u32::from).collect::<BTreeSet<u32>>()
    );
    assert!(sim.send_done);
    assert!(sim.retransmissions > 0, "recovery must cost retransmissions");
}

/// The checker agrees the faithful protocol survives those same drops: the
/// clean model explores the loss-only configuration without violations.
#[test]
fn model_survives_the_trace_drops_without_mutation() {
    let cfg = mutation_trace_config().with_mutation(ProtoMutation::None);
    let out = explore(&cfg, &Limits::default(), &mut never());
    assert!(out.complete);
    assert!(out.violation.is_none(), "{:?}", out.violation);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random valid action sequences on the clean CI configuration never
    /// violate an invariant, and every run that quiesces reached the goal
    /// (no deadlock is reachable by any schedule).
    #[test]
    fn random_walks_preserve_invariants(choices in proptest::collection::vec(any::<u16>(), 0..200)) {
        let cfg = Config::ci().with_symmetry(false);
        let topo = Topo::binomial(cfg.nodes);
        let mut st = State::initial(&cfg, &topo);
        for &c in &choices {
            let acts = enabled(&cfg, &topo, &st);
            if acts.is_empty() {
                break;
            }
            st = apply(&cfg, &topo, &st, acts[c as usize % acts.len()]);
            prop_assert_eq!(check(&cfg, &topo, &st), None);
        }
        if enabled(&cfg, &topo, &st).is_empty() {
            prop_assert!(is_goal(&cfg, &topo, &st), "quiesced short of the goal: {:?}", st);
        }
    }
}
