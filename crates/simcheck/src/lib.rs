//! `simcheck` — exhaustive explicit-state model checking of the NIC-based
//! reliable-multicast protocol.
//!
//! The checker explores every interleaving of a small configuration (2–5
//! nodes, short messages, bounded loss/duplication/reorder/crash budgets)
//! of the one-to-many Go-Back-N multicast, built directly on the same
//! pure transition functions (`gm::proto`) the simulator's firmware model
//! executes. It verifies, in every reachable state:
//!
//! * **exactly-once delivery** to every non-crashed member,
//! * **token and SRAM-buffer conservation** (pools and credits never go
//!   negative or over-free; usage matches held references),
//! * **sequence-window sanity** (the sender never outruns its window, no
//!   parent records more acks than its child sent),
//! * **absence of deadlock** (a state with no enabled action is the goal).
//!
//! Violations come back as minimal (BFS-shortest) counterexample traces;
//! traces whose only environment actions are targeted drops replay through
//! the real simulator via [`nic_mcast::replay`], comparing delivery
//! verdicts member-by-member through the flow-lineage machinery.
//!
//! ```no_run
//! let cfg = simcheck::Config::ci();
//! let out = simcheck::run(&cfg, &simcheck::Limits::default(), &mut || false);
//! assert!(out.violation.is_none());
//! ```

#![warn(missing_docs)]

mod explore;
mod model;
mod trace;

pub use explore::{explore, CounterExample, Limits, Outcome, TraceStep};
pub use model::{
    apply, check, describe, enabled, is_goal, Action, Chain, Config, NodeSt, Pkt, Rec, State, Topo,
};
pub use trace::{report_json, trace_json};

use std::collections::BTreeSet;

/// Explore `cfg`; when a violation is found under symmetry reduction,
/// re-explore with symmetry off so the returned counterexample is a
/// concrete, simulator-replayable run (canonicalization relabels sibling
/// leaves between steps, so a symmetric-mode trace is only sound up to
/// that relabelling).
pub fn run(cfg: &Config, limits: &Limits, interrupt: &mut dyn FnMut() -> bool) -> Outcome {
    let first = explore(cfg, limits, interrupt);
    if first.violation.is_none() || !cfg.symmetry {
        return first;
    }
    let concrete = explore(&cfg.clone().with_symmetry(false), limits, interrupt);
    if concrete.violation.is_some() {
        // Keep the reduced run's statistics; take the concrete trace.
        Outcome {
            violation: concrete.violation,
            ..first
        }
    } else {
        // Cannot happen for a sound reduction; surface the symmetric trace
        // rather than losing the finding.
        first
    }
}

/// Members the counterexample's final state delivered the message to.
pub fn model_delivered(cex: &CounterExample) -> BTreeSet<u32> {
    cex.state
        .nodes
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, n)| n.delivered == 1)
        .map(|(id, _)| id as u32)
        .collect()
}

/// Distill a concrete counterexample into a simulator [`nic_mcast::ReplaySpec`].
///
/// Returns `None` when the trace is not expressible as targeted
/// first-transmission drops: it duplicates or reorders packets, crashes a
/// leaf, drops an ack, or drops a retransmission of a packet whose first
/// copy already left the wire (the simulator's one-shot `DropRule` always
/// kills the *first* matching transmission).
pub fn extract_replay(cfg: &Config, cex: &CounterExample) -> Option<nic_mcast::ReplaySpec> {
    let topo = Topo::binomial(cfg.nodes);
    let mut st = State::initial(cfg, &topo);
    let mut removed: BTreeSet<(u8, u8, u8)> = BTreeSet::new();
    let mut drops = Vec::new();
    for step in &cex.steps {
        match step.action {
            Action::Dup { .. } | Action::CrashLeaf { .. } => return None,
            Action::Deliver { link, pos } => {
                if pos > 0 {
                    return None;
                }
                if let Pkt::Data { seq } = st.queues[link as usize][0] {
                    let (src, dst) = topo.links[link as usize];
                    removed.insert((src, dst, seq));
                }
            }
            Action::Drop { link, pos } => {
                let Pkt::Data { seq } = st.queues[link as usize][pos as usize] else {
                    return None; // ack drops have no DropRule shape here
                };
                let (src, dst) = topo.links[link as usize];
                if !removed.insert((src, dst, seq)) {
                    return None; // not the first transmission of this packet
                }
                drops.push(nic_mcast::ReplayDrop {
                    src: u32::from(src),
                    dst: u32::from(dst),
                    seq: u64::from(seq),
                });
            }
            _ => {}
        }
        st = apply(cfg, &topo, &st, step.action);
    }
    Some(nic_mcast::ReplaySpec {
        nodes: u32::from(cfg.nodes),
        packets: u32::from(cfg.packets),
        mutation: cfg.mutation,
        drops,
    })
}
