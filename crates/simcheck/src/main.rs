//! `simcheck` CLI — the model-checking gate run by `scripts/ci.sh`.
//!
//! Usage:
//!   cargo run -p simcheck -- --ci                 # CI config, write report
//!   cargo run -p simcheck -- [FLAGS]              # custom configuration
//!
//! Flags: --nodes N --packets N --window N --send-bufs N --recv-bufs N
//!        --loss N --dup N --reorder N --crash N --mutate NAME
//!        --no-symmetry --max-states N --trace PATH --report PATH
//!
//! Exit code 0 when the space is explored clean, 1 on a violation (the
//! counterexample trace goes to --trace, default
//! `results/simcheck_trace.json`), 2 on a usage error or exceeded budget.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant; // simlint::allow(det-walltime, CLI wall budget, not simulation time)

use gm::proto::ProtoMutation;
use simcheck::{extract_replay, run, trace_json, Config, Limits, Topo};

/// Wall-clock budget for the CI run; generous — the CI configuration
/// explores in seconds — but bounds a state-space regression.
const CI_WALL_SECS: u64 = 600;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simcheck --ci | simcheck [--nodes N] [--packets N] [--window N] \
         [--send-bufs N] [--recv-bufs N] [--loss N] [--dup N] [--reorder N] \
         [--crash N] [--mutate none|sender-window-off-by-one] [--no-symmetry] \
         [--eager-nic] [--max-states N] [--trace PATH] [--report PATH]"
    );
    ExitCode::from(2)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::ci();
    let mut limits = Limits::default();
    let mut ci = false;
    let mut trace_path: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;

    fn next_u8(it: &mut std::slice::Iter<'_, String>, min: u8) -> Option<u8> {
        it.next()?.parse().ok().filter(|&v| v >= min)
    }

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ci" => ci = true,
            "--nodes" => match next_u8(&mut it, 2) {
                Some(v) => cfg.nodes = v,
                None => return usage(),
            },
            "--packets" => match next_u8(&mut it, 1) {
                Some(v) => cfg.packets = v,
                None => return usage(),
            },
            "--window" => match next_u8(&mut it, 1) {
                Some(v) => cfg.window = v,
                None => return usage(),
            },
            "--send-bufs" => match next_u8(&mut it, 1) {
                Some(v) => cfg.send_bufs = v,
                None => return usage(),
            },
            "--recv-bufs" => match next_u8(&mut it, 1) {
                Some(v) => cfg.recv_bufs = v,
                None => return usage(),
            },
            "--loss" => match next_u8(&mut it, 0) {
                Some(v) => cfg.loss = v,
                None => return usage(),
            },
            "--dup" => match next_u8(&mut it, 0) {
                Some(v) => cfg.dup = v,
                None => return usage(),
            },
            "--reorder" => match next_u8(&mut it, 0) {
                Some(v) => cfg.reorder = v,
                None => return usage(),
            },
            "--crash" => match next_u8(&mut it, 0) {
                Some(v) => cfg.crash = v,
                None => return usage(),
            },
            "--no-symmetry" => cfg.symmetry = false,
            "--eager-nic" => cfg.eager_nic = true,
            "--mutate" => match it.next().map(String::as_str).and_then(ProtoMutation::parse) {
                Some(m) => cfg.mutation = m,
                None => return usage(),
            },
            "--max-states" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => limits.max_states = v,
                None => return usage(),
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--report" => match it.next() {
                Some(p) => report_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let root = workspace_root();
    let started = Instant::now(); // simlint::allow(det-walltime, wall budget for the CI gate)
    let mut interrupt = || ci && started.elapsed().as_secs() > CI_WALL_SECS;
    let out = run(&cfg, &limits, &mut interrupt);
    let wall_ms = started.elapsed().as_millis();

    println!(
        "simcheck: {} nodes, {} packets, window {}, budgets loss={} dup={} reorder={} crash={}, \
         mutation {}, symmetry {}",
        cfg.nodes,
        cfg.packets,
        cfg.window,
        cfg.loss,
        cfg.dup,
        cfg.reorder,
        cfg.crash,
        cfg.mutation.name(),
        if cfg.symmetry { "on" } else { "off" }
    );
    println!(
        "simcheck: explored {} states, {} transitions, max depth {} ({} ms, {})",
        out.states,
        out.transitions,
        out.max_depth,
        wall_ms,
        if out.complete { "complete" } else { "INCOMPLETE" }
    );

    if ci {
        let report = report_path.unwrap_or_else(|| root.join("results/simcheck_report.json"));
        if let Some(dir) = report.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let json = simcheck::report_json(&cfg, &out);
        if let Err(e) = std::fs::write(&report, json) {
            eprintln!("simcheck: cannot write {}: {e}", report.display());
        } else {
            println!("simcheck: report at {}", report.display());
        }
    } else if let Some(report) = report_path {
        if let Some(dir) = report.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let json = simcheck::report_json(&cfg, &out);
        if let Err(e) = std::fs::write(&report, json) {
            eprintln!("simcheck: cannot write {}: {e}", report.display());
        }
    }

    match out.violation {
        None if out.complete => {
            println!("simcheck: no violations — exhaustive over this configuration");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "simcheck: search stopped early (max-states {} or {}s wall budget) — NOT exhaustive",
                limits.max_states, CI_WALL_SECS
            );
            ExitCode::from(2)
        }
        Some(cex) => {
            eprintln!("simcheck: VIOLATION ({}): {}", cex.kind, cex.detail);
            for (i, s) in cex.steps.iter().enumerate() {
                eprintln!("  {i:3}. {}", s.note);
            }
            // The trace from `run` is concrete (symmetry off); note whether
            // the simulator can replay it with targeted drop rules.
            let concrete = cfg.clone().with_symmetry(false);
            match extract_replay(&concrete, &cex) {
                Some(spec) => eprintln!(
                    "simcheck: replayable through the simulator ({} targeted drop(s))",
                    spec.drops.len()
                ),
                None => eprintln!(
                    "simcheck: trace uses dup/reorder/crash or non-first drops — \
                     not expressible as simulator drop rules"
                ),
            }
            let trace =
                trace_path.unwrap_or_else(|| root.join("results/simcheck_trace.json"));
            if let Some(dir) = trace.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let topo = Topo::binomial(cfg.nodes);
            let json = trace_json(&concrete, &topo, &cex);
            if let Err(e) = std::fs::write(&trace, json) {
                eprintln!("simcheck: cannot write {}: {e}", trace.display());
            } else {
                eprintln!("simcheck: counterexample trace at {}", trace.display());
            }
            ExitCode::FAILURE
        }
    }
}
