//! The protocol model: one multicast, rendered as a finite transition
//! system over the **same** pure transition functions (`gm::proto`) the
//! simulator's firmware model executes.
//!
//! A state is the cross product of per-node protocol state (Go-Back-N
//! windows, per-child acknowledged counts, SRAM buffer pools, receive
//! credits, forwarding chains, RDMA queues) and per-link FIFO packet
//! queues, plus the remaining environment budgets (loss, duplication,
//! reordering, leaf crashes). Actions are the individual steps the NIC
//! work loop, the PCI engines and the wire can take; the checker explores
//! every interleaving.
//!
//! ## Abstractions (where the model is coarser than the simulator)
//!
//! * **No time.** The Go-Back-N retransmission timer becomes a
//!   [`Action::Timeout`] action that is enabled only at *quiescence* (no
//!   protocol or network action enabled anywhere). This is sound for
//!   safety: the simulator's timer is long enough that a firing races only
//!   with other timers, and firing earlier only retransmits packets the
//!   model can also duplicate with its dup budget. The guard keeps the
//!   state space finite.
//! * **Retransmission needs no send buffer.** At quiescence every replica
//!   chain is `Done`, so the root's send buffers are provably free; the
//!   model skips the transient buffer cycling of the simulator's
//!   retransmit DMA.
//! * **Replica chains are position-ordered.** A record may feed child `i`
//!   only when every lower-sequence record has already fed child `i` —
//!   the per-link FIFO ascending-sequence order the single TX DMA engine
//!   enforces. Interleavings *across* links are all explored.
//! * **Payload bytes are dropped.** Delivery correctness is sequence-number
//!   bookkeeping; the simulator's own tests cover payload integrity.

use gm::proto::{self, ChildAcks, Credits, GbnRx, GbnTx, Pool, ProtoMutation, RxVerdict};

// ---------------------------------------------------------------------------
// Configuration and topology
// ---------------------------------------------------------------------------

/// A checkable configuration: cluster size, message length, window and
/// environment budgets. Keep these small — the checker is exhaustive.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cluster size (node 0 is the root; the tree is binomial, matching
    /// `nic_mcast::TreeShape::Binomial` over ids `1..nodes`).
    pub nodes: u8,
    /// Message length in packets.
    pub packets: u8,
    /// Go-Back-N sender window (max outstanding records at the root).
    pub window: u8,
    /// Root SRAM send-buffer pool size (gates SDMA-ahead).
    pub send_bufs: u8,
    /// Per-member SRAM receive-buffer pool size (a data packet arriving
    /// with no free buffer is dropped, as in GM).
    pub recv_bufs: u8,
    /// How many packets the environment may drop.
    pub loss: u8,
    /// How many packets the environment may duplicate.
    pub dup: u8,
    /// How many out-of-order (non-head) deliveries the environment may
    /// force. Per-link wire order is otherwise FIFO, as on Myrinet.
    pub reorder: u8,
    /// How many leaves the environment may crash (fail-stop; a crashed
    /// leaf silently consumes arriving packets).
    pub crash: u8,
    /// Deliberately seeded protocol bug (see [`ProtoMutation`]).
    pub mutation: ProtoMutation,
    /// Canonicalize states under sibling-leaf symmetry (sound reduction;
    /// turn off to extract concrete, simulator-replayable traces).
    pub symmetry: bool,
    /// Restrict scheduling to the simulator's timing regime: NIC-internal
    /// actions (admit, SDMA, chain step, RDMA completion) drain before any
    /// wire action fires. This is a real restriction — it hides schedules
    /// where an ack outruns a pending local DMA — so it is **off** for
    /// verification and used only to extract counterexample traces the
    /// deterministic simulator can reproduce.
    pub eager_nic: bool,
}

impl Config {
    /// The CI configuration from the roadmap: 3 nodes, 2-packet message,
    /// window 2, loss budget 2, plus one duplication, one reorder and one
    /// leaf crash.
    pub fn ci() -> Config {
        Config {
            nodes: 3,
            packets: 2,
            window: 2,
            send_bufs: 2,
            recv_bufs: 2,
            loss: 2,
            dup: 1,
            reorder: 1,
            crash: 1,
            mutation: ProtoMutation::None,
            symmetry: true,
            eager_nic: false,
        }
    }

    /// This configuration with a seeded protocol bug.
    pub fn with_mutation(mut self, m: ProtoMutation) -> Config {
        self.mutation = m;
        self
    }

    /// This configuration with symmetry reduction on or off.
    pub fn with_symmetry(mut self, on: bool) -> Config {
        self.symmetry = on;
        self
    }
}

/// The fixed tree topology derived from a [`Config`]: parent/children
/// arrays and a deterministic table of directed links.
#[derive(Clone, Debug)]
pub struct Topo {
    /// `parent[node]`, `None` at the root.
    pub parent: Vec<Option<u8>>,
    /// `children[node]` in send order.
    pub children: Vec<Vec<u8>>,
    /// Directed links `(src, dst)`: for every tree edge, the down link
    /// (parent to child) followed by the up link (child to parent).
    pub links: Vec<(u8, u8)>,
    /// Sibling-leaf symmetry groups: `(parent, child positions)` for every
    /// parent with two or more leaf children.
    pub leaf_groups: Vec<(u8, Vec<u8>)>,
}

impl Topo {
    /// Binomial tree over ids `0..n` — the same shape
    /// `nic_mcast::SpanningTree::build(.., TreeShape::Binomial)` produces
    /// over the ID-sorted destination list (checked by a conformance test).
    pub fn binomial(n: u8) -> Topo {
        let n = n as usize;
        let mut parent: Vec<Option<u8>> = vec![None; n];
        let mut children: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut step = 1usize;
        while step < n {
            let ranks = parent.iter_mut().enumerate().take((2 * step).min(n));
            for (high, p) in ranks.skip(step) {
                let low = high - step;
                *p = Some(low as u8);
                children[low].push(high as u8);
            }
            step <<= 1;
        }
        let mut links = Vec::new();
        for (p, kids) in children.iter().enumerate() {
            for &c in kids {
                links.push((p as u8, c));
                links.push((c, p as u8));
            }
        }
        let mut leaf_groups = Vec::new();
        for (p, kids) in children.iter().enumerate() {
            let leaves: Vec<u8> = (0..kids.len())
                .filter(|&ci| children[kids[ci] as usize].is_empty())
                .map(|ci| ci as u8)
                .collect();
            if leaves.len() >= 2 {
                leaf_groups.push((p as u8, leaves));
            }
        }
        Topo {
            parent,
            children,
            links,
            leaf_groups,
        }
    }

    /// Index of the directed link `src -> dst` in [`Topo::links`].
    pub fn link(&self, src: u8, dst: u8) -> usize {
        self.links
            .iter()
            .position(|&l| l == (src, dst))
            .expect("link exists for every tree edge in both directions")
    }
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// A packet in flight on one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pkt {
    /// Multicast data packet with this sequence number.
    Data {
        /// Sequence number.
        seq: u8,
    },
    /// Multicast per-packet acknowledgment.
    Ack {
        /// Highest contiguously received sequence number.
        seq: u8,
    },
}

/// Replica-chain progress of one record (mirrors the simulator's
/// callback-driven multisend: feed child 0, then 1, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Chain {
    /// Admitted at the root but not yet SDMA'd into SRAM.
    Waiting,
    /// Next replica goes to the child at this position.
    Active(u8),
    /// All children fed (first transmission complete).
    Done,
}

/// One unacknowledged packet's bookkeeping at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rec {
    /// Sequence number.
    pub seq: u8,
    /// Replica-chain progress.
    pub chain: Chain,
}

/// One node's protocol state. Built entirely from `gm::proto` types plus
/// plain queues, so every field the checker branches on is the field the
/// simulator branches on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeSt {
    /// Fail-stop flag (environment action; crashed nodes consume arriving
    /// packets silently and take no protocol action).
    pub crashed: bool,
    /// Go-Back-N receiver window (packets from the parent).
    pub rx: GbnRx,
    /// Go-Back-N sender window (root only).
    pub tx: GbnTx,
    /// Per-child contiguously-acknowledged counts.
    pub acks: ChildAcks,
    /// Unacknowledged records, ascending seq.
    pub records: Vec<Rec>,
    /// Root: admitted seqs awaiting SDMA into an SRAM send buffer.
    pub sdma_q: Vec<u8>,
    /// Accepted seqs awaiting RDMA up to the host.
    pub rdma_q: Vec<u8>,
    /// Packets RDMA'd to the host so far.
    pub rdma_done: u8,
    /// Complete messages delivered to the application (exactly-once says
    /// this never exceeds 1 — there is one message per run).
    pub delivered: u8,
    /// SRAM send-buffer pool (root only).
    pub send_bufs: Pool,
    /// SRAM receive-buffer pool (members only).
    pub recv_bufs: Pool,
    /// Host receive credits (one per message, consumed by packet 0).
    pub recv_tokens: Credits,
    /// Held receive buffers: `(seq, refcount)`; the refcount is
    /// [`proto::fwd_buf_refs`] at acceptance and the buffer frees at zero.
    pub refs: Vec<(u8, u8)>,
}

/// A complete model state: all nodes, all link queues, all budgets.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State {
    /// Per-node protocol state, indexed by node id.
    pub nodes: Vec<NodeSt>,
    /// Per-link FIFO queues, parallel to [`Topo::links`].
    pub queues: Vec<Vec<Pkt>>,
    /// Remaining loss budget.
    pub loss: u8,
    /// Remaining duplication budget.
    pub dup: u8,
    /// Remaining reorder budget.
    pub reorder: u8,
    /// Remaining crash budget.
    pub crash: u8,
}

impl State {
    /// The initial state: nothing admitted, all pools full, one receive
    /// credit per member, full budgets.
    pub fn initial(cfg: &Config, topo: &Topo) -> State {
        let nodes = (0..cfg.nodes as usize)
            .map(|id| NodeSt {
                crashed: false,
                rx: GbnRx::default(),
                tx: GbnTx::default(),
                acks: ChildAcks::new(topo.children[id].len()),
                records: Vec::new(),
                sdma_q: Vec::new(),
                rdma_q: Vec::new(),
                rdma_done: 0,
                delivered: 0,
                send_bufs: Pool::new(if id == 0 { cfg.send_bufs as usize } else { 0 }),
                recv_bufs: Pool::new(if id == 0 { 0 } else { cfg.recv_bufs as usize }),
                recv_tokens: Credits::new(if id == 0 { 0 } else { 1 }),
                refs: Vec::new(),
            })
            .collect();
        State {
            nodes,
            queues: vec![Vec::new(); topo.links.len()],
            loss: cfg.loss,
            dup: cfg.dup,
            reorder: cfg.reorder,
            crash: cfg.crash,
        }
    }
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

/// One atomic step of the protocol or its environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Root admits the next packet into the sender window (send-token
    /// processing).
    Admit,
    /// Root SDMAs the oldest admitted packet into a free SRAM send buffer.
    SdmaStart,
    /// `node` transmits record `seq`'s next replica to one child.
    ChainStep {
        /// Transmitting node.
        node: u8,
        /// Record sequence number.
        seq: u8,
    },
    /// The wire hands the packet at `pos` in `link`'s queue to its
    /// destination NIC (`pos > 0` spends the reorder budget).
    Deliver {
        /// Index into [`Topo::links`].
        link: u8,
        /// Queue position.
        pos: u8,
    },
    /// The environment loses the packet at `pos` in `link`'s queue.
    Drop {
        /// Index into [`Topo::links`].
        link: u8,
        /// Queue position.
        pos: u8,
    },
    /// The environment duplicates the packet at `pos` (copy appended at
    /// the back of the queue).
    Dup {
        /// Index into [`Topo::links`].
        link: u8,
        /// Queue position.
        pos: u8,
    },
    /// `node`'s RDMA engine finishes uploading the oldest accepted packet
    /// to host memory (delivers the message when it is the last one).
    RdmaDone {
        /// Receiving node.
        node: u8,
    },
    /// The environment fail-stops a leaf.
    CrashLeaf {
        /// The leaf to crash.
        node: u8,
    },
    /// `node`'s Go-Back-N timer fires: selectively retransmit every fully
    /// transmitted record to every child that has not acknowledged it.
    /// Only enabled at quiescence (see the module docs).
    Timeout {
        /// Retransmitting node.
        node: u8,
    },
}

/// Enumerate the enabled actions of `st` in deterministic order: protocol
/// and network actions first, then environment crashes, then (only if no
/// protocol/network action is enabled anywhere) timeouts.
pub fn enabled(cfg: &Config, topo: &Topo, st: &State) -> Vec<Action> {
    let mut acts = Vec::new();
    let root = &st.nodes[0];
    // Admit: send-token processing at the root.
    if (root.tx.next_seq() as u8) < cfg.packets
        && root.tx.can_admit(root.records.len(), cfg.window as usize)
    {
        acts.push(Action::Admit);
    }
    // SdmaStart: oldest admitted packet into a free send buffer.
    if !root.sdma_q.is_empty() && root.send_bufs.free() > 0 {
        acts.push(Action::SdmaStart);
    }
    // ChainStep: any active record whose lower-seq predecessors have all
    // already fed the child it would feed (per-link ascending order).
    for (id, ns) in st.nodes.iter().enumerate() {
        if ns.crashed {
            continue;
        }
        for (i, rec) in ns.records.iter().enumerate() {
            let Chain::Active(ci) = rec.chain else {
                continue;
            };
            let preds_fed = ns.records[..i].iter().all(|r| match r.chain {
                Chain::Done => true,
                Chain::Active(cj) => cj > ci,
                Chain::Waiting => false,
            });
            if preds_fed {
                acts.push(Action::ChainStep {
                    node: id as u8,
                    seq: rec.seq,
                });
            }
        }
    }
    // Wire actions per link and position.
    for (li, q) in st.queues.iter().enumerate() {
        for pos in 0..q.len() {
            let (link, pos) = (li as u8, pos as u8);
            if pos == 0 || st.reorder > 0 {
                acts.push(Action::Deliver { link, pos });
            }
            if st.loss > 0 {
                acts.push(Action::Drop { link, pos });
            }
            if st.dup > 0 {
                acts.push(Action::Dup { link, pos });
            }
        }
    }
    // RdmaDone.
    for (id, ns) in st.nodes.iter().enumerate() {
        if !ns.crashed && !ns.rdma_q.is_empty() {
            acts.push(Action::RdmaDone { node: id as u8 });
        }
    }
    // Eager-NIC trace-extraction mode: while any NIC-internal action is
    // enabled, wire and environment actions wait (DMA completions beat the
    // round trip, as in the simulator's timing).
    if cfg.eager_nic {
        let wire = |a: &Action| {
            matches!(
                a,
                Action::Deliver { .. } | Action::Drop { .. } | Action::Dup { .. }
            )
        };
        if acts.iter().any(|a| !wire(a)) {
            acts.retain(|a| !wire(a));
            return acts;
        }
    }
    let quiescent = acts.is_empty();
    // CrashLeaf: an environment action, deliberately *not* counted against
    // quiescence (a timeout must stay reachable without spending the crash
    // budget).
    if st.crash > 0 {
        for (id, ns) in st.nodes.iter().enumerate().skip(1) {
            if !ns.crashed && topo.children[id].is_empty() {
                acts.push(Action::CrashLeaf { node: id as u8 });
            }
        }
    }
    // Timeout: quiescence-guarded selective retransmission.
    if quiescent {
        for (id, ns) in st.nodes.iter().enumerate() {
            if ns.crashed {
                continue;
            }
            let needs_retx = ns.records.iter().any(|rec| {
                rec.chain == Chain::Done
                    && (0..topo.children[id].len())
                        .any(|ci| ns.acks.needs(ci, rec.seq as u64))
            });
            if needs_retx {
                acts.push(Action::Timeout { node: id as u8 });
            }
        }
    }
    acts
}

/// Apply `action` to `st`, returning the successor state. Pure: the input
/// state is untouched. Panics (via `expect`) only on actions that are not
/// enabled — the explorer always feeds it from [`enabled`].
pub fn apply(cfg: &Config, topo: &Topo, st: &State, action: Action) -> State {
    let mut s = st.clone();
    match action {
        Action::Admit => {
            let seq = s.nodes[0].tx.assign_seq() as u8;
            s.nodes[0].records.push(Rec {
                seq,
                chain: Chain::Waiting,
            });
            s.nodes[0].sdma_q.push(seq);
        }
        Action::SdmaStart => {
            let seq = s.nodes[0].sdma_q.remove(0);
            let took = s.nodes[0].send_bufs.try_take();
            debug_assert!(took, "SdmaStart enabled implies a free send buffer");
            let rec = s.nodes[0]
                .records
                .iter_mut()
                .find(|r| r.seq == seq)
                .expect("admitted seq has a record");
            rec.chain = Chain::Active(0);
        }
        Action::ChainStep { node, seq } => {
            let id = node as usize;
            let nchildren = topo.children[id].len();
            let rec = s.nodes[id]
                .records
                .iter_mut()
                .find(|r| r.seq == seq)
                .expect("chain-step record exists");
            let Chain::Active(ci) = rec.chain else {
                panic!("chain-step record is active");
            };
            let child = topo.children[id][ci as usize];
            match proto::next_replica(nchildren, ci as usize) {
                Some(j) => rec.chain = Chain::Active(j as u8),
                None => {
                    rec.chain = Chain::Done;
                    if id == 0 {
                        s.nodes[id].send_bufs.put();
                    } else {
                        dec_ref(&mut s.nodes[id], seq);
                    }
                }
            }
            s.queues[topo.link(node, child)].push(Pkt::Data { seq });
        }
        Action::Deliver { link, pos } => {
            let pkt = s.queues[link as usize].remove(pos as usize);
            if pos > 0 {
                s.reorder -= 1;
            }
            let (src, dst) = topo.links[link as usize];
            if s.nodes[dst as usize].crashed {
                return s; // fail-stop: consumed silently
            }
            match pkt {
                Pkt::Data { seq } => deliver_data(cfg, topo, &mut s, src, dst, seq),
                Pkt::Ack { seq } => deliver_ack(cfg, topo, &mut s, src, dst, seq),
            }
        }
        Action::Drop { link, pos } => {
            s.queues[link as usize].remove(pos as usize);
            s.loss -= 1;
        }
        Action::Dup { link, pos } => {
            let pkt = s.queues[link as usize][pos as usize];
            s.queues[link as usize].push(pkt);
            s.dup -= 1;
        }
        Action::RdmaDone { node } => {
            let ns = &mut s.nodes[node as usize];
            let seq = ns.rdma_q.remove(0);
            dec_ref(ns, seq);
            ns.rdma_done += 1;
            if ns.rdma_done == cfg.packets {
                ns.delivered += 1;
            }
        }
        Action::CrashLeaf { node } => {
            s.nodes[node as usize].crashed = true;
            s.crash -= 1;
        }
        Action::Timeout { node } => {
            let id = node as usize;
            let retx: Vec<(u8, u8)> = s.nodes[id]
                .records
                .iter()
                .filter(|rec| rec.chain == Chain::Done)
                .flat_map(|rec| {
                    (0..topo.children[id].len())
                        .filter(|&ci| s.nodes[id].acks.needs(ci, rec.seq as u64))
                        .map(|ci| (rec.seq, topo.children[id][ci]))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (seq, child) in retx {
                s.queues[topo.link(node, child)].push(Pkt::Data { seq });
            }
        }
    }
    s
}

/// A data packet arrives at `dst` from its parent `src`: the GM receive
/// path (SRAM buffer, sequence verdict, receive credit, forwarding chain,
/// RDMA queue, per-packet ack) built on `gm::proto`.
fn deliver_data(_cfg: &Config, topo: &Topo, s: &mut State, src: u8, dst: u8, seq: u8) {
    let up = topo.link(dst, src);
    let node = &mut s.nodes[dst as usize];
    if !node.recv_bufs.try_take() {
        return; // no free SRAM buffer: dropped, recovered by retransmission
    }
    match node.rx.verdict(seq as u64) {
        RxVerdict::OutOfOrder { reack } => {
            node.recv_bufs.put();
            if let Some(a) = reack {
                s.queues[up].push(Pkt::Ack { seq: a as u8 });
            }
        }
        RxVerdict::Accept => {
            if seq == 0 && !node.recv_tokens.try_consume() {
                node.recv_bufs.put();
                return; // no receive credit posted: dropped, no ack
            }
            node.rx.accept();
            let has_children = !topo.children[dst as usize].is_empty();
            node.refs.push((seq, proto::fwd_buf_refs(has_children, false)));
            if has_children {
                node.records.push(Rec {
                    seq,
                    chain: Chain::Active(0),
                });
            }
            node.rdma_q.push(seq);
            s.queues[up].push(Pkt::Ack { seq });
        }
    }
}

/// An ack arrives at `dst` from its child `src`: update the per-child
/// acknowledged counts and release every record below the release horizon
/// (the seeded off-by-one mutation widens that horizon, freeing a record
/// no child confirmed — which kills retransmission).
fn deliver_ack(cfg: &Config, topo: &Topo, s: &mut State, src: u8, dst: u8, seq: u8) {
    let id = dst as usize;
    let ci = topo.children[id]
        .iter()
        .position(|&c| c == src)
        .expect("acks only flow child to parent");
    let node = &mut s.nodes[id];
    node.acks.on_ack(ci, seq as u64);
    let horizon = proto::release_horizon(node.acks.min_acked(), cfg.mutation);
    while let Some(front) = node.records.first().copied() {
        if front.seq as u64 >= horizon {
            break;
        }
        node.records.remove(0);
        match front.chain {
            Chain::Waiting => node.sdma_q.retain(|&q| q != front.seq),
            Chain::Active(_) => {
                if id == 0 {
                    node.send_bufs.put();
                } else {
                    dec_ref(node, front.seq);
                }
            }
            Chain::Done => {}
        }
    }
}

/// Drop one reference on the receive buffer holding `seq`; free it at zero.
fn dec_ref(node: &mut NodeSt, seq: u8) {
    let i = node
        .refs
        .iter()
        .position(|&(q, _)| q == seq)
        .expect("ref exists for every held receive buffer");
    node.refs[i].1 -= 1;
    if node.refs[i].1 == 0 {
        node.refs.remove(i);
        node.recv_bufs.put();
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// The protocol's goal: every child acknowledged every packet at the root
/// and every non-crashed member's application received the message.
pub fn is_goal(cfg: &Config, _topo: &Topo, st: &State) -> bool {
    st.nodes[0].acks.min_acked() >= cfg.packets as u64
        && st
            .nodes
            .iter()
            .skip(1)
            .all(|n| n.crashed || n.delivered == 1)
}

/// Check every safety invariant of `st`; `Some(description)` on violation.
///
/// * **Exactly-once delivery**: no member delivers the message twice.
/// * **Token/buffer conservation**: every pool and credit counter is
///   conserved, the root's send-buffer usage equals its active chains, and
///   each member's receive-buffer usage equals its held references.
/// * **SRAM occupancy bounds**: implied by pool conservation (a `Pool` can
///   never exceed its capacity without tripping the conservation check).
/// * **Sequence-window sanity**: the root never outruns its window or the
///   message, records stay sorted and unique, receivers never expect more
///   than the message, and no parent has more acks from a child than the
///   child has accepted packets.
pub fn check(cfg: &Config, topo: &Topo, st: &State) -> Option<String> {
    for (id, ns) in st.nodes.iter().enumerate() {
        if ns.delivered > 1 {
            return Some(format!("node {id}: message delivered {} times", ns.delivered));
        }
        if !ns.send_bufs.is_conserved() || !ns.recv_bufs.is_conserved() {
            return Some(format!("node {id}: SRAM buffer pool over-freed"));
        }
        if !ns.recv_tokens.is_conserved() {
            return Some(format!("node {id}: receive credits consumed beyond grants"));
        }
        let active = ns
            .records
            .iter()
            .filter(|r| matches!(r.chain, Chain::Active(_)))
            .count();
        if id == 0 && ns.send_bufs.in_use() != active {
            return Some(format!(
                "root: {} send buffers in use but {active} active chains",
                ns.send_bufs.in_use()
            ));
        }
        if ns.recv_bufs.in_use() != ns.refs.len() {
            return Some(format!(
                "node {id}: {} recv buffers in use but {} held refs",
                ns.recv_bufs.in_use(),
                ns.refs.len()
            ));
        }
        if ns.rx.expected() > cfg.packets as u64 {
            return Some(format!(
                "node {id}: receiver expects seq {} beyond the message",
                ns.rx.expected()
            ));
        }
        if !ns.records.windows(2).all(|w| w[0].seq < w[1].seq) {
            return Some(format!("node {id}: records out of order or duplicated"));
        }
        for ci in 0..topo.children[id].len() {
            let child = topo.children[id][ci] as usize;
            if ns.acks.count(ci) > st.nodes[child].rx.expected() {
                return Some(format!(
                    "node {id}: child {child} acked {} packets but accepted {}",
                    ns.acks.count(ci),
                    st.nodes[child].rx.expected()
                ));
            }
        }
    }
    let root = &st.nodes[0];
    if root.records.len() > cfg.window as usize {
        return Some(format!(
            "root: {} outstanding records exceed window {}",
            root.records.len(),
            cfg.window
        ));
    }
    if root.tx.next_seq() > cfg.packets as u64 {
        return Some(format!(
            "root: assigned seq {} beyond the message",
            root.tx.next_seq()
        ));
    }
    None
}

/// Human-readable annotation for `action` taken from `st` (packet details
/// for wire actions), used in counterexample traces.
pub fn describe(topo: &Topo, st: &State, action: Action) -> String {
    let wire = |link: u8, pos: u8| {
        let (src, dst) = topo.links[link as usize];
        match st.queues[link as usize][pos as usize] {
            Pkt::Data { seq } => format!("data seq={seq} {src}->{dst}"),
            Pkt::Ack { seq } => format!("ack seq={seq} {src}->{dst}"),
        }
    };
    match action {
        Action::Admit => "root admits next packet into the send window".to_string(),
        Action::SdmaStart => "root SDMAs oldest admitted packet into SRAM".to_string(),
        Action::ChainStep { node, seq } => {
            let ns = &st.nodes[node as usize];
            let rec = ns
                .records
                .iter()
                .find(|r| r.seq == seq)
                .expect("described record exists");
            let Chain::Active(ci) = rec.chain else {
                return format!("node {node} chain step seq={seq}");
            };
            let child = topo.children[node as usize][ci as usize];
            format!("node {node} transmits seq={seq} replica to child {child}")
        }
        Action::Deliver { link, pos } => format!("wire delivers {}", wire(link, pos)),
        Action::Drop { link, pos } => format!("environment drops {}", wire(link, pos)),
        Action::Dup { link, pos } => format!("environment duplicates {}", wire(link, pos)),
        Action::RdmaDone { node } => format!("node {node} RDMA completes oldest packet"),
        Action::CrashLeaf { node } => format!("leaf {node} fail-stops"),
        Action::Timeout { node } => format!("node {node} Go-Back-N timer fires"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_goal(cfg: &Config) -> (Topo, State, usize) {
        // Drive the model deterministically by always taking the first
        // enabled action; with no environment budgets this is one fixed
        // fault-free execution.
        let topo = Topo::binomial(cfg.nodes);
        let mut st = State::initial(cfg, &topo);
        let mut steps = 0;
        loop {
            assert_eq!(check(cfg, &topo, &st), None, "invariant at step {steps}");
            let acts = enabled(cfg, &topo, &st);
            let Some(&a) = acts.first() else {
                return (topo, st, steps);
            };
            st = apply(cfg, &topo, &st, a);
            steps += 1;
            assert!(steps < 10_000, "fault-free run must terminate");
        }
    }

    fn no_faults(mut cfg: Config) -> Config {
        cfg.loss = 0;
        cfg.dup = 0;
        cfg.reorder = 0;
        cfg.crash = 0;
        cfg
    }

    #[test]
    fn fault_free_run_reaches_goal() {
        let cfg = no_faults(Config::ci());
        let (topo, st, _) = run_to_goal(&cfg);
        assert!(is_goal(&cfg, &topo, &st), "final state: {st:?}");
        assert!(st.nodes[0].records.is_empty());
        assert_eq!(st.nodes[0].send_bufs.free(), cfg.send_bufs as usize);
        for m in &st.nodes[1..] {
            assert_eq!(m.delivered, 1);
            assert_eq!(m.recv_bufs.free(), cfg.recv_bufs as usize);
            assert!(m.refs.is_empty());
        }
    }

    #[test]
    fn fault_free_run_reaches_goal_on_deeper_trees() {
        for nodes in [2u8, 4, 5] {
            let cfg = no_faults(Config {
                nodes,
                ..Config::ci()
            });
            let (topo, st, _) = run_to_goal(&cfg);
            assert!(is_goal(&cfg, &topo, &st), "n={nodes} final state: {st:?}");
        }
    }

    #[test]
    fn binomial_topo_matches_simulator_tree() {
        use myrinet_check::check_tree;
        for n in 2u8..=6 {
            check_tree(n);
        }
    }

    /// Compare [`Topo::binomial`] against the simulator's tree builder.
    mod myrinet_check {
        use super::super::Topo;

        pub fn check_tree(n: u8) {
            use nic_mcast::{SpanningTree, TreeShape};
            let dests: Vec<myrinet::NodeId> =
                (1..n as u32).map(myrinet::NodeId).collect();
            let tree = SpanningTree::build(myrinet::NodeId(0), &dests, TreeShape::Binomial);
            let topo = Topo::binomial(n);
            for id in 0..n {
                let sim: Vec<u32> = tree
                    .children(myrinet::NodeId(id as u32))
                    .iter()
                    .map(|c| c.0)
                    .collect();
                let model: Vec<u32> =
                    topo.children[id as usize].iter().map(|&c| c as u32).collect();
                assert_eq!(model, sim, "children of {id} with n={n}");
            }
        }
    }

    #[test]
    fn mutation_widens_release_horizon() {
        assert_eq!(proto::release_horizon(1, ProtoMutation::None), 1);
        assert_eq!(
            proto::release_horizon(1, ProtoMutation::SenderWindowOffByOne),
            2
        );
    }
}
