//! Deterministic JSON rendering of counterexample traces and CI reports.
//!
//! Hand-rolled (no serde) so the output is byte-stable: fixed key order,
//! no whitespace variance, `\n`-terminated. Committed trace artifacts are
//! diffed byte-for-byte by the conformance tests.

use crate::explore::{CounterExample, Outcome};
use crate::model::{Action, Config, State, Topo};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn action_json(topo: &Topo, a: Action) -> String {
    match a {
        Action::Admit => r#"{"op":"admit"}"#.to_string(),
        Action::SdmaStart => r#"{"op":"sdma_start"}"#.to_string(),
        Action::ChainStep { node, seq } => {
            format!(r#"{{"op":"chain_step","node":{node},"seq":{seq}}}"#)
        }
        Action::Deliver { link, pos } => {
            let (src, dst) = topo.links[link as usize];
            format!(r#"{{"op":"deliver","src":{src},"dst":{dst},"pos":{pos}}}"#)
        }
        Action::Drop { link, pos } => {
            let (src, dst) = topo.links[link as usize];
            format!(r#"{{"op":"drop","src":{src},"dst":{dst},"pos":{pos}}}"#)
        }
        Action::Dup { link, pos } => {
            let (src, dst) = topo.links[link as usize];
            format!(r#"{{"op":"dup","src":{src},"dst":{dst},"pos":{pos}}}"#)
        }
        Action::RdmaDone { node } => format!(r#"{{"op":"rdma_done","node":{node}}}"#),
        Action::CrashLeaf { node } => format!(r#"{{"op":"crash_leaf","node":{node}}}"#),
        Action::Timeout { node } => format!(r#"{{"op":"timeout","node":{node}}}"#),
    }
}

fn config_json(cfg: &Config) -> String {
    format!(
        r#"{{"nodes":{},"packets":{},"window":{},"send_bufs":{},"recv_bufs":{},"loss":{},"dup":{},"reorder":{},"crash":{},"mutation":"{}","symmetry":{},"eager_nic":{}}}"#,
        cfg.nodes,
        cfg.packets,
        cfg.window,
        cfg.send_bufs,
        cfg.recv_bufs,
        cfg.loss,
        cfg.dup,
        cfg.reorder,
        cfg.crash,
        cfg.mutation.name(),
        cfg.symmetry,
        cfg.eager_nic
    )
}

fn delivered_json(st: &State) -> String {
    let ids: Vec<String> = st
        .nodes
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, n)| n.delivered == 1)
        .map(|(id, _)| id.to_string())
        .collect();
    format!("[{}]", ids.join(","))
}

/// Render a counterexample trace as deterministic JSON.
pub fn trace_json(cfg: &Config, topo: &Topo, cex: &CounterExample) -> String {
    let steps: Vec<String> = cex
        .steps
        .iter()
        .map(|s| {
            format!(
                r#"    {{"action":{},"note":"{}"}}"#,
                action_json(topo, s.action),
                esc(&s.note)
            )
        })
        .collect();
    format!(
        "{{\n  \"config\": {},\n  \"kind\": \"{}\",\n  \"detail\": \"{}\",\n  \"delivered\": {},\n  \"steps\": [\n{}\n  ]\n}}\n",
        config_json(cfg),
        esc(&cex.kind),
        esc(&cex.detail),
        delivered_json(&cex.state),
        steps.join(",\n")
    )
}

/// Render a CI run report as deterministic JSON. Wall time is deliberately
/// left out (it goes to stdout instead) so the committed artifact is
/// byte-stable across runs.
pub fn report_json(cfg: &Config, out: &Outcome) -> String {
    format!(
        "{{\n  \"config\": {},\n  \"states\": {},\n  \"transitions\": {},\n  \"max_depth\": {},\n  \"complete\": {},\n  \"violations\": {}\n}}\n",
        config_json(cfg),
        out.states,
        out.transitions,
        out.max_depth,
        out.complete,
        u8::from(out.violation.is_some())
    )
}
