//! Breadth-first exhaustive exploration with canonical state hashing,
//! optional sibling-leaf symmetry reduction and minimal counterexample
//! extraction.

use std::collections::BTreeMap;

use crate::model::{
    apply, check, describe, enabled, is_goal, Action, Chain, Config, NodeSt, Pkt, State, Topo,
};

/// Exploration bounds (the CI run needs a hard ceiling so a state-space
/// regression fails fast instead of hanging the pipeline).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Stop (incomplete) after visiting this many distinct states.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 2_000_000,
        }
    }
}

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The action taken.
    pub action: Action,
    /// Human-readable annotation (packet details for wire actions).
    pub note: String,
}

/// A violation with the shortest action sequence reaching it (BFS order
/// guarantees minimality in steps).
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// Which property failed: `"invariant"` or `"deadlock"`.
    pub kind: String,
    /// What exactly went wrong in the violating state.
    pub detail: String,
    /// The actions from the initial state to the violation.
    pub steps: Vec<TraceStep>,
    /// The violating state (for delivery-outcome comparison on replay).
    pub state: State,
}

/// Exploration result.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Distinct states visited (after canonicalization).
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// Depth of the deepest visited state.
    pub max_depth: usize,
    /// Whether the frontier drained (`false` when `max_states` or the
    /// caller's interrupt stopped the search early).
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<CounterExample>,
}

/// Exhaustively explore `cfg` breadth-first. `interrupt` is polled between
/// expansions; returning `true` stops the search (reported as incomplete).
pub fn explore(cfg: &Config, limits: &Limits, interrupt: &mut dyn FnMut() -> bool) -> Outcome {
    let topo = Topo::binomial(cfg.nodes);
    let initial = canon(cfg, &topo, State::initial(cfg, &topo));

    // Parallel arrays: the state table plus BFS parent pointers for trace
    // extraction.
    let mut states: Vec<State> = vec![initial.clone()];
    let mut parent: Vec<usize> = vec![usize::MAX];
    let mut via: Vec<Option<Action>> = vec![None];
    let mut depth: Vec<usize> = vec![0];
    let mut index: BTreeMap<State, usize> = BTreeMap::new();
    index.insert(initial, 0);

    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut complete = true;
    let mut violation: Option<(usize, String, String)> = None;

    if let Some(msg) = check(cfg, &topo, &states[0]) {
        violation = Some((0, "invariant".to_string(), msg));
    }

    let mut head = 0usize;
    'bfs: while head < states.len() {
        if interrupt() {
            complete = false;
            break;
        }
        let cur = head;
        head += 1;
        let acts = enabled(cfg, &topo, &states[cur]);
        if acts.is_empty() {
            if !is_goal(cfg, &topo, &states[cur]) {
                violation = Some((
                    cur,
                    "deadlock".to_string(),
                    deadlock_detail(cfg, &states[cur]),
                ));
                break;
            }
            continue;
        }
        for a in acts {
            let next = canon(cfg, &topo, apply(cfg, &topo, &states[cur], a));
            transitions += 1;
            if index.contains_key(&next) {
                continue;
            }
            let id = states.len();
            index.insert(next.clone(), id);
            states.push(next);
            parent.push(cur);
            via.push(Some(a));
            depth.push(depth[cur] + 1);
            max_depth = max_depth.max(depth[id]);
            if let Some(msg) = check(cfg, &topo, &states[id]) {
                violation = Some((id, "invariant".to_string(), msg));
                break 'bfs;
            }
            if states.len() >= limits.max_states {
                complete = false;
                break 'bfs;
            }
        }
    }

    let violation = violation.map(|(id, kind, detail)| {
        extract_trace(cfg, &topo, &states, &parent, &via, id, kind, detail)
    });
    Outcome {
        states: states.len(),
        transitions,
        max_depth,
        complete,
        violation,
    }
}

/// Why this non-goal state is stuck, in protocol vocabulary.
fn deadlock_detail(cfg: &Config, st: &State) -> String {
    let root = &st.nodes[0];
    let undelivered: Vec<usize> = st
        .nodes
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, n)| !n.crashed && n.delivered == 0)
        .map(|(id, _)| id)
        .collect();
    format!(
        "no action enabled but goal unmet: root min_acked={} of {} packets, \
         {} outstanding records, undelivered members {undelivered:?}",
        root.acks.min_acked().min(u64::from(cfg.packets)),
        cfg.packets,
        root.records.len()
    )
}

/// Rebuild the action path to `id` from the BFS parent pointers, then
/// re-walk it from the initial state to annotate every step with the
/// packet it touches (the annotation needs the *pre*-state of each step).
#[allow(clippy::too_many_arguments)]
fn extract_trace(
    cfg: &Config,
    topo: &Topo,
    states: &[State],
    parent: &[usize],
    via: &[Option<Action>],
    id: usize,
    kind: String,
    detail: String,
) -> CounterExample {
    let mut actions = Vec::new();
    let mut cur = id;
    while parent[cur] != usize::MAX {
        actions.push(via[cur].expect("non-root BFS node has an inbound action"));
        cur = parent[cur];
    }
    actions.reverse();

    // Re-walk the path to annotate each step from its *pre*-state. With
    // symmetry on the stored chain canonicalizes after every step, so the
    // re-walk must too — the result is then a canonical-form trace, sound
    // only up to sibling-leaf relabelling; the caller (see `lib.rs::run`)
    // re-explores with symmetry off before trusting a trace as concrete.
    let mut steps = Vec::new();
    let mut st = State::initial(cfg, topo);
    for a in &actions {
        steps.push(TraceStep {
            action: *a,
            note: describe(topo, &st, *a),
        });
        st = canon(cfg, topo, apply(cfg, topo, &st, *a));
    }
    CounterExample {
        kind,
        detail,
        steps,
        state: if cfg.symmetry {
            states[id].clone()
        } else {
            st
        },
    }
}

// ---------------------------------------------------------------------------
// Symmetry reduction
// ---------------------------------------------------------------------------

/// Canonicalize `st` under sibling-leaf symmetry when the configuration
/// asks for it; identity otherwise.
fn canon(cfg: &Config, topo: &Topo, st: State) -> State {
    if !cfg.symmetry {
        return st;
    }
    canonicalize(topo, st)
}

/// Sibling leaves with the same *fed signature* at their parent (which
/// records have already sent them their replica) are interchangeable: the
/// protocol never branches on a leaf's identity, only on its position in
/// the parent's child list. Sorting each such group by the leaf's local
/// state (plus its two link queues and its acked count) picks one
/// representative per orbit. The fed-signature grouping keeps the
/// permutation from rewriting replica-chain positions, so the parent's
/// records are untouched and the canonical form is reachable.
fn canonicalize(topo: &Topo, mut st: State) -> State {
    for (p, group) in &topo.leaf_groups {
        let p = *p as usize;
        // fed[ci]: per-record "already fed child ci" bits, the part of the
        // parent's state that names child positions.
        let fed_sig = |ci: u8| -> Vec<bool> {
            st.nodes[p]
                .records
                .iter()
                .map(|r| match r.chain {
                    Chain::Done => true,
                    Chain::Active(cj) => cj > ci,
                    Chain::Waiting => false,
                })
                .collect()
        };
        // Group sibling-leaf positions by identical fed signature; only
        // positions inside one group may trade places.
        let mut by_sig: BTreeMap<Vec<bool>, Vec<u8>> = BTreeMap::new();
        for &ci in group {
            by_sig.entry(fed_sig(ci)).or_default().push(ci);
        }
        for positions in by_sig.values() {
            if positions.len() < 2 {
                continue;
            }
            // Sort the group's positions by the leaf-local state key.
            let key = |ci: u8| -> (NodeSt, Vec<Pkt>, Vec<Pkt>, u64) {
                let child = topo.children[p][ci as usize];
                (
                    st.nodes[child as usize].clone(),
                    st.queues[topo.link(p as u8, child)].clone(),
                    st.queues[topo.link(child, p as u8)].clone(),
                    st.nodes[p].acks.count(ci as usize),
                )
            };
            let mut order: Vec<u8> = positions.clone();
            order.sort_by_key(|&ci| key(ci));
            if order == *positions {
                continue;
            }
            // Apply the permutation: position positions[k] takes the state
            // currently at position order[k].
            let keys: Vec<(NodeSt, Vec<Pkt>, Vec<Pkt>, u64)> =
                order.iter().map(|&ci| key(ci)).collect();
            for (k, &ci) in positions.iter().enumerate() {
                let child = topo.children[p][ci as usize];
                let (ns, down, up, _) = keys[k].clone();
                st.nodes[child as usize] = ns;
                st.queues[topo.link(p as u8, child)] = down;
                st.queues[topo.link(child, p as u8)] = up;
            }
            // Rebuild the parent's per-child acked counts in the new order
            // (ChildAcks has no setter — monotonic on purpose).
            let counts: Vec<u64> = keys.iter().map(|k| k.3).collect();
            let nchildren = topo.children[p].len();
            let mut fresh = gm::proto::ChildAcks::new(nchildren);
            for ci in 0..nchildren {
                let count = if let Some(k) = positions.iter().position(|&q| q as usize == ci) {
                    counts[k]
                } else {
                    st.nodes[p].acks.count(ci)
                };
                if count > 0 {
                    fresh.on_ack(ci, count - 1);
                }
            }
            st.nodes[p].acks = fresh;
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm::proto::ProtoMutation;

    fn never() -> impl FnMut() -> bool {
        || false
    }

    #[test]
    fn tiny_config_explores_clean() {
        // 2 nodes, 1 packet, 1 loss: small enough to eyeball.
        let cfg = Config {
            nodes: 2,
            packets: 1,
            window: 1,
            send_bufs: 1,
            recv_bufs: 1,
            loss: 1,
            dup: 0,
            reorder: 0,
            crash: 0,
            mutation: ProtoMutation::None,
            symmetry: false,
            eager_nic: false,
        };
        let out = explore(&cfg, &Limits::default(), &mut never());
        assert!(out.complete);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.states > 5, "a loss branch must exist: {}", out.states);
    }

    #[test]
    fn symmetry_preserves_verdict_and_shrinks() {
        let mut cfg = Config::ci();
        cfg.dup = 0;
        cfg.reorder = 0;
        cfg.crash = 0;
        cfg.loss = 1;
        let full = explore(
            &cfg.clone().with_symmetry(false),
            &Limits::default(),
            &mut never(),
        );
        let reduced = explore(
            &cfg.clone().with_symmetry(true),
            &Limits::default(),
            &mut never(),
        );
        assert!(full.complete && reduced.complete);
        assert_eq!(full.violation.is_none(), reduced.violation.is_none());
        assert!(
            reduced.states <= full.states,
            "reduction must not grow the space: {} > {}",
            reduced.states,
            full.states
        );
        assert!(
            reduced.states < full.states,
            "the two leaves of a 3-node tree are symmetric: {} vs {}",
            reduced.states,
            full.states
        );
    }

    #[test]
    fn mutation_produces_deadlock_counterexample() {
        // The off-by-one release horizon frees one record beyond the
        // acknowledged prefix; a single targeted loss then deadlocks the
        // protocol short of the goal.
        let mut cfg = Config {
            mutation: ProtoMutation::SenderWindowOffByOne,
            symmetry: false,
            ..Config::ci()
        };
        cfg.dup = 0;
        cfg.reorder = 0;
        cfg.crash = 0;
        let out = explore(&cfg, &Limits::default(), &mut never());
        let cex = out.violation.expect("mutation must be caught");
        assert_eq!(cex.kind, "deadlock");
        assert!(!cex.steps.is_empty());
    }

    #[test]
    fn max_states_limit_reports_incomplete() {
        let cfg = Config::ci();
        let out = explore(&cfg, &Limits { max_states: 10 }, &mut never());
        assert!(!out.complete);
        assert!(out.states <= 11);
    }
}
