//! Integration tests of the MPI layer: barrier semantics, broadcast
//! correctness in both algorithms, rendezvous, group-creation costs, and
//! skew accounting.

use gm_mpi::{execute_mpi, BcastImpl, MpiOp, MpiRun};
use gm_sim::SimDuration;
use myrinet::FaultPlan;

#[test]
fn bcast_completes_for_every_size_and_impl() {
    for &size in &[0usize, 1, 100, 4096, 16_287, 16_288, 50_000] {
        for &b in &[BcastImpl::HostBinomial, BcastImpl::NicBased] {
            let run = MpiRun::bcast_loop(8, size, b, SimDuration::ZERO, 1, 5);
            let out = execute_mpi(&run);
            assert_eq!(out.latency.count(), 5, "size {size} {b:?}");
            assert!(out.latency.mean() > 0.0);
        }
    }
}

#[test]
fn odd_rank_counts_work() {
    for n in [2u32, 3, 5, 7, 11, 13] {
        for &b in &[BcastImpl::HostBinomial, BcastImpl::NicBased] {
            let run = MpiRun::bcast_loop(n, 777, b, SimDuration::ZERO, 1, 4);
            let out = execute_mpi(&run);
            assert_eq!(out.latency.count(), 4, "n={n} {b:?}");
        }
    }
}

#[test]
fn non_zero_root_broadcast() {
    for &b in &[BcastImpl::HostBinomial, BcastImpl::NicBased] {
        let mut run = MpiRun::bcast_loop(8, 512, b, SimDuration::ZERO, 1, 5);
        run.ops = vec![MpiOp::Barrier, MpiOp::Bcast { root: 5, size: 512 }];
        let out = execute_mpi(&run);
        assert_eq!(out.latency.count(), 5, "{b:?}");
    }
}

#[test]
fn first_nic_bcast_pays_group_creation() {
    // With zero warmup the first iteration includes the demand-driven
    // group setup; with warmup it does not. The first-iteration latency
    // must therefore be visibly larger.
    let mut cold = MpiRun::bcast_loop(8, 64, BcastImpl::NicBased, SimDuration::ZERO, 0, 1);
    cold.repeat = 1;
    let cold_lat = execute_mpi(&cold).latency.mean();
    let warm = MpiRun::bcast_loop(8, 64, BcastImpl::NicBased, SimDuration::ZERO, 1, 1);
    let warm_lat = execute_mpi(&warm).latency.mean();
    assert!(
        cold_lat > warm_lat * 1.5,
        "group creation cost invisible: cold {cold_lat:.2}us vs warm {warm_lat:.2}us"
    );
}

#[test]
fn barrier_synchronizes_under_skew() {
    // With a barrier between iterations, per-iteration latency stays
    // bounded even when ranks skew by up to 1 ms.
    let run = MpiRun::bcast_loop(
        8,
        8,
        BcastImpl::NicBased,
        SimDuration::from_micros(1000),
        2,
        20,
    );
    let out = execute_mpi(&run);
    assert_eq!(out.latency.count(), 20);
    // The last rank to exit is one that skewed (max ~ half the 1ms window),
    // but never more: the barrier stopped skew from accumulating across
    // iterations.
    assert!(
        out.latency.max() < 600.0,
        "skew accumulated across iterations: {:.1}us",
        out.latency.max()
    );
    // NIC-based receivers spend almost no CPU in the call even while the
    // cluster is heavily skewed.
    assert!(
        out.bcast_cpu_nonroot.mean() < 50.0,
        "NB bcast CPU too high under skew: {:.1}us",
        out.bcast_cpu_nonroot.mean()
    );
    assert!(out.skew_applied.count() > 0);
}

#[test]
fn bcast_survives_loss_at_mpi_level() {
    for &b in &[BcastImpl::HostBinomial, BcastImpl::NicBased] {
        let mut run = MpiRun::bcast_loop(8, 3000, b, SimDuration::ZERO, 1, 15);
        run.faults = FaultPlan::with_loss(0.02);
        let out = execute_mpi(&run);
        assert_eq!(out.latency.count(), 15, "{b:?}");
    }
}

#[test]
fn compute_op_blocks_progress() {
    let mut run = MpiRun::bcast_loop(4, 16, BcastImpl::NicBased, SimDuration::ZERO, 0, 3);
    run.ops = vec![
        MpiOp::Barrier,
        MpiOp::Compute(SimDuration::from_micros(500)),
        MpiOp::Bcast { root: 0, size: 16 },
    ];
    run.repeat = 3;
    let out = execute_mpi(&run);
    // 3 iterations x (barrier + 500us compute + bcast) > 1.5 ms.
    assert!(out.end_time.as_micros_f64() > 1_500.0);
}

#[test]
fn per_rank_programs_pingpong() {
    let size = 2048usize;
    let rank0 = vec![
        MpiOp::Send {
            to: 1,
            size,
            tag: 1,
        },
        MpiOp::Recv { from: 1, tag: 2 },
    ];
    let rank1 = vec![
        MpiOp::Recv { from: 0, tag: 1 },
        MpiOp::Send {
            to: 0,
            size,
            tag: 2,
        },
    ];
    let mut run = MpiRun::bcast_loop(2, size, BcastImpl::HostBinomial, SimDuration::ZERO, 0, 10);
    run.ops = vec![MpiOp::Barrier];
    run.rank_ops = Some(vec![rank0, rank1]);
    run.repeat = 10;
    let out = execute_mpi(&run);
    // Ten round trips of a 2 KB eager message: tens of microseconds each
    // (the upper bound allows for the trailing retransmission timer, which
    // fires once, finds everything acked, and disarms).
    let us = out.end_time.as_micros_f64();
    assert!((200.0..60_000.0).contains(&us), "end at {us:.1}us");
}

#[test]
fn rendezvous_pingpong_roundtrips() {
    let size = 100_000usize;
    let rank0 = vec![
        MpiOp::Send {
            to: 1,
            size,
            tag: 9,
        },
        MpiOp::Recv { from: 1, tag: 10 },
    ];
    let rank1 = vec![
        MpiOp::Recv { from: 0, tag: 9 },
        MpiOp::Send {
            to: 0,
            size,
            tag: 10,
        },
    ];
    let mut run = MpiRun::bcast_loop(2, size, BcastImpl::HostBinomial, SimDuration::ZERO, 0, 3);
    run.ops = vec![MpiOp::Barrier];
    run.rank_ops = Some(vec![rank0, rank1]);
    run.repeat = 3;
    let out = execute_mpi(&run);
    // 100 KB each way at 250 MB/s wire: ~400us one way, ~2.4ms for 3 RTTs.
    assert!(out.end_time.as_micros_f64() > 2_000.0);
}

#[test]
fn deterministic_given_seed() {
    let run = MpiRun::bcast_loop(
        8,
        1024,
        BcastImpl::NicBased,
        SimDuration::from_micros(400),
        2,
        10,
    );
    let a = execute_mpi(&run);
    let b = execute_mpi(&run);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.bcast_cpu.mean(), b.bcast_cpu.mean());
}

#[test]
fn multiple_roots_create_one_group_each_on_demand() {
    // Three different roots broadcast in the same program: the NIC-based
    // path must lazily create one group context per root ("the vast number
    // of possible combinations of communicators and root nodes" is exactly
    // why creation is demand-driven).
    let n = 8u32;
    let mut run = MpiRun::bcast_loop(n, 256, BcastImpl::NicBased, SimDuration::ZERO, 1, 4);
    run.ops = vec![
        MpiOp::Barrier,
        MpiOp::Bcast { root: 0, size: 256 },
        MpiOp::Bcast { root: 3, size: 256 },
        MpiOp::Bcast { root: 6, size: 256 },
    ];
    let out = execute_mpi(&run);
    // 3 bcasts per repetition, 4 post-warmup repetitions counted.
    assert_eq!(out.latency.count(), 3 * 4);
    assert!(out.latency.mean() > 0.0);
}

#[test]
fn sub_communicator_collectives_leave_outsiders_untouched() {
    // A sparse communicator {1,3,5,7} on an 8-node cluster: barriers and
    // broadcasts run among the members; outsiders see zero traffic.
    let mut run = MpiRun::bcast_loop(8, 512, BcastImpl::NicBased, SimDuration::ZERO, 1, 6);
    run.comm = Some(vec![1, 3, 5, 7]);
    run.ops = vec![MpiOp::Barrier, MpiOp::Bcast { root: 3, size: 512 }];
    let out = execute_mpi(&run);
    assert_eq!(out.latency.count(), 6);
    assert!(out.latency.mean() > 0.0);
    // A smaller communicator broadcasts faster than the full world.
    let world = MpiRun::bcast_loop(8, 512, BcastImpl::NicBased, SimDuration::ZERO, 1, 6);
    let world_out = execute_mpi(&world);
    assert!(out.latency.mean() < world_out.latency.mean());
}

#[test]
fn same_root_in_two_communicators_gets_distinct_groups() {
    // Run the same root with two different communicators; both must work
    // (the group id is keyed on the (communicator, root) pair).
    for comm in [vec![0u32, 1, 2, 3], vec![0, 4, 5, 6, 7]] {
        let mut run = MpiRun::bcast_loop(8, 256, BcastImpl::NicBased, SimDuration::ZERO, 1, 4);
        run.comm = Some(comm.clone());
        let out = execute_mpi(&run);
        assert_eq!(out.latency.count(), 4, "comm {comm:?}");
    }
}

#[test]
fn host_based_collectives_respect_the_communicator_too() {
    let mut run = MpiRun::bcast_loop(12, 2048, BcastImpl::HostBinomial, SimDuration::ZERO, 1, 5);
    run.comm = Some(vec![0, 2, 4, 6, 8, 10]);
    let out = execute_mpi(&run);
    assert_eq!(out.latency.count(), 5);
}
