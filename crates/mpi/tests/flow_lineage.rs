//! Critical-path extraction over MPI programs: the fig6-style skew
//! experiment, rebuilt causally. Under host-based binomial broadcast a
//! compute delay at an *interior* rank stalls its whole subtree — the
//! critical path must reroute through the skewed rank. (Under the paper's
//! NIC-based scheme the NIC forwards without the host, which is exactly
//! why fig 6 shows flat CPU cost; the contrast is pinned here at the
//! causal-structure level.)

use gm_mpi::{execute_mpi_observed, BcastImpl, MpiOp, MpiRun};
use gm_sim::probe::ProbeConfig;
use gm_sim::{FlowGraph, SimDuration, SimTime};

/// One host-binomial broadcast over 8 ranks (root 0), with an optional
/// compute delay injected at one rank before its `MPI_Bcast` call.
/// Returns the critical-path signature of the full run.
fn bcast_signature(skewed_rank: Option<u32>) -> String {
    let mut run = MpiRun::bcast_loop(
        8,
        1024,
        BcastImpl::HostBinomial,
        SimDuration::ZERO,
        0,
        1,
    );
    run.ops = vec![MpiOp::Bcast { root: 0, size: 1024 }];
    if let Some(r) = skewed_rank {
        let mut per_rank: Vec<Vec<MpiOp>> = (0..8).map(|_| run.ops.clone()).collect();
        per_rank[r as usize] = vec![
            MpiOp::Compute(SimDuration::from_micros(1000)),
            MpiOp::Bcast { root: 0, size: 1024 },
        ];
        run.rank_ops = Some(per_rank);
    }
    let (out, probe) = execute_mpi_observed(&run, ProbeConfig::spans());
    let events = probe.to_vec();
    let graph = FlowGraph::build(&events);
    assert_eq!(graph.validate(), Vec::<String>::new());
    let cp = graph
        .critical_path(&events, (SimTime::ZERO, out.end_time))
        .expect("run delivers the broadcast");
    assert_eq!(cp.bucket_sum(), cp.total, "buckets must sum to the window");
    cp.signature()
}

#[test]
fn interior_skew_reroutes_the_critical_path() {
    let baseline = bcast_signature(None);
    // Rank 2 is interior in the binomial tree rooted at 0 (its child is
    // rank 6). A 1 ms stall there dwarfs the ~tens-of-µs broadcast, so the
    // completion-determining delivery moves into rank 2's subtree.
    let skewed = bcast_signature(Some(2));
    assert_ne!(
        baseline, skewed,
        "a 1 ms interior stall must change the critical path"
    );
    assert!(
        skewed.contains(">n2>") && skewed.ends_with(">n6"),
        "skewed path should route through rank 2 to its child 6, got {skewed}"
    );
}
