//! The per-rank MPI interpreter.
//!
//! Each rank runs a small op program (`Barrier`, `Compute`, `SkewUniform`,
//! `Bcast`, `Send`, `Recv`) repeated a number of times, implemented as a
//! [`gm::HostApp`] state machine — the moral equivalent of MPICH-GM's
//! channel device:
//!
//! * **eager protocol** for messages up to the eager limit (one GM send;
//!   the receiver pays a bounce-buffer copy to the user buffer);
//! * **rendezvous protocol** above it (RTS → CTS → bulk data, modelling the
//!   remote-DMA path);
//! * **`MPI_Barrier`** as a dissemination barrier;
//! * **`MPI_Bcast`** either host-based (binomial store-and-forward over
//!   point-to-point, the stock MPICH-GM algorithm) or NIC-based (the
//!   paper's scheme: demand-driven group creation on the first broadcast
//!   per root, then a single multicast send; receivers block exactly like
//!   `MPI_Recv`). Rendezvous-sized broadcasts always take the host-based
//!   path, as in the paper.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;
use gm::{flow_tag, HostApp, HostCtx, Notice};
use gm_sim::{DetRng, FlowId, SimDuration, SimTime};
use myrinet::{GroupId, NodeId};
use nic_mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};

use crate::msg::{barrier_tag, tag, untag, Ctx, GroupSetup, BCAST_PORT, MPI_PORT};
use crate::stats::SharedStats;

/// App-track probe points for the MPI layer.
pub mod probes {
    use gm_sim::probe::{ProbeId, Track};

    /// A rank entered an MPI operation (label = op kind, payload = iteration).
    pub const MPI_OP: ProbeId = ProbeId::new("mpi_op", Track::App);

    /// NIC-based broadcast endpoints, annotated with the message's
    /// [`FlowId`](gm_sim::FlowId) so MPI-level send/deliver marks join the
    /// causal lineage of the underlying multicast (label = "send" or
    /// "deliver", payload = broadcast sequence).
    pub const MPI_BCAST_FLOW: ProbeId = ProbeId::new("mpi_bcast", Track::App);
}

/// One MPI operation in a rank program.
#[derive(Clone, Debug)]
pub enum MpiOp {
    /// Dissemination barrier over all ranks.
    Barrier,
    /// Busy the host CPU for a fixed duration.
    Compute(SimDuration),
    /// Draw a skew uniformly in [−max/2, +max/2]; positive draws compute
    /// for that long, others proceed immediately (paper §6.3). The root
    /// never skews.
    SkewUniform {
        /// Full width of the skew window.
        max: SimDuration,
    },
    /// Broadcast `size` bytes from `root` to every rank.
    Bcast {
        /// Broadcast root rank.
        root: u32,
        /// Payload size in bytes.
        size: usize,
    },
    /// Point-to-point send (blocking until local completion).
    Send {
        /// Destination rank.
        to: u32,
        /// Payload size.
        size: usize,
        /// User tag.
        tag: u32,
    },
    /// Point-to-point receive (blocking).
    Recv {
        /// Source rank.
        from: u32,
        /// User tag.
        tag: u32,
    },
}

/// Which `MPI_Bcast` algorithm eager-sized broadcasts use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastImpl {
    /// The paper's NIC-based multicast.
    NicBased,
    /// Stock binomial store-and-forward over point-to-point.
    HostBinomial,
}

/// Static configuration shared by all ranks.
#[derive(Clone, Debug)]
pub struct RankCfg {
    /// Number of ranks (rank r lives on node r).
    pub n: u32,
    /// The communicator: the sorted world ranks participating in this
    /// program's collectives. Collectives, barrier partners and broadcast
    /// trees are all expressed over this subset (`0..n` = MPI_COMM_WORLD).
    pub comm: Vec<u32>,
    /// Broadcast algorithm for eager sizes.
    pub bcast: BcastImpl,
    /// Eager/rendezvous switchover (bytes).
    pub eager_limit: usize,
    /// Host memcpy bandwidth for the eager bounce-buffer copy (bytes/s).
    pub copy_bandwidth: u64,
    /// Tree shape for NIC-based broadcast groups.
    pub nic_tree: TreeShape,
    /// Allow the NIC-based broadcast above the eager limit (the paper's
    /// future-work "multicast using remote DMA": the group tree carries the
    /// whole message, receivers keep enough credits posted). When false
    /// (the paper's implementation), oversized broadcasts fall back to the
    /// host-based rendezvous path.
    pub nic_rndv: bool,
    /// Warmup broadcast ordinals excluded from stats.
    pub warmup: u32,
    /// Master seed for skew draws.
    pub seed: u64,
}

const INTERNAL_OP: u64 = 0;
const INTERNAL_COPY: u64 = 1;

#[derive(Debug)]
enum Wait {
    /// Between ops.
    None,
    /// A Compute/Skew/recv-copy block.
    ComputeDone,
    /// A barrier round's partner message.
    Barrier {
        round: u32,
    },
    /// Root, NIC-based: group setup acks plus the local GroupReady.
    GroupCreate {
        acks: u32,
        local_ready: bool,
    },
    /// Root, NIC-based: the multicast SendDone.
    McastSendDone {
        tag: u64,
    },
    /// A matched receive: (src node, full tag).
    Msg {
        from: u32,
        tag: u64,
    },
    /// Outstanding child sends and/or the local bounce-buffer copy.
    SendsAndCopy,
    /// Rendezvous sender: waiting for CTS before pushing data.
    RndvCts {
        to: u32,
        value: u64,
        size: usize,
    },
    /// Sequential rendezvous fan-out for oversized broadcasts.
    BcastRndv {
        children: Vec<u32>,
        next: usize,
        size: usize,
        seq: u64,
        awaiting_cts: bool,
    },
    Done,
}

/// The per-rank application.
pub struct RankApp {
    cfg: RankCfg,
    me: u32,
    ops: Vec<MpiOp>,
    repeat: u32,
    stats: SharedStats,
    rng: DetRng,

    iter: u32,
    pc: usize,
    wait: Wait,

    /// (src node, full tag) → queued payloads not yet matched.
    unexpected: BTreeMap<(u32, u64), VecDeque<Bytes>>,
    barrier_seq: u64,
    /// Per-root broadcast sequence numbers (collective ordinal per root).
    bcast_seq: BTreeMap<u32, u64>,
    /// Broadcast ops completed by this rank.
    bcast_ordinal: u32,
    /// Groups this rank (as root) has installed.
    groups_ready: BTreeSet<u32>,
    /// Member side: root to ack once our GroupReady notice arrives.
    pending_group_ack: Option<u32>,
    /// Outstanding tracked send completions.
    sends_pending: u32,
    /// Outstanding local bounce-buffer copy.
    copy_pending: bool,
    bcast_enter: SimTime,
    bcast_is_root: bool,
}

impl RankApp {
    /// Build rank `me`'s app for `ops` repeated `repeat` times.
    pub fn new(
        cfg: RankCfg,
        me: u32,
        ops: Vec<MpiOp>,
        repeat: u32,
        stats: SharedStats,
    ) -> RankApp {
        assert!(!ops.is_empty() && repeat > 0);
        let rng = DetRng::substream(cfg.seed, "mpi-skew", me as u64);
        RankApp {
            cfg,
            me,
            ops,
            repeat,
            stats,
            rng,
            iter: 0,
            pc: 0,
            wait: Wait::None,
            unexpected: BTreeMap::new(),
            barrier_seq: 0,
            bcast_seq: BTreeMap::new(),
            bcast_ordinal: 0,
            groups_ready: BTreeSet::new(),
            pending_group_ack: None,
            sends_pending: 0,
            copy_pending: false,
            bcast_enter: SimTime::ZERO,
            bcast_is_root: false,
        }
    }

    /// True once the whole program has run.
    pub fn is_done(&self) -> bool {
        matches!(self.wait, Wait::Done)
    }

    /// Group ids are unique per (communicator, root) pair, exactly the key
    /// of the paper's demand-driven creation.
    fn gid(&self, root: u32) -> GroupId {
        let mut h: u32 = 0x811C_9DC5;
        for &r in &self.cfg.comm {
            h = (h ^ r).wrapping_mul(0x0100_0193);
        }
        GroupId(h.wrapping_mul(31).wrapping_add(root + 1))
    }

    /// My index within the communicator.
    fn comm_index(&self) -> usize {
        self.cfg
            .comm
            .iter()
            .position(|&r| r == self.me)
            .expect("rank runs a program but is not in the communicator")
    }

    fn node(rank: u32) -> NodeId {
        NodeId(rank)
    }

    fn copy_time(&self, bytes: usize) -> SimDuration {
        SimDuration::for_bytes(bytes as u64, self.cfg.copy_bandwidth)
    }

    fn barrier_rounds(&self) -> u32 {
        let n = self.cfg.comm.len() as u32;
        if n <= 1 {
            0
        } else {
            32 - (n - 1).leading_zeros()
        }
    }

    fn take_unexpected(&mut self, from: u32, t: u64) -> Option<Bytes> {
        let q = self.unexpected.get_mut(&(from, t))?;
        let m = q.pop_front();
        if q.is_empty() {
            self.unexpected.remove(&(from, t));
        }
        m
    }

    fn stash(&mut self, from: u32, t: u64, data: Bytes) {
        self.unexpected.entry((from, t)).or_default().push_back(data);
    }

    /// Binomial broadcast children over the communicator, rotated so `root`
    /// (a world rank, which must be a member) sits at virtual rank 0.
    fn hb_children(&self, root: u32) -> Vec<u32> {
        let comm = &self.cfg.comm;
        let n = comm.len() as u32;
        let root_ci = comm.iter().position(|&r| r == root).expect("root in comm") as u32;
        let ci = self.comm_index() as u32;
        let vrank = (ci + n - root_ci) % n;
        let mut children = Vec::new();
        let mut step = 1u32;
        while step < n {
            if vrank < step {
                let child = vrank + step;
                if child < n {
                    children.push(comm[((child + root_ci) % n) as usize]);
                }
            }
            step <<= 1;
        }
        children
    }

    fn hb_parent(&self, root: u32) -> Option<u32> {
        let comm = &self.cfg.comm;
        let n = comm.len() as u32;
        let root_ci = comm.iter().position(|&r| r == root).expect("root in comm") as u32;
        let ci = self.comm_index() as u32;
        let vrank = (ci + n - root_ci) % n;
        if vrank == 0 {
            return None;
        }
        let parent_v = vrank - (1 << (31 - vrank.leading_zeros()));
        Some(comm[((parent_v + root_ci) % n) as usize])
    }

    // -- op driver ------------------------------------------------------------

    /// Start the current op; ops that complete synchronously chain into the
    /// next one.
    fn step(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        loop {
            if self.iter >= self.repeat {
                self.wait = Wait::Done;
                return;
            }
            let op = self.ops[self.pc].clone();
            let label = match &op {
                MpiOp::Barrier => "barrier",
                MpiOp::Compute(_) => "compute",
                MpiOp::SkewUniform { .. } => "skew",
                MpiOp::Bcast { .. } => "bcast",
                MpiOp::Send { .. } => "send",
                MpiOp::Recv { .. } => "recv",
            };
            ctx.mark(probes::MPI_OP, label, self.iter as u64);
            let advanced = match op {
                MpiOp::Barrier => self.op_barrier(ctx),
                MpiOp::Compute(d) => {
                    ctx.compute(d, tag(Ctx::Internal, INTERNAL_OP));
                    self.wait = Wait::ComputeDone;
                    false
                }
                MpiOp::SkewUniform { max } => self.op_skew(ctx, max),
                MpiOp::Bcast { root, size } => self.op_bcast(ctx, root, size),
                MpiOp::Send { to, size, tag: t } => self.op_send(ctx, to, size, t),
                MpiOp::Recv { from, tag: t } => self.op_recv(ctx, from, t),
            };
            if !advanced {
                return;
            }
            self.advance_pc();
        }
    }

    fn advance_pc(&mut self) {
        self.pc += 1;
        if self.pc >= self.ops.len() {
            self.pc = 0;
            self.iter += 1;
        }
        self.wait = Wait::None;
    }

    fn op_done(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        self.advance_pc();
        self.step(ctx);
    }

    // -- ops --------------------------------------------------------------------

    fn op_skew(&mut self, ctx: &mut HostCtx<'_, McastExt>, max: SimDuration) -> bool {
        let half = (max.as_nanos() / 2) as i64;
        let draw = if self.me == 0 || half == 0 {
            0
        } else {
            self.rng.range_inclusive(-half, half)
        };
        if draw <= 0 {
            return true;
        }
        // simlint::allow(units, "skew draw is raw nanoseconds by construction; positive after the guard above")
        let d = SimDuration::from_nanos(draw as u64);
        if self.bcast_ordinal >= self.cfg.warmup {
            self.stats.lock().expect("shared app state mutex poisoned").skew_applied.record_duration(d);
        }
        ctx.compute(d, tag(Ctx::Internal, INTERNAL_OP));
        self.wait = Wait::ComputeDone;
        false
    }

    fn op_barrier(&mut self, ctx: &mut HostCtx<'_, McastExt>) -> bool {
        if self.cfg.comm.len() <= 1 {
            return true;
        }
        self.barrier_seq += 1;
        let done = self.barrier_progress(ctx, 0);
        if done {
            self.record_barrier_exit(ctx);
        }
        done
    }

    fn record_barrier_exit(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let ordinal = self.barrier_seq - 1;
        self.stats
            .lock().expect("shared app state mutex poisoned")
            .record_barrier_exit(ordinal, ctx.cpu_now());
    }

    /// Drive the dissemination barrier from `round`; returns true when all
    /// rounds are complete.
    fn barrier_progress(&mut self, ctx: &mut HostCtx<'_, McastExt>, mut round: u32) -> bool {
        let n = self.cfg.comm.len() as u32;
        let ci = self.comm_index() as u32;
        let rounds = self.barrier_rounds();
        while round < rounds {
            let to = self.cfg.comm[((ci + (1 << round)) % n) as usize];
            let from = self.cfg.comm[((ci + n - (1 << round)) % n) as usize];
            let t = barrier_tag(self.barrier_seq, round);
            ctx.send(Self::node(to), MPI_PORT, MPI_PORT, Bytes::new(), t);
            if self.take_unexpected(from, t).is_some() {
                round += 1;
                continue;
            }
            self.wait = Wait::Barrier { round };
            return false;
        }
        true
    }

    fn op_send(
        &mut self,
        ctx: &mut HostCtx<'_, McastExt>,
        to: u32,
        size: usize,
        user: u32,
    ) -> bool {
        if size <= self.cfg.eager_limit {
            let t = tag(Ctx::P2p, user as u64);
            ctx.send(
                Self::node(to),
                MPI_PORT,
                MPI_PORT,
                Bytes::from(vec![0u8; size]),
                t,
            );
            self.sends_pending = 1;
            self.copy_pending = false;
            self.wait = Wait::SendsAndCopy;
        } else {
            ctx.send(
                Self::node(to),
                MPI_PORT,
                MPI_PORT,
                Bytes::new(),
                tag(Ctx::Rts, user as u64),
            );
            if self
                .take_unexpected(to, tag(Ctx::Cts, user as u64))
                .is_some()
            {
                self.rndv_push_data(ctx, to, size, user as u64);
            } else {
                self.wait = Wait::RndvCts {
                    to,
                    value: user as u64,
                    size,
                };
            }
        }
        false
    }

    fn rndv_push_data(&mut self, ctx: &mut HostCtx<'_, McastExt>, to: u32, size: usize, value: u64) {
        ctx.send(
            Self::node(to),
            MPI_PORT,
            MPI_PORT,
            Bytes::from(vec![0u8; size]),
            tag(Ctx::RndvData, value),
        );
        self.sends_pending = 1;
        self.copy_pending = false;
        self.wait = Wait::SendsAndCopy;
    }

    fn op_recv(&mut self, ctx: &mut HostCtx<'_, McastExt>, from: u32, user: u32) -> bool {
        if let Some(data) = self.take_unexpected(from, tag(Ctx::P2p, user as u64)) {
            return self.charge_copy_then_done(ctx, data.len());
        }
        if self
            .take_unexpected(from, tag(Ctx::Rts, user as u64))
            .is_some()
        {
            ctx.send(
                Self::node(from),
                MPI_PORT,
                MPI_PORT,
                Bytes::new(),
                tag(Ctx::Cts, user as u64),
            );
            self.wait = Wait::Msg {
                from,
                tag: tag(Ctx::RndvData, user as u64),
            };
            return false;
        }
        self.wait = Wait::Msg {
            from,
            tag: tag(Ctx::P2p, user as u64),
        };
        false
    }

    /// Charge the receive-side copy; true if nothing to charge.
    fn charge_copy_then_done(&mut self, ctx: &mut HostCtx<'_, McastExt>, bytes: usize) -> bool {
        let d = self.copy_time(bytes);
        if d == SimDuration::ZERO {
            return true;
        }
        ctx.compute(d, tag(Ctx::Internal, INTERNAL_OP));
        self.wait = Wait::ComputeDone;
        false
    }

    // -- broadcast ---------------------------------------------------------------

    fn op_bcast(&mut self, ctx: &mut HostCtx<'_, McastExt>, root: u32, size: usize) -> bool {
        self.bcast_enter = ctx.cpu_now();
        self.bcast_is_root = self.me == root;
        let seq = {
            let e = self.bcast_seq.entry(root).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        if self.bcast_is_root {
            self.stats
                .lock().expect("shared app state mutex poisoned")
                .record_enter(self.bcast_ordinal, self.bcast_enter);
        }
        let nic = self.cfg.bcast == BcastImpl::NicBased
            && (size <= self.cfg.eager_limit || self.cfg.nic_rndv);
        let done = if nic {
            if self.bcast_is_root {
                if self.groups_ready.contains(&root) {
                    self.mcast_send(ctx, root, size, seq);
                } else {
                    self.create_group(ctx, root);
                }
                false
            } else {
                let t = tag(Ctx::Bcast, seq);
                if let Some(data) = self.take_unexpected(root, t) {
                    self.start_bcast_copy(ctx, data.len())
                } else {
                    self.wait = Wait::Msg { from: root, tag: t };
                    false
                }
            }
        } else {
            self.hb_bcast(ctx, root, size, seq)
        };
        if done {
            self.finish_bcast(ctx);
        }
        done
    }

    fn mcast_send(&mut self, ctx: &mut HostCtx<'_, McastExt>, root: u32, size: usize, seq: u64) {
        let t = tag(Ctx::Bcast, seq);
        // Same self-flow the NIC assigns the request (origin == dest == root),
        // so this mark is the lineage's host-level starting point.
        ctx.mark_flow(
            probes::MPI_BCAST_FLOW,
            "send",
            seq,
            FlowId::new(self.me, flow_tag(t), self.me),
        );
        ctx.ext(McastRequest::Send {
            group: self.gid(root),
            data: Bytes::from(vec![0u8; size]),
            tag: t,
        });
        self.wait = Wait::McastSendDone { tag: t };
    }

    /// Demand-driven group creation: build the tree at the host, push each
    /// member its slice, install our own entry, and wait for everyone's
    /// ack ("the first broadcast operation for any group will pay the cost
    /// of creating group membership").
    fn create_group(&mut self, ctx: &mut HostCtx<'_, McastExt>, root: u32) {
        let dests: Vec<NodeId> = self
            .cfg
            .comm
            .iter()
            .filter(|&&r| r != root)
            .map(|&r| Self::node(r))
            .collect();
        let tree = SpanningTree::build(Self::node(root), &dests, self.cfg.nic_tree);
        for &d in tree.dests() {
            let setup = GroupSetup {
                root,
                parent: tree.parent(d).expect("dest has parent"),
                children: tree.children(d).to_vec(),
            };
            ctx.send(
                d,
                MPI_PORT,
                MPI_PORT,
                setup.encode(),
                tag(Ctx::GroupSetup, root as u64),
            );
        }
        ctx.provide_recv(BCAST_PORT, 64);
        ctx.ext(McastRequest::CreateGroup {
            group: self.gid(root),
            port: BCAST_PORT,
            root: Self::node(root),
            parent: None,
            children: tree.children(Self::node(root)).to_vec(),
        });
        self.wait = Wait::GroupCreate {
            acks: self.cfg.comm.len() as u32 - 1,
            local_ready: false,
        };
    }

    /// Group is live: fire the broadcast that triggered creation.
    fn group_create_finished(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let MpiOp::Bcast { root, size } = self.ops[self.pc] else {
            unreachable!("group creation outside a bcast")
        };
        self.groups_ready.insert(root);
        let seq = self.bcast_seq[&root] - 1; // assigned at op start
        self.mcast_send(ctx, root, size, seq);
    }

    fn hb_bcast(&mut self, ctx: &mut HostCtx<'_, McastExt>, root: u32, size: usize, seq: u64) -> bool {
        if self.bcast_is_root {
            return self.hb_forward(ctx, root, size, seq, false);
        }
        let eager = size <= self.cfg.eager_limit;
        let parent = self.hb_parent(root).expect("non-root has a parent");
        if eager {
            let t = tag(Ctx::Bcast, seq);
            if let Some(data) = self.take_unexpected(parent, t) {
                return self.hb_forward(ctx, root, data.len().max(size), seq, true);
            }
            self.wait = Wait::Msg { from: parent, tag: t };
        } else {
            let t = tag(Ctx::Rts, seq);
            if self.take_unexpected(parent, t).is_some() {
                ctx.send(
                    Self::node(parent),
                    MPI_PORT,
                    MPI_PORT,
                    Bytes::new(),
                    tag(Ctx::Cts, seq),
                );
                self.wait = Wait::Msg {
                    from: parent,
                    tag: tag(Ctx::RndvData, seq),
                };
            } else {
                self.wait = Wait::Msg { from: parent, tag: t };
            }
        }
        false
    }

    /// Forward the broadcast payload to this rank's binomial children and
    /// (for non-roots) charge the bounce-buffer copy. Returns true if the
    /// bcast completed synchronously (leaf, zero copy).
    fn hb_forward(
        &mut self,
        ctx: &mut HostCtx<'_, McastExt>,
        root: u32,
        size: usize,
        seq: u64,
        copy: bool,
    ) -> bool {
        let children = self.hb_children(root);
        let eager = size <= self.cfg.eager_limit;
        if eager {
            for &c in &children {
                ctx.send(
                    Self::node(c),
                    MPI_PORT,
                    MPI_PORT,
                    Bytes::from(vec![0u8; size]),
                    tag(Ctx::Bcast, seq),
                );
            }
            self.sends_pending = children.len() as u32;
            self.copy_pending = false;
            if copy {
                let d = self.copy_time(size);
                if d > SimDuration::ZERO {
                    self.copy_pending = true;
                    ctx.compute(d, tag(Ctx::Internal, INTERNAL_COPY));
                }
            }
            if self.sends_pending == 0 && !self.copy_pending {
                return true;
            }
            self.wait = Wait::SendsAndCopy;
            return false;
        }
        // Rendezvous fan-out, one child at a time (the copy is subsumed by
        // the zero-copy remote-DMA path).
        if children.is_empty() {
            return true;
        }
        ctx.send(
            Self::node(children[0]),
            MPI_PORT,
            MPI_PORT,
            Bytes::new(),
            tag(Ctx::Rts, seq),
        );
        self.wait = Wait::BcastRndv {
            children,
            next: 0,
            size,
            seq,
            awaiting_cts: true,
        };
        false
    }

    /// Non-root NIC-based delivery: only the local copy remains. Returns
    /// true if the bcast completed synchronously.
    fn start_bcast_copy(&mut self, ctx: &mut HostCtx<'_, McastExt>, bytes: usize) -> bool {
        let d = self.copy_time(bytes);
        self.sends_pending = 0;
        if d == SimDuration::ZERO {
            return true;
        }
        self.copy_pending = true;
        ctx.compute(d, tag(Ctx::Internal, INTERNAL_COPY));
        self.wait = Wait::SendsAndCopy;
        false
    }

    /// Record this rank's bcast exit.
    fn finish_bcast(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let exit = ctx.cpu_now();
        self.stats.lock().expect("shared app state mutex poisoned").record_exit(
            self.bcast_ordinal,
            self.bcast_is_root,
            self.bcast_enter,
            exit,
        );
        self.bcast_ordinal += 1;
    }

    fn finish_bcast_and_continue(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        self.finish_bcast(ctx);
        self.op_done(ctx);
    }

    /// Both legs of a SendsAndCopy wait retired?
    fn sends_and_copy_done(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        if self.sends_pending != 0 || self.copy_pending {
            return;
        }
        match self.ops[self.pc] {
            MpiOp::Bcast { .. } => self.finish_bcast_and_continue(ctx),
            _ => self.op_done(ctx),
        }
    }

    // -- message dispatch ----------------------------------------------------------

    fn on_message(&mut self, ctx: &mut HostCtx<'_, McastExt>, src: u32, t: u64, data: Bytes) {
        let (c, value) = untag(t);
        // Control traffic is processed regardless of the current op.
        if c == Ctx::GroupSetup as u8 {
            let setup = GroupSetup::decode(&data);
            ctx.provide_recv(BCAST_PORT, 64);
            ctx.ext(McastRequest::CreateGroup {
                group: self.gid(setup.root),
                port: BCAST_PORT,
                root: Self::node(setup.root),
                parent: Some(setup.parent),
                children: setup.children,
            });
            self.pending_group_ack = Some(setup.root);
            return;
        }
        if c == Ctx::GroupAck as u8 {
            let finished = match &mut self.wait {
                Wait::GroupCreate { acks, local_ready } => {
                    *acks -= 1;
                    *acks == 0 && *local_ready
                }
                _ => false,
            };
            if finished {
                self.group_create_finished(ctx);
            }
            return;
        }
        if c == Ctx::Cts as u8 {
            if let Wait::RndvCts { to, value: v, size } = self.wait {
                if to == src && v == value {
                    self.rndv_push_data(ctx, to, size, v);
                    return;
                }
            }
            let bcast_push = match &mut self.wait {
                Wait::BcastRndv {
                    children,
                    next,
                    size,
                    seq,
                    awaiting_cts,
                } if *awaiting_cts && children[*next] == src && *seq == value => {
                    *awaiting_cts = false;
                    Some((children[*next], *size, *seq))
                }
                _ => None,
            };
            if let Some((child, size, seq)) = bcast_push {
                ctx.send(
                    Self::node(child),
                    MPI_PORT,
                    MPI_PORT,
                    Bytes::from(vec![0u8; size]),
                    tag(Ctx::RndvData, seq),
                );
                self.sends_pending = 1;
                return;
            }
            self.stash(src, t, data);
            return;
        }
        if c == Ctx::Rts as u8 {
            // May satisfy a blocking user recv or a rendezvous bcast recv.
            let wants = match self.wait {
                Wait::Msg { from, tag: want } if from == src => {
                    let (wc, wv) = untag(want);
                    (wc == Ctx::P2p as u8 || wc == Ctx::Rts as u8) && wv == value
                }
                _ => false,
            };
            if wants {
                ctx.send(
                    Self::node(src),
                    MPI_PORT,
                    MPI_PORT,
                    Bytes::new(),
                    tag(Ctx::Cts, value),
                );
                self.wait = Wait::Msg {
                    from: src,
                    tag: tag(Ctx::RndvData, value),
                };
                return;
            }
            self.stash(src, t, data);
            return;
        }
        if c == Ctx::Barrier as u8 {
            let matched = match self.wait {
                Wait::Barrier { round } => {
                    let n = self.cfg.comm.len() as u32;
                    let ci = self.comm_index() as u32;
                    let from = self.cfg.comm[((ci + n - (1 << round)) % n) as usize];
                    if src == from && t == barrier_tag(self.barrier_seq, round) {
                        Some(round)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match matched {
                Some(round) => {
                    if self.barrier_progress(ctx, round + 1) {
                        self.record_barrier_exit(ctx);
                        self.op_done(ctx);
                    }
                }
                None => self.stash(src, t, data),
            }
            return;
        }
        // Payload traffic: eager bcast, multicast delivery, p2p, rndv data.
        let matched = matches!(self.wait, Wait::Msg { from, tag: want } if from == src && want == t);
        if !matched {
            self.stash(src, t, data);
            return;
        }
        let len = data.len();
        match self.ops[self.pc].clone() {
            MpiOp::Bcast { root, size } => {
                let nic = self.cfg.bcast == BcastImpl::NicBased
                    && (size <= self.cfg.eager_limit || self.cfg.nic_rndv);
                let done = if nic {
                    self.start_bcast_copy(ctx, len)
                } else {
                    self.hb_forward(ctx, root, size.max(len), value, true)
                };
                if done {
                    self.finish_bcast_and_continue(ctx);
                }
            }
            MpiOp::Recv { .. } => {
                if self.charge_copy_then_done(ctx, len) {
                    self.op_done(ctx);
                }
            }
            op => unreachable!("payload matched outside bcast/recv: {op:?}"),
        }
    }
}

impl HostApp<McastExt> for RankApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(MPI_PORT, 512);
        self.step(ctx);
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Recv {
                port,
                src,
                tag: t,
                data,
                ..
            } => {
                ctx.provide_recv(port, 1);
                self.on_message(ctx, src.0, t, data);
            }
            Notice::SendComplete { tag: t, .. } => {
                let (c, _) = untag(t);
                let tracked = c == Ctx::Bcast as u8
                    || c == Ctx::RndvData as u8
                    || c == Ctx::P2p as u8;
                if !tracked || self.sends_pending == 0 {
                    return;
                }
                self.sends_pending -= 1;
                match &mut self.wait {
                    Wait::SendsAndCopy => self.sends_and_copy_done(ctx),
                    Wait::BcastRndv {
                        children,
                        next,
                        seq,
                        awaiting_cts,
                        ..
                    } => {
                        debug_assert!(!*awaiting_cts);
                        *next += 1;
                        if *next < children.len() {
                            let child = children[*next];
                            let seq = *seq;
                            *awaiting_cts = true;
                            ctx.send(
                                Self::node(child),
                                MPI_PORT,
                                MPI_PORT,
                                Bytes::new(),
                                tag(Ctx::Rts, seq),
                            );
                        } else {
                            self.finish_bcast_and_continue(ctx);
                        }
                    }
                    _ => {}
                }
            }
            Notice::ComputeDone { tag: t } => {
                let (_, v) = untag(t);
                if v == INTERNAL_COPY {
                    self.copy_pending = false;
                    if matches!(self.wait, Wait::SendsAndCopy) {
                        self.sends_and_copy_done(ctx);
                    }
                } else if matches!(self.wait, Wait::ComputeDone) {
                    self.op_done(ctx);
                }
            }
            Notice::Ext(McastNotice::GroupReady { .. }) => {
                if let Some(root) = self.pending_group_ack.take() {
                    ctx.send(
                        Self::node(root),
                        MPI_PORT,
                        MPI_PORT,
                        Bytes::new(),
                        tag(Ctx::GroupAck, root as u64),
                    );
                    return;
                }
                let finished = match &mut self.wait {
                    Wait::GroupCreate { acks, local_ready } => {
                        *local_ready = true;
                        *acks == 0
                    }
                    _ => false,
                };
                if finished {
                    self.group_create_finished(ctx);
                }
            }
            Notice::Ext(McastNotice::SendDone { tag: t, .. }) => {
                if matches!(self.wait, Wait::McastSendDone { tag } if tag == t) {
                    self.finish_bcast_and_continue(ctx);
                }
            }
            // The MPI layer drives barriers at host level; NIC-collective
            // completions are not part of its protocol.
            Notice::Ext(McastNotice::BarrierDone { .. })
            | Notice::Ext(McastNotice::AllreduceDone { .. }) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MpiStats;

    fn app(n: u32, me: u32) -> RankApp {
        let cfg = RankCfg {
            n,
            comm: (0..n).collect(),
            bcast: BcastImpl::HostBinomial,
            eager_limit: 16_287,
            copy_bandwidth: 400_000_000,
            nic_tree: TreeShape::Binomial,
            nic_rndv: false,
            warmup: 0,
            seed: 1,
        };
        RankApp::new(cfg, me, vec![MpiOp::Barrier], 1, MpiStats::new(0, 0, 1))
    }

    /// Reconstruct the tree from children lists and check it is a valid
    /// spanning tree rooted at `root` with consistent parent pointers.
    fn check_tree(n: u32, root: u32) {
        let mut seen = vec![false; n as usize];
        seen[root as usize] = true;
        let mut frontier = vec![root];
        let mut edges = 0;
        while let Some(r) = frontier.pop() {
            for c in app(n, r).hb_children(root) {
                assert!(!seen[c as usize], "n={n} root={root}: {c} reached twice");
                assert_eq!(
                    app(n, c).hb_parent(root),
                    Some(r),
                    "n={n} root={root}: parent of {c}"
                );
                seen[c as usize] = true;
                edges += 1;
                frontier.push(c);
            }
        }
        assert_eq!(edges, n - 1, "n={n} root={root}: tree edge count");
        assert!(seen.iter().all(|&s| s), "n={n} root={root}: full coverage");
        assert_eq!(app(n, root).hb_parent(root), None);
    }

    #[test]
    fn binomial_rotation_covers_every_root_and_size() {
        for n in [2u32, 3, 4, 5, 7, 8, 13, 16] {
            for root in 0..n {
                check_tree(n, root);
            }
        }
    }

    #[test]
    fn barrier_round_count_is_ceil_log2() {
        for (n, rounds) in [(2u32, 1u32), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4)] {
            assert_eq!(app(n, 0).barrier_rounds(), rounds, "n={n}");
        }
    }

    #[test]
    fn unexpected_queue_is_fifo_per_key() {
        let mut a = app(2, 0);
        a.stash(1, 42, Bytes::from_static(b"first"));
        a.stash(1, 42, Bytes::from_static(b"second"));
        a.stash(1, 43, Bytes::from_static(b"other"));
        assert_eq!(&a.take_unexpected(1, 42).unwrap()[..], b"first");
        assert_eq!(&a.take_unexpected(1, 42).unwrap()[..], b"second");
        assert!(a.take_unexpected(1, 42).is_none());
        assert_eq!(&a.take_unexpected(1, 43).unwrap()[..], b"other");
    }

    #[test]
    fn copy_time_uses_configured_bandwidth() {
        let a = app(2, 0);
        // 400 MB/s: 4000 bytes = 10 us.
        assert_eq!(a.copy_time(4000), SimDuration::from_micros(10));
        assert_eq!(a.copy_time(0), SimDuration::ZERO);
    }
}
