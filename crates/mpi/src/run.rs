//! MPI-run harness: builds a cluster of ranks, runs a program to
//! completion, and returns the collective measurements.

use gm::{Cluster, GmParams, EAGER_LIMIT};
use gm_sim::probe::{ProbeConfig, ProbeSink};
use gm_sim::{Metrics, OnlineStats, SimDuration, SimTime};
use myrinet::{Fabric, FaultPlan, NetParams, NodeId, Topology};
use nic_mcast::{shape_for_size, McastConfig, McastExt, TreeShape};

use crate::rank::{BcastImpl, MpiOp, RankApp, RankCfg};
use crate::stats::MpiStats;

/// Default host memcpy bandwidth for eager bounce-buffer copies
/// (PIII-700-era, bytes/s).
pub const DEFAULT_COPY_BANDWIDTH: u64 = 400_000_000;

/// Everything describing one MPI experiment.
///
/// ```
/// use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
/// use gm_sim::SimDuration;
///
/// // 8 ranks, 512-byte NIC-based broadcasts, 200us average skew.
/// let run = MpiRun::bcast_loop(
///     8, 512, BcastImpl::NicBased, SimDuration::from_micros(800), 2, 10,
/// );
/// let out = execute_mpi(&run);
/// assert_eq!(out.latency.count(), 10);
/// assert!(out.skew_applied.count() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct MpiRun {
    /// Number of ranks.
    pub n_ranks: u32,
    /// The op program each rank repeats.
    pub ops: Vec<MpiOp>,
    /// Optional per-rank program override (length must equal `n_ranks`);
    /// ranks without an override run `ops`.
    pub rank_ops: Option<Vec<Vec<MpiOp>>>,
    /// The communicator: sorted world ranks participating in collectives
    /// (`None` = MPI_COMM_WORLD). Ranks outside the communicator run no
    /// program at all.
    pub comm: Option<Vec<u32>>,
    /// Repetitions (warmup + timed).
    pub repeat: u32,
    /// Broadcast ordinals excluded from aggregates.
    pub warmup: u32,
    /// Broadcast algorithm under test.
    pub bcast: BcastImpl,
    /// Eager/rendezvous switchover.
    pub eager_limit: usize,
    /// Host memcpy bandwidth.
    pub copy_bandwidth: u64,
    /// Tree shape for NIC-based groups (defaults from the first Bcast op's
    /// size via `shape_for_size`).
    pub nic_tree: Option<TreeShape>,
    /// Allow NIC-based broadcast above the eager limit (future-work
    /// extension; the paper's implementation falls back to host-based).
    pub nic_rndv: bool,
    /// Master seed.
    pub seed: u64,
    /// Node parameters.
    pub params: GmParams,
    /// Network parameters.
    pub net: NetParams,
    /// Fault plan.
    pub faults: FaultPlan,
    /// Multicast firmware ablation switches.
    pub mcast_config: McastConfig,
}

impl MpiRun {
    /// The canonical benchmark loop: `repeat x { Barrier; [Skew]; Bcast }`.
    pub fn bcast_loop(
        n_ranks: u32,
        size: usize,
        bcast: BcastImpl,
        skew_max: SimDuration,
        warmup: u32,
        iters: u32,
    ) -> MpiRun {
        let mut ops = vec![MpiOp::Barrier];
        if skew_max > SimDuration::ZERO {
            ops.push(MpiOp::SkewUniform { max: skew_max });
        }
        ops.push(MpiOp::Bcast { root: 0, size });
        MpiRun {
            n_ranks,
            ops,
            rank_ops: None,
            comm: None,
            repeat: warmup + iters,
            warmup,
            bcast,
            eager_limit: EAGER_LIMIT,
            copy_bandwidth: DEFAULT_COPY_BANDWIDTH,
            nic_tree: None,
            nic_rndv: false,
            seed: 0x6D_7069,
            params: GmParams::default(),
            net: NetParams::default(),
            faults: FaultPlan::none(),
            mcast_config: McastConfig::default(),
        }
    }
}

/// Aggregated results of one MPI run.
#[derive(Clone, Debug)]
pub struct MpiOutput {
    /// Per-iteration broadcast latency (max rank exit − root enter), µs.
    pub latency: OnlineStats,
    /// Time inside `MPI_Bcast` across ranks and iterations, µs.
    pub bcast_cpu: OnlineStats,
    /// Same, non-root ranks only.
    pub bcast_cpu_nonroot: OnlineStats,
    /// Positive skew actually applied, µs.
    pub skew_applied: OnlineStats,
    /// Steady-state barrier round time (consecutive-completion gaps), µs.
    pub barrier_round: OnlineStats,
    /// Total simulated time.
    pub end_time: SimTime,
    /// Events dispatched.
    pub events: u64,
    /// Counter snapshot: NIC and fabric counters summed over the run under
    /// the `nic.` / `fabric.` prefixes, plus `engine.events`.
    pub metrics: Metrics,
}

/// Execute `run` to completion.
pub fn execute_mpi(run: &MpiRun) -> MpiOutput {
    execute_mpi_observed(run, ProbeConfig::off()).0
}

/// Execute `run` with probes on, returning the canonical probe stream next
/// to the aggregates — the input to lineage reconstruction and
/// critical-path extraction over an MPI program (e.g. the fig6-style skew
/// experiments).
pub fn execute_mpi_observed(run: &MpiRun, probes: ProbeConfig) -> (MpiOutput, ProbeSink) {
    assert!(run.n_ranks >= 2, "need at least two ranks");
    let bcast_size = run
        .ops
        .iter()
        .find_map(|op| match op {
            MpiOp::Bcast { size, .. } => Some(*size),
            _ => None,
        })
        .unwrap_or(0);
    let nic_tree = run.nic_tree.unwrap_or_else(|| {
        shape_for_size(
            bcast_size.max(1),
            run.n_ranks as usize - 1,
            &run.params,
            &run.net,
            2,
        )
    });
    if let Some(per_rank) = &run.rank_ops {
        assert_eq!(per_rank.len(), run.n_ranks as usize, "one program per rank");
    }
    let ops_for = |r: u32| -> &Vec<MpiOp> {
        run.rank_ops
            .as_ref()
            .map(|v| &v[r as usize])
            .unwrap_or(&run.ops)
    };
    let bcasts_per_repeat = run
        .ops
        .iter()
        .filter(|op| matches!(op, MpiOp::Bcast { .. }))
        .count() as u32;
    let barriers_per_repeat = run
        .ops
        .iter()
        .filter(|op| matches!(op, MpiOp::Barrier))
        .count() as u32;
    let stats = MpiStats::new(
        run.warmup * bcasts_per_repeat,
        run.repeat * bcasts_per_repeat,
        run.repeat * barriers_per_repeat,
    );
    let comm: Vec<u32> = match &run.comm {
        Some(c) => {
            let mut c = c.clone();
            c.sort_unstable();
            c.dedup();
            assert!(c.len() >= 2, "a communicator needs at least two ranks");
            assert!(
                c.iter().all(|&r| r < run.n_ranks),
                "communicator rank out of range"
            );
            c
        }
        None => (0..run.n_ranks).collect(),
    };
    let cfg = RankCfg {
        n: run.n_ranks,
        comm: comm.clone(),
        bcast: run.bcast,
        eager_limit: run.eager_limit,
        copy_bandwidth: run.copy_bandwidth,
        nic_tree,
        nic_rndv: run.nic_rndv,
        warmup: run.warmup * bcasts_per_repeat,
        seed: run.seed,
    };
    let topo = Topology::for_nodes(run.n_ranks);
    let fabric = Fabric::with_config(topo, run.net, run.faults.clone(), run.seed);
    let mcfg = run.mcast_config;
    let mut cluster = Cluster::new(run.params.clone(), fabric, |_| McastExt::with_config(mcfg));
    cluster.set_probes(probes);
    for &r in &comm {
        cluster.set_app(
            NodeId(r),
            Box::new(RankApp::new(
                cfg.clone(),
                r,
                ops_for(r).clone(),
                run.repeat,
                stats.clone(),
            )),
        );
    }
    let mut eng = cluster.into_engine();
    let outcome = eng.run(SimTime::MAX, 4_000_000_000);
    assert_eq!(
        outcome,
        gm_sim::RunOutcome::Idle,
        "MPI run did not converge"
    );
    let s = stats.lock().expect("shared app state mutex poisoned");
    let expected: u64 = comm
        .iter()
        .map(|&r| {
            run.repeat as u64
                * ops_for(r)
                    .iter()
                    .filter(|op| matches!(op, MpiOp::Bcast { .. }))
                    .count() as u64
        })
        .sum();
    assert_eq!(
        s.bcasts_completed, expected,
        "every rank must complete every broadcast"
    );
    let mut metrics = Metrics::new();
    for &r in &comm {
        for (name, v) in eng.world().nic(NodeId(r)).counters.iter() {
            metrics.add("nic", name, v);
        }
    }
    for (name, v) in eng.world().fabric().counters().iter() {
        metrics.add("fabric", name, v);
    }
    metrics.set("engine", "events", eng.events_handled());
    let (end_time, events) = (eng.now(), eng.events_handled());
    let mut world = eng.into_world();
    let probe = ProbeSink::merge_canonical(vec![std::mem::replace(
        &mut world.probe,
        ProbeSink::disabled(),
    )]);
    metrics.set("probe", "dropped_events", probe.evicted());
    let out = MpiOutput {
        latency: s.latencies(),
        bcast_cpu: s.bcast_cpu.clone(),
        bcast_cpu_nonroot: s.bcast_cpu_nonroot.clone(),
        skew_applied: s.skew_applied.clone(),
        barrier_round: s.barrier_round(),
        end_time,
        events,
        metrics,
    };
    (out, probe)
}
