//! MPI wire vocabulary: tag encoding and control-message payloads.
//!
//! All MPI point-to-point traffic runs over GM port 2; NIC-based broadcast
//! data arrives on GM port 0 (the multicast group's delivery port). A GM
//! tag is 64 bits: the top byte carries the protocol context, the rest the
//! context-specific value (iteration number, barrier round, user tag).

use bytes::{Bytes, BytesMut};
use myrinet::{NodeId, PortId};

/// GM port used for MPI point-to-point messages.
pub const MPI_PORT: PortId = PortId(2);
/// GM port multicast groups deliver broadcast payloads on.
pub const BCAST_PORT: PortId = PortId(0);

/// Protocol context of a message tag (top byte).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Ctx {
    /// Dissemination-barrier round message.
    Barrier = 1,
    /// Broadcast payload (eager, host-based tree or multicast delivery).
    Bcast = 2,
    /// Group-membership installation request (root -> member).
    GroupSetup = 3,
    /// Group-membership acknowledgment (member -> root).
    GroupAck = 4,
    /// Rendezvous request-to-send.
    Rts = 5,
    /// Rendezvous clear-to-send.
    Cts = 6,
    /// Rendezvous bulk data.
    RndvData = 7,
    /// User point-to-point payload (eager).
    P2p = 8,
    /// Host-internal compute completions (copy costs, skew).
    Internal = 9,
}

/// Compose a tag from a context and a 56-bit value.
pub fn tag(ctx: Ctx, value: u64) -> u64 {
    debug_assert!(value < (1 << 56));
    ((ctx as u64) << 56) | value
}

/// Split a tag into its context byte and value.
pub fn untag(t: u64) -> (u8, u64) {
    ((t >> 56) as u8, t & ((1 << 56) - 1))
}

/// Compose a barrier tag: sequence number (48 bits) and round (8 bits).
pub fn barrier_tag(seq: u64, round: u32) -> u64 {
    debug_assert!(seq < (1 << 48) && round < 256);
    tag(Ctx::Barrier, (seq << 8) | round as u64)
}

/// Payload of a `GroupSetup` control message: this member's slice of the
/// spanning tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSetup {
    /// Root rank that owns the group.
    pub root: u32,
    /// The member's parent node.
    pub parent: NodeId,
    /// The member's children.
    pub children: Vec<NodeId>,
}

impl GroupSetup {
    /// Serialize to wire bytes (little-endian u32s).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8 + 4 * self.children.len());
        b.extend_from_slice(&self.root.to_le_bytes());
        b.extend_from_slice(&self.parent.0.to_le_bytes());
        b.extend_from_slice(&(self.children.len() as u32).to_le_bytes());
        for c in &self.children {
            b.extend_from_slice(&c.0.to_le_bytes());
        }
        b.freeze()
    }

    /// Parse from wire bytes. Panics on malformed input (simulation-internal
    /// messages are trusted).
    pub fn decode(data: &[u8]) -> GroupSetup {
        let u32_at = |i: usize| -> u32 {
            u32::from_le_bytes(data[i..i + 4].try_into().expect("4 bytes"))
        };
        let root = u32_at(0);
        let parent = NodeId(u32_at(4));
        let k = u32_at(8) as usize;
        let children = (0..k).map(|i| NodeId(u32_at(12 + 4 * i))).collect();
        GroupSetup {
            root,
            parent,
            children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let t = tag(Ctx::Bcast, 12345);
        let (c, v) = untag(t);
        assert_eq!(c, Ctx::Bcast as u8);
        assert_eq!(v, 12345);
    }

    #[test]
    fn barrier_tag_packs_seq_and_round() {
        let t = barrier_tag(7, 3);
        let (c, v) = untag(t);
        assert_eq!(c, Ctx::Barrier as u8);
        assert_eq!(v >> 8, 7);
        assert_eq!(v & 0xFF, 3);
    }

    #[test]
    fn group_setup_roundtrip() {
        let g = GroupSetup {
            root: 4,
            parent: NodeId(2),
            children: vec![NodeId(9), NodeId(11), NodeId(15)],
        };
        assert_eq!(GroupSetup::decode(&g.encode()), g);
        let leaf = GroupSetup {
            root: 0,
            parent: NodeId(0),
            children: vec![],
        };
        assert_eq!(GroupSetup::decode(&leaf.encode()), leaf);
    }
}
