//! Measurements shared by every rank of an MPI run.

use std::sync::Mutex;
use std::sync::Arc;

use gm_sim::{OnlineStats, SimTime};

/// Collective measurements, indexed by broadcast ordinal (the i-th
/// `MPI_Bcast` every rank executes).
#[derive(Debug)]
pub struct MpiStats {
    /// Iterations excluded from the aggregates.
    pub warmup: u32,
    /// Root's entry time per broadcast ordinal.
    pub enter_root: Vec<SimTime>,
    /// Latest exit time over all ranks per broadcast ordinal.
    pub exit_max: Vec<SimTime>,
    /// Time spent inside `MPI_Bcast` (µs), all ranks, post-warmup.
    pub bcast_cpu: OnlineStats,
    /// Same, excluding the root.
    pub bcast_cpu_nonroot: OnlineStats,
    /// Positive skew actually applied (µs), post-warmup.
    pub skew_applied: OnlineStats,
    /// Completed broadcast ops across all ranks.
    pub bcasts_completed: u64,
    /// Latest exit time over all ranks per barrier ordinal.
    pub barrier_exit_max: Vec<SimTime>,
}

/// Shared handle to the run's stats.
pub type SharedStats = Arc<Mutex<MpiStats>>;

impl MpiStats {
    /// Pre-sized stats for `total` broadcast ordinals and `barriers`
    /// barrier ordinals.
    pub fn new(warmup: u32, total: u32, barriers: u32) -> SharedStats {
        Arc::new(Mutex::new(MpiStats {
            warmup,
            enter_root: vec![SimTime::ZERO; total as usize],
            exit_max: vec![SimTime::ZERO; total as usize],
            bcast_cpu: OnlineStats::new(),
            bcast_cpu_nonroot: OnlineStats::new(),
            skew_applied: OnlineStats::new(),
            bcasts_completed: 0,
            barrier_exit_max: vec![SimTime::ZERO; barriers as usize],
        }))
    }

    /// Record a rank leaving barrier `ordinal`.
    pub fn record_barrier_exit(&mut self, ordinal: u64, exit: SimTime) {
        if let Some(slot) = self.barrier_exit_max.get_mut(ordinal as usize) {
            *slot = (*slot).max(exit);
        }
    }

    /// Steady-state barrier round time: mean gap between consecutive
    /// barrier completions (post-warmup), in microseconds.
    pub fn barrier_round(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        let xs = &self.barrier_exit_max;
        for i in (self.warmup.max(1) as usize)..xs.len() {
            if xs[i] > SimTime::ZERO && xs[i - 1] > SimTime::ZERO {
                s.record_duration(xs[i].saturating_since(xs[i - 1]));
            }
        }
        s
    }

    /// Record the root entering broadcast `ordinal`.
    pub fn record_enter(&mut self, ordinal: u32, at: SimTime) {
        self.enter_root[ordinal as usize] = at;
    }

    /// Record a rank leaving broadcast `ordinal`.
    pub fn record_exit(
        &mut self,
        ordinal: u32,
        is_root: bool,
        enter: SimTime,
        exit: SimTime,
    ) {
        self.bcasts_completed += 1;
        let prev = self.exit_max[ordinal as usize];
        self.exit_max[ordinal as usize] = prev.max(exit);
        if ordinal >= self.warmup {
            let cpu = exit.saturating_since(enter);
            self.bcast_cpu.record_duration(cpu);
            if !is_root {
                self.bcast_cpu_nonroot.record_duration(cpu);
            }
        }
    }

    /// Per-ordinal broadcast latency (max exit − root enter), post-warmup,
    /// in microseconds.
    pub fn latencies(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for i in self.warmup as usize..self.enter_root.len() {
            s.record_duration(self.exit_max[i].saturating_since(self.enter_root[i]));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::SimDuration;

    #[test]
    fn latency_is_max_exit_minus_root_enter() {
        let shared = MpiStats::new(1, 3, 0);
        let mut s = shared.lock().expect("shared app state mutex poisoned");
        for ord in 0..3u32 {
            let base = SimTime::from_nanos(1_000 * ord as u64);
            s.record_enter(ord, base);
            s.record_exit(ord, true, base, base + SimDuration::from_nanos(10));
            s.record_exit(
                ord,
                false,
                base,
                base + SimDuration::from_nanos(100 + ord as u64),
            );
            s.record_exit(ord, false, base, base + SimDuration::from_nanos(50));
        }
        let lat = s.latencies();
        // warmup=1 excludes ordinal 0.
        assert_eq!(lat.count(), 2);
        assert!((lat.mean() - 0.1015).abs() < 1e-9, "mean {}", lat.mean());
        // CPU stats exclude warmup: 3 ranks x 2 ordinals.
        assert_eq!(s.bcast_cpu.count(), 6);
        assert_eq!(s.bcast_cpu_nonroot.count(), 4);
    }
}
