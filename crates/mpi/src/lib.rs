//! `gm-mpi` — an MPICH-GM-analogue MPI layer over the simulated GM stack.
//!
//! Implements exactly the machinery the paper's MPI-level evaluation needs:
//! eager and rendezvous point-to-point transfer protocols, a dissemination
//! `MPI_Barrier`, and `MPI_Bcast` in two flavours — the stock host-based
//! binomial algorithm and the paper's NIC-based multicast with
//! demand-driven group-context creation. Rank programs are small op lists
//! interpreted per rank, with host-CPU-time accounting inside collective
//! calls for the process-skew experiments (Figures 6 and 7).
//!
//! ```
//! use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
//! use gm_sim::SimDuration;
//!
//! let run = MpiRun::bcast_loop(4, 1024, BcastImpl::NicBased, SimDuration::ZERO, 2, 10);
//! let out = execute_mpi(&run);
//! assert_eq!(out.latency.count(), 10);
//! assert!(out.latency.mean() > 0.0);
//! ```

#![warn(missing_docs)]

mod msg;
mod rank;
mod run;
mod stats;

pub use msg::{barrier_tag, tag, untag, Ctx, GroupSetup, BCAST_PORT, MPI_PORT};
pub use rank::{BcastImpl, MpiOp, RankApp, RankCfg};
pub use run::{execute_mpi, execute_mpi_observed, MpiOutput, MpiRun, DEFAULT_COPY_BANDWIDTH};
pub use stats::{MpiStats, SharedStats};
