//! The scenario API: typed, validated construction of measurement runs.
//!
//! [`Scenario`] replaces the old pattern of mutating [`McastRun`] fields by
//! hand. It validates everything at [`build`](Scenario::build) time (instead
//! of panicking mid-run), resolves [`TreeShape::Auto`] against the
//! calibrated postal model, and threads an observability configuration
//! ([`ProbeConfig`]) through to the cluster, so one run returns a [`Report`]
//! carrying latency statistics, a counter snapshot, the probe event history
//! and a latency-attribution breakdown.
//!
//! ```
//! use nic_mcast::{ProbeConfig, Scenario, TreeShape};
//!
//! let report = Scenario::nic_based(16)
//!     .size(4096)
//!     .tree(TreeShape::auto())
//!     .warmup(2)
//!     .iters(5)
//!     .probes(ProbeConfig::spans())
//!     .run();
//! assert_eq!(report.latency.count(), 5);
//! assert!(report.metrics.get("nic.tx_data") > 0);
//! assert!(!report.probe.is_empty());
//! ```

use gm::GmParams;
use gm_sim::probe::{attribution, attribution::Attribution, ProbeConfig};
use gm_sim::{SeriesConfig, SimTime};
use myrinet::{FaultPlan, NetParams, NodeId};

use crate::calibrate::shape_for_size;
use crate::group::McastConfig;
use crate::tree::TreeShape;
use crate::workloads::{
    execute_observed, AckMode, InstrumentedOutput, McastMode, McastRun, RunOutput,
};

/// A validated-at-build measurement scenario.
///
/// Construct with [`nic_based`](Scenario::nic_based) or
/// [`host_based`](Scenario::host_based), refine with the chained setters,
/// then [`build`](Scenario::build) (fallible) or [`run`](Scenario::run)
/// (builds and executes, panicking on invalid input with the validation
/// message).
#[derive(Clone, Debug)]
pub struct Scenario {
    run: McastRun,
    probes: ProbeConfig,
    series: SeriesConfig,
    dests_overridden: bool,
}

/// Why a [`Scenario`] failed to [`build`](Scenario::build).
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// Fewer than two nodes: there is nobody to multicast to.
    TooFewNodes(u32),
    /// The destination set is empty.
    NoDestinations,
    /// A destination appears twice.
    DuplicateDestination(NodeId),
    /// A destination is outside `0..n_nodes`.
    DestinationOutOfRange(NodeId),
    /// The root cannot also be a destination.
    RootIsDestination(NodeId),
    /// The probe node must be one of the destinations.
    ProbeNotADestination(NodeId),
    /// Loss/corruption probabilities must lie in `[0, 1)`.
    InvalidProbability(f64),
    /// At least one timed iteration is required.
    NoIterations,
    /// The message must carry at least one byte.
    EmptyMessage,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::TooFewNodes(n) => write!(f, "need at least 2 nodes, got {n}"),
            ScenarioError::NoDestinations => write!(f, "destination set is empty"),
            ScenarioError::DuplicateDestination(d) => write!(f, "duplicate destination {d}"),
            ScenarioError::DestinationOutOfRange(d) => {
                write!(f, "destination {d} is outside the cluster")
            }
            ScenarioError::RootIsDestination(r) => {
                write!(f, "root {r} cannot be a destination")
            }
            ScenarioError::ProbeNotADestination(p) => {
                write!(f, "probe {p} is not a destination")
            }
            ScenarioError::InvalidProbability(p) => {
                write!(f, "probability {p} is outside [0, 1)")
            }
            ScenarioError::NoIterations => write!(f, "need at least 1 timed iteration"),
            ScenarioError::EmptyMessage => write!(f, "message size must be at least 1 byte"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    fn new(n_nodes: u32, mode: McastMode) -> Scenario {
        // Defer the < 2 check to build(); McastRun::new asserts, so build
        // the run with a floor of 2 and remember the requested count.
        let mut run = McastRun::new(n_nodes.max(2), 1024, mode, TreeShape::Auto);
        run.n_nodes = n_nodes;
        Scenario {
            run,
            probes: ProbeConfig::off(),
            series: SeriesConfig::off(),
            dests_overridden: false,
        }
    }

    /// The paper's NIC-based multicast over an `n_nodes` cluster
    /// (defaults: 1 KB messages, auto tree, 20 warmup, 100 timed
    /// iterations, root 0, everyone else a destination, probes off).
    pub fn nic_based(n_nodes: u32) -> Scenario {
        Scenario::new(n_nodes, McastMode::NicBased)
    }

    /// The traditional host-based store-and-forward scheme, same defaults.
    pub fn host_based(n_nodes: u32) -> Scenario {
        Scenario::new(n_nodes, McastMode::HostBased)
    }

    /// Message size in bytes.
    pub fn size(mut self, bytes: usize) -> Scenario {
        self.run.size = bytes;
        self
    }

    /// Tree shape ([`TreeShape::auto`] resolves against the calibrated
    /// postal model at build time).
    pub fn tree(mut self, shape: TreeShape) -> Scenario {
        self.run.shape = shape;
        self
    }

    /// Independent per-packet loss probability (`[0, 1)`).
    pub fn loss(mut self, drop_prob: f64) -> Scenario {
        self.run.faults.drop_prob = drop_prob;
        self
    }

    /// Full fault plan (loss, corruption, targeted drop rules).
    pub fn faults(mut self, plan: FaultPlan) -> Scenario {
        self.run.faults = plan;
        self
    }

    /// Untimed warmup iterations.
    pub fn warmup(mut self, n: u32) -> Scenario {
        self.run.warmup = n;
        self
    }

    /// Timed iterations.
    pub fn iters(mut self, n: u32) -> Scenario {
        self.run.iters = n;
        self
    }

    /// The multicast root (destinations shift accordingly unless
    /// explicitly overridden with [`dests`](Scenario::dests)).
    pub fn root(mut self, root: NodeId) -> Scenario {
        self.run.root = root;
        self
    }

    /// Explicit destination set (default: every node but the root).
    pub fn dests(mut self, dests: Vec<NodeId>) -> Scenario {
        self.run.dests = dests;
        self.dests_overridden = true;
        self
    }

    /// Which destination returns the application-level ack.
    pub fn probe_node(mut self, probe: NodeId) -> Scenario {
        self.run.probe = probe;
        self
    }

    /// What ends an iteration at the root.
    pub fn ack(mut self, mode: AckMode) -> Scenario {
        self.run.ack = mode;
        self
    }

    /// Tolerate a run that idles before every timed iteration completes
    /// (used by `simcheck` counterexample replays, where non-completion
    /// *is* the expected verdict of a seeded protocol bug).
    pub fn allow_incomplete(mut self) -> Scenario {
        self.run.allow_incomplete = true;
        self
    }

    /// RNG seed (affects only fault draws).
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.run.seed = seed;
        self
    }

    /// Firmware ablation switches.
    pub fn config(mut self, config: McastConfig) -> Scenario {
        self.run.config = config;
        self
    }

    /// Node parameters.
    pub fn params(mut self, params: GmParams) -> Scenario {
        self.run.params = params;
        self
    }

    /// Network parameters.
    pub fn net(mut self, net: NetParams) -> Scenario {
        self.run.net = net;
        self
    }

    /// Observability configuration (default: [`ProbeConfig::off`], which
    /// records nothing and allocates nothing).
    pub fn probes(mut self, config: ProbeConfig) -> Scenario {
        self.probes = config;
        self
    }

    /// Gauge time-series configuration (default: [`SeriesConfig::off`],
    /// which records nothing and allocates nothing).
    pub fn series(mut self, config: SeriesConfig) -> Scenario {
        self.series = config;
        self
    }

    /// Number of shards for parallel execution (default: the
    /// `MYRI_SIM_SHARDS` environment variable, else 1 = sequential).
    /// Sharding never changes results — the merged run is bit-for-bit
    /// identical to the sequential reference — and configurations that
    /// cannot shard (targeted drop rules, indivisible topologies) fall
    /// back to sequential execution automatically.
    pub fn shards(mut self, n: u32) -> Scenario {
        self.run.shards = n;
        self
    }

    /// Validate and resolve into an executable scenario.
    pub fn build(self) -> Result<BuiltScenario, ScenarioError> {
        let Scenario {
            mut run,
            probes,
            series,
            dests_overridden,
        } = self;
        if run.n_nodes < 2 {
            return Err(ScenarioError::TooFewNodes(run.n_nodes));
        }
        // A moved root regenerates the default destination/probe set.
        if !dests_overridden {
            run.dests = (0..run.n_nodes).map(NodeId).filter(|&d| d != run.root).collect();
            if !run.dests.contains(&run.probe) {
                run.probe = *run.dests.last().expect("n_nodes >= 2");
            }
        }
        if run.dests.is_empty() {
            return Err(ScenarioError::NoDestinations);
        }
        let mut sorted = run.dests.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(ScenarioError::DuplicateDestination(w[0]));
        }
        if let Some(&d) = sorted.iter().find(|d| d.0 >= run.n_nodes) {
            return Err(ScenarioError::DestinationOutOfRange(d));
        }
        if run.root.0 >= run.n_nodes {
            return Err(ScenarioError::DestinationOutOfRange(run.root));
        }
        if sorted.contains(&run.root) {
            return Err(ScenarioError::RootIsDestination(run.root));
        }
        if !run.dests.contains(&run.probe) {
            return Err(ScenarioError::ProbeNotADestination(run.probe));
        }
        for p in [run.faults.drop_prob, run.faults.corrupt_prob] {
            if !(0.0..1.0).contains(&p) {
                return Err(ScenarioError::InvalidProbability(p));
            }
        }
        if run.iters == 0 {
            return Err(ScenarioError::NoIterations);
        }
        if run.size == 0 {
            return Err(ScenarioError::EmptyMessage);
        }
        if run.shape == TreeShape::Auto {
            let hops = if run.n_nodes <= 16 { 2 } else { 4 };
            run.shape = match run.mode {
                McastMode::NicBased => shape_for_size(
                    run.size,
                    run.dests.len(),
                    &run.params,
                    &run.net,
                    hops,
                ),
                // The traditional scheme the paper compares against.
                McastMode::HostBased => TreeShape::Binomial,
            };
        }
        Ok(BuiltScenario { run, probes, series })
    }

    /// Build and execute, returning the [`Report`].
    ///
    /// Panics with the validation message on invalid input; use
    /// [`build`](Scenario::build) to handle errors.
    pub fn run(self) -> Report {
        match self.build() {
            Ok(built) => built.run(),
            Err(e) => panic!("invalid scenario: {e}"),
        }
    }
}

/// A validated scenario, ready to execute (or inspect).
#[derive(Clone, Debug)]
pub struct BuiltScenario {
    run: McastRun,
    probes: ProbeConfig,
    series: SeriesConfig,
}

impl BuiltScenario {
    /// The fully-resolved run specification (Auto tree already replaced).
    pub fn spec(&self) -> &McastRun {
        &self.run
    }

    /// The observability configuration.
    pub fn probe_config(&self) -> ProbeConfig {
        self.probes
    }

    /// The gauge time-series configuration.
    pub fn series_config(&self) -> SeriesConfig {
        self.series
    }

    /// Execute to completion.
    pub fn run(&self) -> Report {
        let InstrumentedOutput {
            output,
            probe,
            metrics,
            windows,
            series,
        } = execute_observed(&self.run, self.probes, self.series);
        let attribution = if self.probes.is_enabled() && !windows.is_empty() {
            let events = probe.to_vec();
            Some(attribution::attribute(&events, &windows))
        } else {
            None
        };
        Report {
            output,
            metrics,
            probe,
            windows,
            attribution,
            series,
        }
    }
}

/// Everything one scenario execution produced.
///
/// Dereferences to [`RunOutput`], so existing measurement code
/// (`report.latency.mean()`, `report.retransmissions`, ...) keeps working.
#[derive(Debug)]
pub struct Report {
    /// The latency measurements (also reachable through `Deref`).
    pub output: RunOutput,
    /// Counter snapshot: `nic.*` (summed over nodes), `fabric.*`,
    /// `engine.*`.
    pub metrics: gm_sim::Metrics,
    /// The recorded probe events (empty unless probes were enabled).
    pub probe: gm_sim::ProbeSink,
    /// `(start, end)` of each timed iteration.
    pub windows: Vec<(SimTime, SimTime)>,
    /// Latency attribution over the timed windows (present when probes
    /// were enabled).
    pub attribution: Option<Attribution>,
    /// The recorded gauge time-series (empty unless series were enabled).
    pub series: gm_sim::SeriesSink,
}

impl std::ops::Deref for Report {
    type Target = RunOutput;
    fn deref(&self) -> &RunOutput {
        &self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs_and_reports() {
        let report = Scenario::nic_based(8)
            .size(512)
            .tree(TreeShape::auto())
            .warmup(1)
            .iters(3)
            .probes(ProbeConfig::spans())
            .run();
        assert_eq!(report.latency.count(), 3);
        assert!(report.latency.mean() > 0.0);
        assert!(report.metrics.get("nic.tx_data") > 0);
        assert!(report.metrics.get("engine.events") > 0);
        assert!(!report.probe.is_empty());
        assert_eq!(report.windows.len(), 3);
        let attr = report.attribution.as_ref().expect("probes were on");
        assert!(attr.mean_total_us() > 0.0);
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let report = Scenario::nic_based(4).warmup(1).iters(2).run();
        assert!(report.probe.is_empty());
        assert_eq!(report.probe.allocated_capacity(), 0);
        assert!(report.attribution.is_none());
        // The series sink is off by default and must be just as free.
        assert!(report.series.is_empty());
        assert_eq!(report.series.allocated_capacity(), 0);
    }

    #[test]
    fn validation_catches_bad_input() {
        assert_eq!(
            Scenario::nic_based(1).build().unwrap_err(),
            ScenarioError::TooFewNodes(1)
        );
        assert_eq!(
            Scenario::nic_based(4).iters(0).build().unwrap_err(),
            ScenarioError::NoIterations
        );
        assert_eq!(
            Scenario::nic_based(4).loss(1.5).build().unwrap_err(),
            ScenarioError::InvalidProbability(1.5)
        );
        assert_eq!(
            Scenario::nic_based(4).size(0).build().unwrap_err(),
            ScenarioError::EmptyMessage
        );
        assert_eq!(
            Scenario::nic_based(4)
                .probe_node(NodeId(0))
                .dests(vec![NodeId(1), NodeId(2)])
                .build()
                .unwrap_err(),
            ScenarioError::ProbeNotADestination(NodeId(0))
        );
        assert_eq!(
            Scenario::nic_based(4)
                .dests(vec![NodeId(1), NodeId(1)])
                .build()
                .unwrap_err(),
            ScenarioError::DuplicateDestination(NodeId(1))
        );
    }

    #[test]
    fn moving_the_root_regenerates_defaults() {
        let built = Scenario::nic_based(4).root(NodeId(3)).build().expect("valid");
        assert_eq!(built.spec().root, NodeId(3));
        assert!(!built.spec().dests.contains(&NodeId(3)));
        assert_eq!(built.spec().dests.len(), 3);
        assert!(built.spec().dests.contains(&built.spec().probe));
    }

    #[test]
    fn auto_tree_resolves_before_execution() {
        let built = Scenario::nic_based(16)
            .size(64)
            .tree(TreeShape::auto())
            .build()
            .expect("valid");
        assert_ne!(built.spec().shape, TreeShape::Auto);
        let hb = Scenario::host_based(8).tree(TreeShape::auto()).build().expect("valid");
        assert_eq!(hb.spec().shape, TreeShape::Binomial);
    }
}
