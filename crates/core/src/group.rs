//! Multicast group state and the host<->NIC request/notice vocabulary.
//!
//! A *group* is the NIC-table form of one spanning tree: each member NIC
//! stores its own parent, children and the three kinds of sequence state the
//! paper lists (§5 "Reliability and In Order Delivery"):
//!
//! 1. a receive sequence number for packets from the parent,
//! 2. a send sequence number for packets sent to the children,
//! 3. an array of acknowledged sequence numbers, one per child.

use std::collections::VecDeque;

use bytes::{Bytes, BytesMut};
use gm::proto::{ChildAcks, GbnRx, GbnTx};
use gm_sim::SimTime;
use myrinet::{GroupId, NodeId, PortId};

/// Host-to-NIC multicast requests.
#[derive(Clone, Debug)]
pub enum McastRequest {
    /// Install (or replace) this node's entry for a group. The host built
    /// the spanning tree and preposts each member's slice of it.
    CreateGroup {
        /// Group identifier (unique per (root, membership)).
        group: GroupId,
        /// Host port multicast messages are delivered to.
        port: PortId,
        /// The tree root.
        root: NodeId,
        /// This node's parent (`None` at the root).
        parent: Option<NodeId>,
        /// This node's children, in send order.
        children: Vec<NodeId>,
    },
    /// Multicast `data` to the group (root only). One request regardless of
    /// destination count — this is the NIC-based multisend entry point.
    Send {
        /// Target group.
        group: GroupId,
        /// Message payload.
        data: Bytes,
        /// Tag delivered to receivers and echoed in the completion notice.
        tag: u64,
    },
    /// Enter the NIC-level barrier on a group (every member calls this; the
    /// paper lists NIC-supported collectives beyond multicast as future
    /// work). Completion arrives as [`McastNotice::BarrierDone`].
    BarrierEnter {
        /// The group whose tree the barrier runs over.
        group: GroupId,
        /// Tag echoed in the completion notice.
        tag: u64,
    },
    /// Enter a NIC-level allreduce on a group: every member contributes a
    /// value; partial results combine up the tree in firmware and the root
    /// releases the final result through the reliable multicast path.
    /// Completion arrives as [`McastNotice::AllreduceDone`].
    AllreduceEnter {
        /// The group whose tree the reduction runs over.
        group: GroupId,
        /// This member's contribution.
        value: u64,
        /// The combining operator (must match across members).
        op: ReduceOp,
        /// Tag echoed in the completion notice.
        tag: u64,
    },
}

/// The combining operator of a NIC-level allreduce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Combine two operands.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// What kind of collective the group is currently running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CollKind {
    Barrier,
    Allreduce(ReduceOp),
}

/// NIC-to-host multicast notices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McastNotice {
    /// The NIC installed the group table entry.
    GroupReady {
        /// The group.
        group: GroupId,
    },
    /// All children acknowledged every packet of the message with `tag`
    /// (root only).
    SendDone {
        /// The group.
        group: GroupId,
        /// The message tag.
        tag: u64,
    },
    /// The NIC-level barrier completed a round on this node.
    BarrierDone {
        /// The group.
        group: GroupId,
        /// The tag passed to `BarrierEnter`.
        tag: u64,
    },
    /// The NIC-level allreduce completed a round on this node.
    AllreduceDone {
        /// The group.
        group: GroupId,
        /// The combined result over all members.
        result: u64,
        /// The tag passed to `AllreduceEnter`.
        tag: u64,
    },
}

/// Where retransmitted packet data comes from (paper §5 "Messages
/// Forwarding", second design issue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RetxBufferPolicy {
    /// Release the NIC receive buffer as soon as forwarding is done and
    /// retransmit from the (registered) host-memory replica — the paper's
    /// choice.
    #[default]
    HostMemory,
    /// Hold the NIC receive buffer until all children acknowledge — the
    /// "naive solution" the paper rejects because SRAM buffers are scarce.
    HoldSram,
}

/// Where a forwarding NIC gets a token to transmit with (paper §5
/// "Messages Forwarding", first design issue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FwdTokenPolicy {
    /// Transform the receive token into a send token — the paper's choice
    /// ("it does not require additional resources at the NIC").
    #[default]
    TransformRecv,
    /// Grab a send token from the free pool — "can lead to the possibility
    /// of deadlock when the intermediate nodes are running out of send
    /// tokens".
    FreePool,
}

/// How the root emits replicas (paper §5 "Sending of Multiple Message
/// Replicas", approaches 1 and 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MultisendImpl {
    /// One request; replicas produced by descriptor callbacks rewriting the
    /// header — the paper's choice (approach 2).
    #[default]
    Callback,
    /// Generate one send token per destination (approach 1): pays the token
    /// processing cost once per destination.
    PerDestToken,
}

/// Ablation switches for the multicast firmware.
#[derive(Clone, Copy, Debug, Default)]
pub struct McastConfig {
    /// Retransmission data source.
    pub retx_buffer: RetxBufferPolicy,
    /// Forwarding token source.
    pub fwd_token: FwdTokenPolicy,
    /// Replica generation mechanism.
    pub multisend: MultisendImpl,
}

/// One packet's bookkeeping while any child has not acknowledged it.
#[derive(Debug)]
pub(crate) struct McastRec {
    pub seq: u64,
    pub offset: u32,
    pub msg_len: u32,
    pub tag: u64,
    /// The payload replica (models the registered host-memory copy under
    /// [`RetxBufferPolicy::HostMemory`], the held SRAM buffer otherwise).
    pub payload: Bytes,
    /// Last time this packet finished serializing to any child.
    pub last_tx: Option<SimTime>,
    pub retries: u32,
}

/// An in-flight inbound multicast message being reassembled.
#[derive(Debug)]
pub(crate) struct InMsg {
    pub tag: u64,
    pub msg_len: u32,
    pub received: u32,
    pub rdma_done: u32,
    pub data: BytesMut,
}

/// This NIC's entry for one group.
#[derive(Debug)]
pub(crate) struct GroupState {
    pub port: PortId,
    pub root: NodeId,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// Go-Back-N sender window: next sequence number to assign (root only).
    pub tx: GbnTx,
    /// Go-Back-N receiver window: next sequence expected from the parent.
    pub rx: GbnRx,
    /// Per-child count of contiguously acknowledged packets
    /// (acked seq + 1) — the paper's third piece of sequence state.
    pub acked: ChildAcks,
    /// Unacknowledged packets, ascending seq.
    pub records: VecDeque<McastRec>,
    /// Root: outstanding messages awaiting full acknowledgment
    /// `(tag, last_seq)` in send order.
    pub out_msgs: VecDeque<(u64, u64)>,
    /// Inbound messages being reassembled / uploaded (FIFO).
    pub in_msgs: VecDeque<InMsg>,
    pub timer_armed: bool,
    pub timer_gen: u64,
    // --- NIC-level barrier (future-work extension) ---
    /// Barrier round currently in progress.
    pub bar_round: u64,
    /// Whether the local host has entered the current round.
    pub bar_entered: bool,
    /// Tag to echo when the current round completes.
    pub bar_tag: u64,
    /// Per child: number of rounds for which an UP token has been received
    /// (child `ci` is ready for round r when `bar_up[ci] > r`).
    pub bar_up: Vec<u64>,
    /// Whether this node's own UP for the current round has been sent.
    pub bar_up_sent: bool,
    /// The collective in progress this round.
    pub bar_kind: CollKind,
    /// This member's allreduce contribution for the current round.
    pub bar_value: u64,
    /// Latest partial value received from each child.
    pub bar_child_val: Vec<u64>,
}

impl GroupState {
    pub(crate) fn new(
        port: PortId,
        root: NodeId,
        parent: Option<NodeId>,
        children: Vec<NodeId>,
    ) -> Self {
        let n = children.len();
        GroupState {
            port,
            root,
            parent,
            children,
            tx: GbnTx::default(),
            rx: GbnRx::default(),
            acked: ChildAcks::new(n),
            records: VecDeque::new(),
            out_msgs: VecDeque::new(),
            in_msgs: VecDeque::new(),
            timer_armed: false,
            timer_gen: 0,
            bar_round: 0,
            bar_entered: false,
            bar_tag: 0,
            bar_up: vec![0; n],
            bar_up_sent: false,
            bar_kind: CollKind::Barrier,
            bar_value: 0,
            bar_child_val: vec![0; n],
        }
    }

    /// Lowest per-child acked count: packets below this are globally acked.
    pub(crate) fn min_acked(&self) -> u64 {
        self.acked.min_acked()
    }

    /// Find a record by sequence number.
    pub(crate) fn record(&mut self, seq: u64) -> Option<&mut McastRec> {
        self.records.iter_mut().find(|r| r.seq == seq)
    }

    /// Index of `child` in the children array.
    pub(crate) fn child_index(&self, child: NodeId) -> Option<usize> {
        self.children.iter().position(|&c| c == child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_state_min_acked() {
        let mut g = GroupState::new(
            PortId(0),
            NodeId(0),
            None,
            vec![NodeId(1), NodeId(2), NodeId(3)],
        );
        assert_eq!(g.min_acked(), 0);
        g.acked.on_ack(0, 2); // counts: [3,0,0]
        g.acked.on_ack(1, 0); // counts: [3,1,0]
        g.acked.on_ack(2, 1); // counts: [3,1,2]
        assert_eq!(g.min_acked(), 1);
        // No children: everything is trivially acked.
        let leaf = GroupState::new(PortId(0), NodeId(0), Some(NodeId(0)), vec![]);
        assert_eq!(leaf.min_acked(), u64::MAX);
    }

    #[test]
    fn child_index_lookup() {
        let g = GroupState::new(PortId(0), NodeId(0), None, vec![NodeId(5), NodeId(9)]);
        assert_eq!(g.child_index(NodeId(9)), Some(1));
        assert_eq!(g.child_index(NodeId(4)), None);
    }

    #[test]
    fn config_defaults_match_paper_choices() {
        let c = McastConfig::default();
        assert_eq!(c.retx_buffer, RetxBufferPolicy::HostMemory);
        assert_eq!(c.fwd_token, FwdTokenPolicy::TransformRecv);
        assert_eq!(c.multisend, MultisendImpl::Callback);
    }
}
