//! Spanning-tree construction for multicast.
//!
//! The paper (§5 "The Spanning Tree") constructs trees at the *host* — the
//! LANai is too slow — and preposts them to the NIC group table. Two design
//! points matter:
//!
//! 1. **Deadlock freedom**: "we sort the list of destinations linearly by
//!    their network IDs before tree construction, and a child must have a
//!    network ID greater than its parent unless its parent is the root."
//!    Every builder here works over the ID-sorted destination list and
//!    assigns contiguous ascending ranges to subtrees, so the invariant
//!    holds by construction (and [`SpanningTree::validate`] checks it).
//!
//! 2. **Optimality**: the NIC-based scheme uses a postal-model optimal tree
//!    (Bar-Noy & Kipnis): a sender can emit a new replica every `t` (the
//!    per-additional-destination cost) and a replica is usable by its
//!    receiver after `T` (the end-to-end message latency). The number of
//!    covered nodes satisfies `N(m) = N(m-1) + N(m-1-λ)` in units of `t`
//!    with `λ = ceil(T/t)`; the builder finds the minimal makespan and
//!    splits the sorted list greedily along that recurrence.

use std::collections::BTreeMap;

use gm_sim::SimDuration;
use myrinet::NodeId;

/// A rooted multicast spanning tree over a destination set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningTree {
    root: NodeId,
    /// Destinations (root excluded), sorted by network ID.
    dests: Vec<NodeId>,
    /// parent[node] for every destination.
    parent: BTreeMap<NodeId, NodeId>,
    /// children[node] for every node with children (in send order).
    children: BTreeMap<NodeId, Vec<NodeId>>,
}

/// Which tree shape to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// Binomial tree (the traditional host-based broadcast shape).
    Binomial,
    /// Postal-model optimal tree for the given latency/gap estimate.
    Postal(PostalParams),
    /// Complete k-ary tree in heap layout: the pipelined-broadcast shape
    /// for multi-packet messages, where every hop's egress is bounded by
    /// `k` full-message serializations while NIC forwarding hides depth.
    KAry(u32),
    /// Every destination is a direct child of the root (pure multisend).
    Flat,
    /// A linear chain (worst-case depth; ablation).
    Chain,
    /// Pick the calibrated postal tree for the scenario's message size.
    /// Only [`Scenario`](crate::Scenario) can resolve this (it knows the
    /// size and parameters); [`SpanningTree::build`] rejects it.
    Auto,
}

impl TreeShape {
    /// The calibrated default: resolved to a postal-optimal tree by
    /// [`Scenario::build`](crate::Scenario::build).
    pub fn auto() -> TreeShape {
        TreeShape::Auto
    }
}

/// Postal-model timing estimate for a given message size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PostalParams {
    /// End-to-end delivery latency `T`: send start to receiver able to
    /// forward.
    pub latency: SimDuration,
    /// Gap `t`: time before the sender can start the next replica.
    pub gap: SimDuration,
}

impl PostalParams {
    /// Construct from a latency/gap estimate.
    pub fn new(latency: SimDuration, gap: SimDuration) -> Self {
        PostalParams { latency, gap }
    }

    /// λ = ceil(T / t), clamped to at least 1.
    pub fn lambda(&self) -> u64 {
        let t = self.gap.as_nanos().max(1);
        self.latency.as_nanos().div_ceil(t).max(1)
    }
}

impl SpanningTree {
    /// Build a tree of `shape` rooted at `root` over `dests` (any order;
    /// duplicates and the root itself are rejected).
    ///
    /// ```
    /// use myrinet::NodeId;
    /// use nic_mcast::{SpanningTree, TreeShape};
    ///
    /// let dests: Vec<NodeId> = (1..8).map(NodeId).collect();
    /// let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    /// assert_eq!(tree.children(NodeId(0)).len(), 3); // log2(8)
    /// assert_eq!(tree.height(), 3);
    /// assert!(tree.validate().is_ok());
    /// ```
    pub fn build(root: NodeId, dests: &[NodeId], shape: TreeShape) -> SpanningTree {
        let mut sorted: Vec<NodeId> = dests.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), dests.len(), "duplicate destinations");
        assert!(!sorted.contains(&root), "root cannot be a destination");
        let mut tree = SpanningTree {
            root,
            dests: sorted.clone(),
            parent: BTreeMap::new(),
            children: BTreeMap::new(),
        };
        if sorted.is_empty() {
            return tree;
        }
        match shape {
            TreeShape::Flat => {
                for &d in &sorted {
                    tree.link(root, d);
                }
            }
            TreeShape::Chain => {
                let mut prev = root;
                for &d in &sorted {
                    tree.link(prev, d);
                    prev = d;
                }
            }
            TreeShape::Binomial => {
                tree.build_binomial(root, &sorted);
            }
            TreeShape::Postal(p) => {
                let lambda = p.lambda();
                let makespan = min_makespan(sorted.len() as u64 + 1, lambda);
                tree.build_postal(root, &sorted, makespan, lambda);
            }
            TreeShape::KAry(k) => {
                tree.build_kary(root, &sorted, k.max(1) as usize);
            }
            TreeShape::Auto => {
                panic!("TreeShape::Auto must be resolved by Scenario::build before tree construction")
            }
        }
        tree.validate().expect("builder produced a valid tree");
        tree
    }

    fn link(&mut self, parent: NodeId, child: NodeId) {
        self.parent.insert(child, parent);
        self.children.entry(parent).or_default().push(child);
    }

    /// Standard binomial broadcast: rank 0 is the root; in round r, every
    /// rank below 2^r sends to rank + 2^r. Ranks map onto the sorted list,
    /// so children ranges stay ascending.
    fn build_binomial(&mut self, root: NodeId, sorted: &[NodeId]) {
        let n = sorted.len() + 1;
        let node_of = |rank: usize| -> NodeId {
            if rank == 0 {
                root
            } else {
                sorted[rank - 1]
            }
        };
        let mut step = 1usize;
        while step < n {
            for low in 0..step {
                let high = low + step;
                if high < n {
                    self.link(node_of(low), node_of(high));
                }
            }
            step <<= 1;
        }
    }

    /// Greedy postal split: the root sends to child i during slot i (1-based,
    /// in units of t); the message sent in slot i lands λ-1 slots later, so
    /// child i becomes a sender with `makespan - i + 1 - λ` slots of budget
    /// and covers `N(budget)` nodes. With λ = 1 (T = t) this reproduces the
    /// binomial tree exactly.
    fn build_postal(&mut self, root: NodeId, sorted: &[NodeId], makespan: u64, lambda: u64) {
        let mut rest = sorted;
        let mut slot = 1u64;
        while !rest.is_empty() {
            let child = rest[0];
            let child_budget = (makespan + 1).saturating_sub(slot + lambda);
            let sub = coverage(child_budget, lambda).min(rest.len() as u64) as usize;
            debug_assert!(sub >= 1, "makespan too small for remaining nodes");
            self.link(root, child);
            if sub > 1 {
                self.build_postal(child, &rest[1..sub], child_budget, lambda);
            }
            rest = &rest[sub..];
            slot += 1;
        }
    }

    /// Complete k-ary tree over ranks in heap layout: the parent of rank j
    /// is (j-1)/k, so parent rank < child rank and the ID-ordering
    /// invariant holds over the sorted list.
    fn build_kary(&mut self, root: NodeId, sorted: &[NodeId], k: usize) {
        let n = sorted.len() + 1;
        let node_of = |rank: usize| -> NodeId {
            if rank == 0 {
                root
            } else {
                sorted[rank - 1]
            }
        };
        for j in 1..n {
            let parent = (j - 1) / k;
            self.link(node_of(parent), node_of(j));
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All destinations (sorted by network ID; excludes the root).
    pub fn dests(&self) -> &[NodeId] {
        &self.dests
    }

    /// Children of `node`, in the order they are sent to.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        self.children.get(&node).map_or(&[], |v| v.as_slice())
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied()
    }

    /// Nodes with at least one child (the root plus forwarders).
    pub fn interior(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.keys().copied()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent.get(&cur) {
            d += 1;
            cur = *p;
        }
        d
    }

    /// Maximum depth over all destinations.
    pub fn height(&self) -> usize {
        self.dests.iter().map(|&d| self.depth(d)).max().unwrap_or(0)
    }

    /// Mean child count over interior nodes (the paper's "average fan-out
    /// degree").
    pub fn avg_fanout(&self) -> f64 {
        if self.children.is_empty() {
            return 0.0;
        }
        let total: usize = self.children.values().map(Vec::len).sum();
        total as f64 / self.children.len() as f64
    }

    /// Check the structural invariants:
    /// * every destination has exactly one parent and is reachable from the
    ///   root (no cycles, no orphans);
    /// * deadlock ordering: child ID > parent ID unless the parent is the
    ///   root (paper §5 "Deadlock").
    pub fn validate(&self) -> Result<(), String> {
        // Reachability and single-parent.
        let mut seen = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            for &c in self.children(n) {
                if self.parent.get(&c) != Some(&n) {
                    return Err(format!("{c} listed as child of {n} but parent differs"));
                }
                seen.push(c);
                stack.push(c);
            }
        }
        seen.sort_unstable();
        if seen != self.dests {
            return Err(format!(
                "coverage mismatch: reached {} of {} destinations",
                seen.len(),
                self.dests.len()
            ));
        }
        // Deadlock ordering.
        for (&child, &parent) in &self.parent {
            if parent != self.root && child <= parent {
                return Err(format!(
                    "deadlock ordering violated: child {child} <= parent {parent}"
                ));
            }
        }
        Ok(())
    }
}

/// `N(m)`: how many nodes (including the sender) can hold the message within
/// `m` send-slots, for postal latency `lambda` slots.
///
/// A message sent during slot `i` is usable by its receiver from slot
/// `i + lambda` on, giving `N(m) = N(m-1) + N(m-lambda)` with `N(m) = 1`
/// for `m < lambda`. With `lambda = 1` this is the binomial doubling
/// `N(m) = 2^m`; with `lambda = 2`, the Fibonacci numbers — the classic
/// postal-model sequences of Bar-Noy & Kipnis.
pub fn coverage(m: u64, lambda: u64) -> u64 {
    debug_assert!(lambda >= 1);
    if m < lambda {
        // Sends may start but nothing lands in the window: just the holder.
        return 1;
    }
    let cap = m as usize;
    let lam = lambda as usize;
    let mut n = vec![1u64; cap + 1];
    for i in lam..=cap {
        let grow = n[i - 1].saturating_add(n[i - lam]);
        n[i] = grow.min(u64::MAX / 2);
    }
    n[cap]
}

/// The smallest makespan `m` (in send-slots) covering `n` nodes.
pub fn min_makespan(n: u64, lambda: u64) -> u64 {
    assert!(n >= 1);
    let mut m = 0;
    while coverage(m, lambda) < n {
        m += 1;
        assert!(m < 1 << 40, "makespan search diverged");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn coverage_matches_postal_sequences() {
        // lambda = 1 (T = t): binomial doubling.
        let seq: Vec<u64> = (0..8).map(|m| coverage(m, 1)).collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 16, 32, 64, 128]);
        // lambda = 2: Fibonacci.
        let seq: Vec<u64> = (0..9).map(|m| coverage(m, 2)).collect();
        assert_eq!(seq, vec![1, 1, 2, 3, 5, 8, 13, 21, 34]);
        // Large lambda: flat-send region, N grows by 1 per slot past lambda.
        assert_eq!(coverage(5, 10), 1);
        assert_eq!(coverage(10, 10), 2);
        assert_eq!(coverage(11, 10), 3);
    }

    #[test]
    fn postal_lambda_one_is_exactly_binomial_on_powers_of_two() {
        for n in [2u32, 4, 8, 16, 32] {
            let dests = ids(&(1..n).collect::<Vec<_>>());
            let p = PostalParams::new(SimDuration::from_micros(5), SimDuration::from_micros(5));
            let postal = SpanningTree::build(NodeId(0), &dests, TreeShape::Postal(p));
            let binom = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
            assert_eq!(
                postal.children(NodeId(0)).len(),
                binom.children(NodeId(0)).len(),
                "n={n}: root fanout"
            );
            assert_eq!(postal.height(), binom.height(), "n={n}: height");
        }
        // Non-powers of two still match the binomial makespan (height) even
        // when the greedy split shapes the root differently.
        for n in [5u32, 13, 27] {
            let dests = ids(&(1..n).collect::<Vec<_>>());
            let p = PostalParams::new(SimDuration::from_micros(5), SimDuration::from_micros(5));
            let postal = SpanningTree::build(NodeId(0), &dests, TreeShape::Postal(p));
            let binom = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
            assert!(postal.height() <= binom.height() + 1, "n={n}");
        }
    }

    #[test]
    fn min_makespan_matches_coverage() {
        for lambda in 1..6 {
            for n in 1..40 {
                let m = min_makespan(n, lambda);
                assert!(coverage(m, lambda) >= n);
                if m > 0 {
                    assert!(coverage(m - 1, lambda) < n);
                }
            }
        }
    }

    #[test]
    fn flat_tree() {
        let t = SpanningTree::build(NodeId(3), &ids(&[0, 1, 2, 4, 5]), TreeShape::Flat);
        assert_eq!(t.children(NodeId(3)), ids(&[0, 1, 2, 4, 5]).as_slice());
        assert_eq!(t.height(), 1);
        assert_eq!(t.avg_fanout(), 5.0);
    }

    #[test]
    fn chain_tree() {
        let t = SpanningTree::build(NodeId(0), &ids(&[1, 2, 3]), TreeShape::Chain);
        assert_eq!(t.height(), 3);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.avg_fanout(), 1.0);
    }

    #[test]
    fn binomial_16_nodes() {
        let dests = ids(&(1..16).collect::<Vec<_>>());
        let t = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
        // Binomial over 16 nodes: root has 4 children, height 4.
        assert_eq!(t.children(NodeId(0)).len(), 4);
        assert_eq!(t.height(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn binomial_non_power_of_two() {
        for n in [2u32, 3, 5, 7, 11, 12, 13] {
            let dests = ids(&(1..n).collect::<Vec<_>>());
            let t = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
            t.validate().unwrap();
            let expected_height = (32 - (n - 1).leading_zeros()) as usize;
            assert!(t.height() <= expected_height, "n={n}: height {}", t.height());
        }
    }

    #[test]
    fn binomial_with_high_id_root_keeps_ordering() {
        // Root has the largest ID: allowed because root's children are
        // exempt, and deeper links use sorted ascending ranges.
        let t = SpanningTree::build(NodeId(15), &ids(&(0..15).collect::<Vec<_>>()), TreeShape::Binomial);
        t.validate().unwrap();
    }

    #[test]
    fn postal_small_lambda_is_deep() {
        let p = PostalParams::new(SimDuration::from_micros(10), SimDuration::from_micros(10));
        assert_eq!(p.lambda(), 1);
        let t = SpanningTree::build(NodeId(0), &ids(&(1..16).collect::<Vec<_>>()), TreeShape::Postal(p));
        t.validate().unwrap();
        // lambda=1 postal tree is binomial-like: height around log2(16).
        assert!(t.height() >= 3 && t.height() <= 5, "height {}", t.height());
    }

    #[test]
    fn postal_large_lambda_is_shallow() {
        let p = PostalParams::new(SimDuration::from_micros(70), SimDuration::from_micros(5));
        assert_eq!(p.lambda(), 14);
        let t = SpanningTree::build(NodeId(0), &ids(&(1..16).collect::<Vec<_>>()), TreeShape::Postal(p));
        t.validate().unwrap();
        // With lambda near n the root essentially multisends: nearly flat.
        assert!(t.height() <= 2, "height {}", t.height());
        assert!(t.children(NodeId(0)).len() >= 12);
    }

    #[test]
    fn postal_fanout_grows_with_lambda() {
        let dests = ids(&(1..64).collect::<Vec<_>>());
        let mut prev_height = usize::MAX;
        for lam_us in [1u64, 3, 8, 20] {
            let p = PostalParams::new(SimDuration::from_micros(lam_us), SimDuration::from_micros(1));
            let t = SpanningTree::build(NodeId(0), &dests, TreeShape::Postal(p));
            t.validate().unwrap();
            assert!(
                t.height() <= prev_height,
                "higher lambda should not deepen the tree"
            );
            prev_height = t.height();
        }
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let t = SpanningTree::build(NodeId(0), &ids(&[9, 2, 5, 1]), TreeShape::Binomial);
        assert_eq!(t.dests(), ids(&[1, 2, 5, 9]).as_slice());
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate destinations")]
    fn duplicates_rejected() {
        SpanningTree::build(NodeId(0), &ids(&[1, 1]), TreeShape::Flat);
    }

    #[test]
    #[should_panic(expected = "root cannot be a destination")]
    fn root_in_dests_rejected() {
        SpanningTree::build(NodeId(1), &ids(&[1, 2]), TreeShape::Flat);
    }

    #[test]
    fn empty_dests_ok() {
        let t = SpanningTree::build(NodeId(0), &[], TreeShape::Binomial);
        assert_eq!(t.height(), 0);
        assert!(t.children(NodeId(0)).is_empty());
    }

    #[test]
    fn depths_consistent_with_parents() {
        let dests = ids(&(1..32).collect::<Vec<_>>());
        let t = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
        for &d in t.dests() {
            let p = t.parent(d).unwrap();
            assert_eq!(t.depth(d), t.depth(p) + 1);
        }
    }
}
