//! The paper's Figure 1: a feature comparison of NIC-supported multicast
//! schemes (ours vs LFC, FM/MC and the NIC-assisted scheme), encoded as data
//! so the `fig1_features` bench binary can render the same matrix.

/// One multicast scheme's position on the six axes of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemeFeatures {
    /// Scheme name as cited in the paper.
    pub name: &'static str,
    /// Where message forwarding happens.
    pub forwarding: Forwarding,
    /// How delivery is guaranteed.
    pub reliability: Reliability,
    /// Relative scalability claim.
    pub scalability: Scalability,
    /// Memory-protected concurrent NIC access by multiple processes.
    pub protection: bool,
    /// Where the spanning tree is constructed.
    pub tree_construction: TreeConstruction,
    /// How the tree reaches intermediate NICs.
    pub tree_info: TreeInfo,
}

/// Forwarding location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forwarding {
    /// The NIC forwards without host involvement.
    Nic,
    /// The host must receive and re-send.
    Host,
}

/// Reliability mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reliability {
    /// Acks + timeout/retransmission (direct).
    AckRetransmit,
    /// End-to-end credit flow control with a centralized credit manager.
    CreditsEndToEnd,
    /// Link-level (hop-by-hop) credit flow control; deadlock-prone for
    /// multicast.
    CreditsLinkLevel,
    /// Assumes a reliable network.
    AssumedReliable,
}

/// Scalability band on the paper's axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scalability {
    /// No centralized resource; thousands of nodes.
    Higher,
    /// Centralized manager or per-hop credits limit scale.
    Lower,
}

/// Tree construction site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeConstruction {
    /// At the host (the only efficient choice; LANai is slow).
    Host,
}

/// Tree information delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeInfo {
    /// Preposted into the NIC group table.
    Preposted,
    /// Carried with each message.
    PerMessage,
}

/// The four schemes of Figure 1, ours first.
pub const SCHEMES: [SchemeFeatures; 4] = [
    SchemeFeatures {
        name: "Our scheme",
        forwarding: Forwarding::Nic,
        reliability: Reliability::AckRetransmit,
        scalability: Scalability::Higher,
        protection: true,
        tree_construction: TreeConstruction::Host,
        tree_info: TreeInfo::Preposted,
    },
    SchemeFeatures {
        name: "LFC [2]",
        forwarding: Forwarding::Nic,
        reliability: Reliability::CreditsLinkLevel,
        scalability: Scalability::Lower,
        protection: false,
        tree_construction: TreeConstruction::Host,
        tree_info: TreeInfo::Preposted,
    },
    SchemeFeatures {
        name: "FM/MC [14]",
        forwarding: Forwarding::Nic,
        reliability: Reliability::CreditsEndToEnd,
        scalability: Scalability::Lower,
        protection: false,
        tree_construction: TreeConstruction::Host,
        tree_info: TreeInfo::Preposted,
    },
    SchemeFeatures {
        name: "NIC-assisted [5]",
        forwarding: Forwarding::Host,
        reliability: Reliability::AssumedReliable,
        scalability: Scalability::Higher,
        protection: false,
        tree_construction: TreeConstruction::Host,
        tree_info: TreeInfo::PerMessage,
    },
];

/// Render the Figure 1 matrix as an aligned text table.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:<11} {:<18} {:<12} {:<11} {:<10} {:<10}\n",
        "Scheme", "Forwarding", "Reliability", "Scalability", "Protection", "TreeConst", "TreeInfo"
    ));
    for s in SCHEMES {
        out.push_str(&format!(
            "{:<18} {:<11} {:<18} {:<12} {:<11} {:<10} {:<10}\n",
            s.name,
            match s.forwarding {
                Forwarding::Nic => "NIC",
                Forwarding::Host => "Host",
            },
            match s.reliability {
                Reliability::AckRetransmit => "ack+retransmit",
                Reliability::CreditsEndToEnd => "credits (e2e)",
                Reliability::CreditsLinkLevel => "credits (link)",
                Reliability::AssumedReliable => "assumed",
            },
            match s.scalability {
                Scalability::Higher => "higher",
                Scalability::Lower => "lower",
            },
            if s.protection { "yes" } else { "no" },
            "host",
            match s.tree_info {
                TreeInfo::Preposted => "preposted",
                TreeInfo::PerMessage => "per-msg",
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_scheme_is_the_complete_feature_set() {
        let ours = SCHEMES[0];
        assert_eq!(ours.forwarding, Forwarding::Nic);
        assert_eq!(ours.reliability, Reliability::AckRetransmit);
        assert_eq!(ours.scalability, Scalability::Higher);
        assert!(ours.protection);
        assert_eq!(ours.tree_info, TreeInfo::Preposted);
    }

    #[test]
    fn every_cited_scheme_lacks_a_feature_ours_has() {
        let ours = SCHEMES[0];
        for s in &SCHEMES[1..] {
            let lacks = s.forwarding != ours.forwarding
                || s.reliability != ours.reliability
                || s.scalability != ours.scalability
                || s.protection != ours.protection
                || s.tree_info != ours.tree_info;
            assert!(lacks, "{} should lack at least one feature", s.name);
        }
    }

    #[test]
    fn table_renders_all_schemes() {
        let t = render_table();
        for s in SCHEMES {
            assert!(t.contains(s.name));
        }
        assert_eq!(t.lines().count(), 5);
    }
}
