//! `nic-mcast` — high performance and reliable NIC-based multicast.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Yu, Buntinas & Panda, ICPP 2003): a multicast scheme for Myrinet/GM-2
//! in which
//!
//! * a **NIC-based multisend** transfers a message from host to NIC once and
//!   sends replicas to a list of destinations from transmit-complete
//!   descriptor callbacks,
//! * **NIC-based forwarding** lets intermediate NICs relay packets down the
//!   spanning tree without host involvement (and before the full message
//!   arrives),
//! * a **one-to-many Go-Back-N** protocol with per-child acknowledged-
//!   sequence arrays gives reliable, ordered delivery, retransmitting only
//!   to unacknowledged children from the registered host-memory replica,
//! * the spanning tree is built at the host (binomial for the baseline,
//!   Bar-Noy/Kipnis postal-optimal for the NIC-based scheme) over the
//!   ID-sorted destination list, making receive-token deadlock impossible,
//! * protection and scalability follow from GM itself: no centralized
//!   credit manager, per-group state only.
//!
//! # Example: one multicast over a 8-node cluster
//!
//! ```
//! use nic_mcast::{Scenario, TreeShape};
//!
//! let report = Scenario::nic_based(8)
//!     .size(1024)
//!     .tree(TreeShape::auto())
//!     .warmup(2)
//!     .iters(10)
//!     .run();
//! assert_eq!(report.latency.count(), 10);
//! assert!(report.latency.mean() > 0.0);
//! ```

#![warn(missing_docs)]

mod calibrate;
mod ext;
pub mod features;
mod group;
mod replay;
mod scenario;
mod sweep;
mod tree;
mod workloads;

pub use calibrate::{postal_for_size, shape_for_size};
pub use ext::{McastExt, McastTag, BARRIER_TAG_BIT, OP_BARRIER_UP};
pub use gm_sim::probe::ProbeConfig;
pub use gm_sim::SeriesConfig;
pub use group::{
    FwdTokenPolicy, McastConfig, McastNotice, McastRequest, MultisendImpl, ReduceOp,
    RetxBufferPolicy,
};
pub use replay::{replay, ReplayDrop, ReplayOutcome, ReplaySpec};
pub use scenario::{BuiltScenario, Report, Scenario, ScenarioError};
pub use sweep::Sweep;
pub use tree::{coverage, min_makespan, PostalParams, SpanningTree, TreeShape};
#[allow(deprecated)]
pub use workloads::execute;
pub use workloads::{
    build_cluster, env_shards, execute_instrumented, execute_max_over_probes, execute_observed,
    AckMode, InstrumentedOutput, McastMode, McastRun, RunOutput, Shared, DATA_PORT, REPLY_PORT,
};
