//! Replaying `simcheck` counterexample traces through the real simulator.
//!
//! The model checker (`crates/simcheck`) explores an abstract rendering of
//! the protocol built from the same `gm::proto` transition functions the
//! firmware model runs. When it finds a violation it emits a minimal trace
//! whose only environment actions are targeted packet drops. This module
//! turns such a trace into a concrete [`Scenario`]: the drops become
//! one-shot [`DropRule`]s, the seeded [`ProtoMutation`] (if any) is threaded
//! into [`GmParams`], and the delivery outcome is read back through the
//! flow-lineage machinery ([`FlowGraph`] over `FLOW_DELIVERY` records) so
//! model and implementation verdicts compare member-by-member.

use std::collections::BTreeSet;

use gm::proto::ProtoMutation;
use gm::{flow_tag, GmParams};
use gm_sim::{FlowGraph, ProbeConfig};
use myrinet::{DropRule, FaultPlan, NodeId, MTU};

use crate::scenario::Scenario;
use crate::tree::TreeShape;
use crate::workloads::AckMode;

/// One targeted drop from a checker trace: the first wire transmission of
/// the multicast data packet `seq` on the tree edge `src -> dst` is lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayDrop {
    /// Transmitting node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Multicast sequence number of the dropped packet.
    pub seq: u64,
}

/// A checker trace distilled to what the simulator needs to reproduce it.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Cluster size; node 0 is the multicast root, the tree is
    /// [`TreeShape::Binomial`] over ids `1..nodes` (the checker models the
    /// same shape).
    pub nodes: u32,
    /// Message length in packets; the message is `packets * MTU` bytes so
    /// the simulator fragments it into exactly this many wire packets.
    pub packets: u32,
    /// The deliberately seeded protocol bug, [`ProtoMutation::None`] for a
    /// faithful run.
    pub mutation: ProtoMutation,
    /// Targeted first-transmission drops, in trace order.
    pub drops: Vec<ReplayDrop>,
}

/// What one replayed run did, in the same vocabulary the checker uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Members whose application received the message (a `FLOW_DELIVERY`
    /// record exists for the flow `(root, tag, member)`).
    pub delivered: BTreeSet<u32>,
    /// Whether the root's `SendDone` completion notice arrived (every child
    /// acknowledged every packet).
    pub send_done: bool,
    /// Multicast retransmissions summed over all NICs.
    pub retransmissions: u64,
}

/// Execute one checker trace through the full simulator.
///
/// The run uses one timed iteration with [`AckMode::NicAck`] (the iteration
/// ends when the root's NIC reports full acknowledgment), so a protocol bug
/// that kills retransmission shows up as `send_done == false` and a missing
/// member in `delivered` — exactly the shape of the checker's verdict.
pub fn replay(spec: &ReplaySpec) -> ReplayOutcome {
    let rules = spec
        .drops
        .iter()
        .map(|d| DropRule {
            src: Some(NodeId(d.src)),
            dst: Some(NodeId(d.dst)),
            mcast: Some(true),
            data: Some(true),
            seq: Some(d.seq),
            count: 1,
        })
        .collect();
    let params = GmParams {
        mutation: spec.mutation,
        ..GmParams::default()
    };
    let report = Scenario::nic_based(spec.nodes)
        .size(spec.packets as usize * MTU)
        .tree(TreeShape::Binomial)
        .warmup(0)
        .iters(1)
        .allow_incomplete()
        .ack(AckMode::NicAck)
        .faults(FaultPlan {
            rules,
            ..FaultPlan::none()
        })
        .params(params)
        .probes(ProbeConfig::spans())
        .run();
    // Delivery verdict via causal lineage: the workload tags iteration 0
    // with tag 0, and each member's copy is the flow (root=0, tag, member).
    let tag = flow_tag(0);
    let graph = FlowGraph::build(&report.probe.to_vec());
    let delivered: BTreeSet<u32> = graph
        .delivered()
        .into_iter()
        .filter(|f| f.origin() == 0 && f.tag() == tag)
        .map(gm_sim::FlowId::dest)
        .collect();
    ReplayOutcome {
        delivered,
        send_done: report.latency.count() == 1,
        retransmissions: report.retransmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_replay_delivers_everywhere() {
        let out = replay(&ReplaySpec {
            nodes: 3,
            packets: 2,
            mutation: ProtoMutation::None,
            drops: vec![],
        });
        assert_eq!(out.delivered, BTreeSet::from([1, 2]));
        assert!(out.send_done);
        assert_eq!(out.retransmissions, 0);
    }

    #[test]
    fn targeted_drop_is_recovered_by_retransmission() {
        let out = replay(&ReplaySpec {
            nodes: 3,
            packets: 2,
            mutation: ProtoMutation::None,
            drops: vec![ReplayDrop {
                src: 0,
                dst: 1,
                seq: 1,
            }],
        });
        assert_eq!(out.delivered, BTreeSet::from([1, 2]));
        assert!(out.send_done);
        assert!(out.retransmissions > 0, "the drop must cost a retransmission");
    }
}
