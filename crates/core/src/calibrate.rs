//! Postal-model timing estimates derived from the node/network parameters.
//!
//! The optimal-tree builder needs two numbers per message size (paper §5,
//! "The Spanning Tree"):
//!
//! * `T` — "the total amount of time for a node to send a message until the
//!   receiver receives it". Per the paper, "the message delivery time is
//!   calculated as end-to-end latency" of the *complete* message.
//! * `t` — "the average time for the sender to send a message to one
//!   additional destination": per packet, a header rewrite (descriptor
//!   callback) plus one serialization; for the whole message, that times
//!   the packet count.
//!
//! For multi-packet messages T/t approaches ~1.2 while NIC-based forwarding
//! pipelines packets per hop, so the builder picks low-fanout, deeper trees
//! — exactly the regime where the paper reports its 16 KB win.

use gm::GmParams;
use gm_sim::SimDuration;
use myrinet::{NetParams, HEADER_BYTES, MTU};

use crate::tree::{PostalParams, TreeShape};

/// Estimate postal parameters for a `size`-byte multicast message crossing
/// `hops` links per tree edge.
pub fn postal_for_size(size: usize, gp: &GmParams, np: &NetParams, hops: usize) -> PostalParams {
    let packets = size.div_ceil(MTU).max(1) as u64;
    let chunk = size.min(MTU) as u64;
    let ser_pkt = SimDuration::for_bytes(chunk + HEADER_BYTES, np.link_bandwidth);
    // Gap: replicas leave one serialization + one callback apart, for every
    // packet of the message.
    let gap = (gp.callback_proc + ser_pkt) * packets;
    // Latency: the time until a *forwarding* NIC can start replicating —
    // full-message flight plus receive processing. Host-side costs
    // (request processing, the first SDMA) are paid once at the root and
    // shift every leaf equally, so they do not influence the tree shape.
    let switches = hops.saturating_sub(1) as u64;
    let latency = ser_pkt * packets
        + np.wire_prop * hops as u64
        + np.hop_delay * switches
        + gp.recv_proc;
    PostalParams { latency, gap }
}

/// Pick the NIC-based scheme's tree shape for a message size and
/// destination count.
///
/// Single-packet messages use the paper's postal-optimal tree. Multi-packet
/// messages are *pipelined* hop by hop (an intermediate NIC forwards packet
/// k while packet k+1 is still arriving), a regime the postal model cannot
/// express: there, each hop's cost is `k` whole-message serializations for
/// a fan-out of `k` plus one packet time per level of depth, so we choose
/// the complete k-ary tree minimizing `k * t_msg + depth_k(n) * t_hop`.
pub fn shape_for_size(
    size: usize,
    n_dests: usize,
    gp: &GmParams,
    np: &NetParams,
    hops: usize,
) -> TreeShape {
    let packets = size.div_ceil(MTU).max(1);
    let p = postal_for_size(size, gp, np, hops);
    if packets == 1 {
        return TreeShape::Postal(p);
    }
    let chunk = size.min(MTU) as u64;
    let ser_pkt = SimDuration::for_bytes(chunk + HEADER_BYTES, np.link_bandwidth);
    let switches = hops.saturating_sub(1) as u64;
    let t_hop = (ser_pkt
        + gp.recv_proc
        + np.wire_prop * hops as u64
        + np.hop_delay * switches)
        .as_nanos_f64();
    let t_msg = p.gap.as_nanos_f64();
    let n = n_dests + 1;
    let mut best = (f64::INFINITY, 1u32);
    for k in 1..=8u32 {
        let depth = kary_depth(n, k as usize);
        let cost = k as f64 * t_msg + depth as f64 * t_hop;
        if cost < best.0 {
            best = (cost, k);
        }
    }
    TreeShape::KAry(best.1)
}

/// Depth of a complete k-ary tree (heap layout) over `n` nodes.
fn kary_depth(n: usize, k: usize) -> usize {
    assert!(n >= 1 && k >= 1);
    if k == 1 {
        return n - 1;
    }
    let mut level_cap = 1usize;
    let mut total = 1usize;
    let mut depth = 0usize;
    while total < n {
        level_cap = level_cap.saturating_mul(k);
        total = total.saturating_add(level_cap);
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> (GmParams, NetParams) {
        (GmParams::default(), NetParams::default())
    }

    #[test]
    fn small_messages_favor_wide_trees() {
        let (gp, np) = params();
        let p = postal_for_size(8, &gp, &np, 2);
        // Small messages: forwarding latency (~2us) over a sub-us gap.
        assert!(
            (3..=8).contains(&p.lambda()),
            "lambda for 8B was {}",
            p.lambda()
        );
    }

    #[test]
    fn mid_sizes_approach_binomial() {
        let (gp, np) = params();
        let p = postal_for_size(4096, &gp, &np, 2);
        // Around the MTU the gap (one full serialization) rivals the
        // latency: lambda collapses toward 1-2 (the paper's 2-4 KB dip).
        assert!(p.lambda() <= 3, "lambda for 4KB was {}", p.lambda());
    }

    #[test]
    fn large_messages_pipeline() {
        let (gp, np) = params();
        let p = postal_for_size(16 * 1024, &gp, &np, 2);
        // Whole-message latency over a 4-packet gap: T/t ~ 1, the deep-tree
        // regime (multi-packet sizes use the k-ary pipeline shape anyway).
        assert!(p.lambda() <= 2, "lambda was {}", p.lambda());
    }

    #[test]
    fn shape_selection_switches_at_the_mtu() {
        let (gp, np) = params();
        assert!(matches!(
            shape_for_size(512, 15, &gp, &np, 2),
            TreeShape::Postal(_)
        ));
        assert!(matches!(
            shape_for_size(4096, 15, &gp, &np, 2),
            TreeShape::Postal(_)
        ));
        let TreeShape::KAry(k) = shape_for_size(16384, 15, &gp, &np, 2) else {
            panic!("multi-packet sizes use the k-ary pipeline shape");
        };
        assert!((1..=3).contains(&k), "k={k}");
        // Tiny clusters pipeline best as a chain.
        assert_eq!(shape_for_size(16384, 3, &gp, &np, 2), TreeShape::KAry(1));
    }

    #[test]
    fn kary_depth_matches_heap_layout() {
        assert_eq!(kary_depth(1, 2), 0);
        assert_eq!(kary_depth(2, 2), 1);
        assert_eq!(kary_depth(3, 2), 1);
        assert_eq!(kary_depth(4, 2), 2);
        assert_eq!(kary_depth(15, 2), 3);
        assert_eq!(kary_depth(16, 2), 4);
        assert_eq!(kary_depth(10, 1), 9);
        assert_eq!(kary_depth(13, 3), 2);
    }

    #[test]
    fn lambda_monotonically_falls_with_size() {
        let (gp, np) = params();
        let mut prev = u64::MAX;
        for size in [1usize, 64, 512, 2048, 4096, 8192, 16384] {
            let l = postal_for_size(size, &gp, &np, 2).lambda();
            assert!(l <= prev, "lambda rose at {size}B: {l} > {prev}");
            prev = l;
        }
    }
}
