//! Reusable GM-level benchmark workloads.
//!
//! These reproduce the paper's §6.1 methodology: the root transmits a
//! message to the destination set and waits for an application-level
//! acknowledgment from a designated *probe* destination; warmup iterations
//! synchronize the nodes, then timed iterations are averaged. "The same test
//! was repeated with different leaf nodes returning the acknowledgment. The
//! maximum from all the tests was taken as the multicast latency."
//!
//! Both schemes run through the same apps:
//!
//! * [`McastMode::NicBased`] — the root posts one `McastRequest::Send`; NICs
//!   forward along the preposted tree.
//! * [`McastMode::HostBased`] — the root posts one plain GM unicast per
//!   child and every interior *host* re-sends on receive (the traditional
//!   store-and-forward broadcast the paper compares against).

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::probe::{Metrics, ProbeConfig, ProbeSink};
use gm_sim::{
    Histogram, OnlineStats, SeriesConfig, SeriesSink, ShardStats, SimDuration, SimTime,
};
use myrinet::{Fabric, FaultPlan, GroupId, NetParams, NodeId, PortId, Topology};

use crate::ext::McastExt;
use crate::group::{McastConfig, McastNotice, McastRequest};
use crate::tree::{SpanningTree, TreeShape};

/// Port multicast/broadcast data is delivered on.
pub const DATA_PORT: PortId = PortId(0);
/// Port probe acknowledgments return on.
pub const REPLY_PORT: PortId = PortId(1);

const SYNC_TAG: u64 = u64::MAX;

/// Which multicast implementation drives the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum McastMode {
    /// The paper's NIC-based scheme.
    NicBased,
    /// Traditional host-based store-and-forward over unicasts.
    HostBased,
}

/// What ends an iteration at the root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckMode {
    /// An application-level 1-byte reply from the probe destination (the
    /// Figure 5/4 multicast methodology: "wait for an acknowledgment from
    /// one of the leaf nodes").
    ProbeReply,
    /// The GM-level acknowledgment of the last destination (the Figure 3
    /// multisend methodology: the send completes once every destination's
    /// NIC has acked).
    NicAck,
}

/// Full specification of one measurement run.
#[derive(Clone, Debug)]
pub struct McastRun {
    /// Cluster size (nodes are 0..n).
    pub n_nodes: u32,
    /// Multicast root.
    pub root: NodeId,
    /// Destination set (defaults to everyone but the root).
    pub dests: Vec<NodeId>,
    /// Message size in bytes.
    pub size: usize,
    /// Tree shape.
    pub shape: TreeShape,
    /// Scheme under test.
    pub mode: McastMode,
    /// Untimed warmup iterations (the paper uses 20).
    pub warmup: u32,
    /// Timed iterations (the paper uses 10 000; the simulation is
    /// deterministic, so far fewer suffice).
    pub iters: u32,
    /// Which destination returns the app-level ack.
    pub probe: NodeId,
    /// What ends an iteration at the root.
    pub ack: AckMode,
    /// RNG seed (affects only fault draws).
    pub seed: u64,
    /// Fault injection plan.
    pub faults: FaultPlan,
    /// Firmware ablation switches.
    pub config: McastConfig,
    /// Node parameters.
    pub params: GmParams,
    /// Network parameters.
    pub net: NetParams,
    /// Requested shard count for parallel execution (1 = sequential; the
    /// default honours `MYRI_SIM_SHARDS`). Results are bit-for-bit
    /// identical either way; infeasible configurations (targeted drop
    /// rules, indivisible topologies) silently fall back to sequential.
    pub shards: u32,
    /// Tolerate a run that idles before every timed iteration completes
    /// (normally an assertion failure). `simcheck` counterexample replays
    /// set this: a protocol bug that kills retransmission shows up as the
    /// cluster going idle with the multicast unfinished, and the caller
    /// reads the verdict from the completion count and flow lineage.
    pub allow_incomplete: bool,
}

/// The `MYRI_SIM_SHARDS` default: unset, empty or unparsable means 1.
pub fn env_shards() -> u32 {
    std::env::var("MYRI_SIM_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

impl McastRun {
    /// A run with the paper's defaults: root 0, all other nodes as
    /// destinations, probing the last destination.
    pub fn new(n_nodes: u32, size: usize, mode: McastMode, shape: TreeShape) -> Self {
        assert!(n_nodes >= 2);
        let dests: Vec<NodeId> = (1..n_nodes).map(NodeId).collect();
        McastRun {
            n_nodes,
            root: NodeId(0),
            probe: *dests.last().expect("nonempty"),
            dests,
            size,
            shape,
            mode,
            warmup: 20,
            iters: 100,
            ack: AckMode::ProbeReply,
            seed: 0x6D_6361_7374,
            faults: FaultPlan::none(),
            config: McastConfig::default(),
            params: GmParams::default(),
            net: NetParams::default(),
            shards: env_shards(),
            allow_incomplete: false,
        }
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Per-iteration root-observed latency (µs): send post to probe ack.
    pub latency: OnlineStats,
    /// Median per-iteration latency (µs).
    pub latency_p50: f64,
    /// 99th-percentile per-iteration latency (µs).
    pub latency_p99: f64,
    /// Multicast retransmissions across all NICs.
    pub retransmissions: u64,
    /// The spanning tree used.
    pub height: usize,
    /// Average interior fan-out of the tree used.
    pub avg_fanout: f64,
    /// Total simulated time.
    pub end_time: SimTime,
    /// Total events dispatched (simulator health metric).
    pub events: u64,
    /// Fraction of the run the root's injection link spent serializing
    /// (the bottleneck the tree shape manages).
    pub root_link_utilization: f64,
}

/// Measurements shared between the root app and the harness.
pub struct Shared {
    /// Per-iteration latency samples (µs).
    pub latency: OnlineStats,
    /// Latency distribution (1 µs buckets up to 100 ms).
    pub latency_hist: Histogram,
    /// Timed iterations completed.
    pub iters_done: u32,
    /// `(start, end)` of each timed iteration — the windows latency
    /// attribution decomposes.
    pub windows: Vec<(SimTime, SimTime)>,
}

/// The root's driver app.
struct RootApp {
    run: McastRun,
    tree: SpanningTree,
    gid: GroupId,
    iter: u32,
    t_start: SimTime,
    /// Outstanding completion notices this iteration (NicAck mode).
    pending: u32,
    shared: Arc<Mutex<Shared>>,
}

impl RootApp {
    fn total(&self) -> u32 {
        self.run.warmup + self.run.iters
    }

    fn begin_iteration(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let data = Bytes::from(vec![(self.iter % 251) as u8; self.run.size]);
        self.t_start = ctx.now();
        self.pending = match self.run.mode {
            McastMode::NicBased => 1,
            McastMode::HostBased => self.tree.children(self.run.root).len() as u32,
        };
        match self.run.mode {
            McastMode::NicBased => {
                ctx.ext(McastRequest::Send {
                    group: self.gid,
                    data,
                    tag: self.iter as u64,
                });
            }
            McastMode::HostBased => {
                for &c in self.tree.children(self.run.root) {
                    ctx.send(c, DATA_PORT, DATA_PORT, data.clone(), self.iter as u64);
                }
            }
        }
    }

    fn finish_iteration(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let lat = ctx.now() - self.t_start;
        if self.iter >= self.run.warmup {
            let mut s = self.shared.lock().expect("shared app state mutex poisoned");
            s.latency.record_duration(lat);
            s.latency_hist.record(lat.as_micros_f64());
            s.iters_done += 1;
            s.windows.push((self.t_start, ctx.now()));
        }
        self.iter += 1;
        if self.iter < self.total() {
            self.begin_iteration(ctx);
        }
    }
}

impl HostApp<McastExt> for RootApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(REPLY_PORT, 4);
        if self.run.mode == McastMode::NicBased {
            ctx.ext(McastRequest::CreateGroup {
                group: self.gid,
                port: DATA_PORT,
                root: self.run.root,
                parent: None,
                children: self.tree.children(self.run.root).to_vec(),
            });
        }
        // Let every member finish installing its group entry before the
        // first iteration (the paper's 20 warmup iterations play the same
        // synchronizing role; this keeps warmup #0 representative).
        ctx.compute(SimDuration::from_micros(200), SYNC_TAG);
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::ComputeDone { tag: SYNC_TAG } => self.begin_iteration(ctx),
            Notice::Recv { port, tag, .. } if port == REPLY_PORT => {
                if self.run.ack != AckMode::ProbeReply {
                    return;
                }
                assert_eq!(tag, self.iter as u64, "probe ack for the wrong iteration");
                ctx.provide_recv(REPLY_PORT, 1);
                self.finish_iteration(ctx);
            }
            Notice::SendComplete { tag, .. } if self.run.ack == AckMode::NicAck => {
                assert_eq!(tag, self.iter as u64);
                self.pending -= 1;
                if self.pending == 0 {
                    self.finish_iteration(ctx);
                }
            }
            Notice::Ext(McastNotice::SendDone { tag, .. }) if self.run.ack == AckMode::NicAck => {
                assert_eq!(tag, self.iter as u64);
                self.pending -= 1;
                if self.pending == 0 {
                    self.finish_iteration(ctx);
                }
            }
            _ => {}
        }
    }
}

/// Every destination's app: consume, forward if host-based, ack if probe.
struct DestApp {
    run: McastRun,
    tree: SpanningTree,
    gid: GroupId,
    me: NodeId,
}

impl HostApp<McastExt> for DestApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(DATA_PORT, 32);
        if self.run.mode == McastMode::NicBased {
            ctx.ext(McastRequest::CreateGroup {
                group: self.gid,
                port: DATA_PORT,
                root: self.run.root,
                parent: Some(self.tree.parent(self.me).expect("dest has a parent")),
                children: self.tree.children(self.me).to_vec(),
            });
        }
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if let Notice::Recv {
            port, tag, data, ..
        } = n
        {
            if port != DATA_PORT {
                return;
            }
            assert_eq!(data.len(), self.run.size, "payload length corrupted");
            ctx.provide_recv(DATA_PORT, 1);
            if self.run.mode == McastMode::HostBased {
                // Traditional scheme: the *host* forwards along the tree.
                for &c in self.tree.children(self.me) {
                    ctx.send(c, DATA_PORT, DATA_PORT, data.clone(), tag);
                }
            }
            if self.run.ack == AckMode::ProbeReply && self.me == self.run.probe {
                ctx.send(
                    self.run.root,
                    REPLY_PORT,
                    REPLY_PORT,
                    Bytes::from_static(b"!"),
                    tag,
                );
            }
        }
    }
}

/// Build the cluster for a run, returning it with a handle to the shared
/// measurement state (exposed for tests that want to poke the cluster).
pub fn build_cluster(run: &McastRun) -> (Cluster<McastExt>, Arc<Mutex<Shared>>) {
    assert!(run.dests.contains(&run.probe), "probe must be a destination");
    let topo = Topology::for_nodes(run.n_nodes);
    let fabric = Fabric::with_config(topo, run.net, run.faults.clone(), run.seed);
    let tree = SpanningTree::build(run.root, &run.dests, run.shape);
    let gid = GroupId(1);
    let shared = Arc::new(Mutex::new(Shared {
        latency: OnlineStats::new(),
        latency_hist: Histogram::new(1.0, 100_000),
        iters_done: 0,
        windows: Vec::new(),
    }));
    let config = run.config;
    let mut cluster = Cluster::new(run.params.clone(), fabric, |_| McastExt::with_config(config));
    cluster.set_app(
        run.root,
        Box::new(RootApp {
            run: run.clone(),
            tree: tree.clone(),
            gid,
            iter: 0,
            t_start: SimTime::ZERO,
            pending: 0,
            shared: shared.clone(),
        }),
    );
    for &d in &run.dests {
        cluster.set_app(
            d,
            Box::new(DestApp {
                run: run.clone(),
                tree: tree.clone(),
                gid,
                me: d,
            }),
        );
    }
    (cluster, shared)
}

/// Everything an instrumented run produces: measurements plus the probe
/// event history, per-iteration windows, and a counter snapshot.
pub struct InstrumentedOutput {
    /// The measurements (what [`execute`] used to return).
    pub output: RunOutput,
    /// The recorded probe events (empty when probes were off).
    pub probe: ProbeSink,
    /// Counter snapshot: `nic.*` (summed over nodes), `fabric.*`,
    /// `engine.events`, `probe.*`/`series.*` (sink health) and — on sharded
    /// runs — `parallel.*` execution statistics.
    pub metrics: Metrics,
    /// `(start, end)` of each timed iteration.
    pub windows: Vec<(SimTime, SimTime)>,
    /// The recorded gauge time-series (empty when series were off).
    pub series: SeriesSink,
}

/// Execute one run to completion and collect the measurements.
///
/// Prefer [`Scenario`](crate::Scenario), which validates its inputs and
/// returns a [`Report`](crate::Report) with metrics and probes attached.
#[deprecated(since = "0.2.0", note = "use `Scenario::...().run()` instead")]
pub fn execute(run: &McastRun) -> RunOutput {
    execute_instrumented(run, ProbeConfig::off()).output
}

/// Execute one run with an observability configuration. This is the single
/// execution path behind both [`Scenario`](crate::Scenario) and the
/// deprecated [`execute`].
pub fn execute_instrumented(run: &McastRun, probes: ProbeConfig) -> InstrumentedOutput {
    execute_observed(run, probes, SeriesConfig::off())
}

/// Execute one run with full observability: span probes *and* gauge
/// time-series. Sharded runs additionally record per-shard execution
/// statistics under `parallel.*` metric keys.
pub fn execute_observed(
    run: &McastRun,
    probes: ProbeConfig,
    series: SeriesConfig,
) -> InstrumentedOutput {
    let tree = SpanningTree::build(run.root, &run.dests, run.shape);
    let (mut cluster, shared) = build_cluster(run);
    cluster.set_probes(probes);
    cluster.set_series(series);

    // Run sequentially or sharded — bit-for-bit the same results, so the
    // collection below works off a uniform `Vec<Cluster>` view. Infeasible
    // sharding requests (single shard, targeted drop rules, indivisible
    // topologies) fall back to the sequential engine.
    let (mut worlds, now, events, shard_stats): (_, _, _, Vec<ShardStats>) =
        if run.shards > 1 && cluster.shard_infeasible(run.shards).is_none() {
            let mut eng = cluster.into_sharded_engine(run.shards);
            let outcome = eng.run(SimTime::MAX, 2_000_000_000);
            assert_eq!(
                outcome,
                gm_sim::RunOutcome::Idle,
                "sharded run did not converge (possible deadlock)"
            );
            let (now, events) = (eng.now(), eng.events_handled());
            let shard_stats = eng.shard_stats();
            (eng.into_worlds(), now, events, shard_stats)
        } else {
            let mut eng = cluster.into_engine();
            let outcome = eng.run(SimTime::MAX, 2_000_000_000);
            assert_eq!(
                outcome,
                gm_sim::RunOutcome::Idle,
                "run did not converge (possible deadlock)"
            );
            let (now, events) = (eng.now(), eng.events_handled());
            (vec![eng.into_world()], now, events, Vec::new())
        };

    let s = shared.lock().expect("shared app state mutex poisoned");
    assert!(
        run.allow_incomplete || s.iters_done == run.iters,
        "not every timed iteration completed ({} of {})",
        s.iters_done,
        run.iters
    );
    let retransmissions: u64 = worlds
        .iter()
        .map(|w| {
            w.local_nodes()
                .map(|n| {
                    let c = &w.nic(n).counters;
                    c.get("mcast_retransmissions") + c.get("retransmissions")
                })
                .sum::<u64>()
        })
        .sum();
    // The root's injection link is owned (and therefore accounted) by the
    // shard that owns the root node.
    let root_world = worlds
        .iter()
        .find(|w| w.local_nodes().any(|n| n == run.root))
        .expect("some shard owns the root");
    let root_link = root_world.fabric().topology().route(run.root, run.probe)[0];
    let root_link_utilization = if now > SimTime::ZERO {
        root_world.fabric().link_busy(root_link).as_micros_f64() / now.as_micros_f64()
    } else {
        0.0
    };
    let mut metrics = Metrics::new();
    for w in &worlds {
        for n in w.local_nodes() {
            for (name, v) in w.nic(n).counters.iter() {
                metrics.add("nic", name, v);
            }
        }
        for (name, v) in w.fabric().counters().iter() {
            metrics.add("fabric", name, v);
        }
    }
    metrics.set("engine", "events", events);
    // Per-shard execution statistics. These describe *how* the run was
    // executed, not what it computed, so parity checks strip `parallel.*`
    // before comparing sequential and sharded runs.
    if !shard_stats.is_empty() {
        metrics.set("parallel", "shards", shard_stats.len() as u64);
        metrics.set(
            "parallel",
            "windows",
            shard_stats.iter().map(|s| s.windows).max().unwrap_or(0),
        );
        metrics.set(
            "parallel",
            "horizon_tightenings",
            shard_stats.iter().map(|s| s.horizon_tightenings).sum(),
        );
        metrics.set(
            "parallel",
            "barrier_waits",
            shard_stats.iter().map(|s| s.barrier_waits).sum(),
        );
        for (i, s) in shard_stats.iter().enumerate() {
            metrics.set("parallel", &format!("shard{i}.events"), s.events);
        }
    }
    let output = RunOutput {
        latency: s.latency.clone(),
        latency_p50: s.latency_hist.percentile(50.0),
        latency_p99: s.latency_hist.percentile(99.0),
        retransmissions,
        height: tree.height(),
        avg_fanout: tree.avg_fanout(),
        end_time: now,
        events,
        root_link_utilization,
    };
    let windows = s.windows.clone();
    drop(s);
    // Canonicalize the probe stream in both modes (sort by `(time, node)`,
    // renumber), so a sharded run's merged stream is byte-identical to the
    // sequential reference.
    let probe = ProbeSink::merge_canonical(
        worlds
            .iter_mut()
            .map(|w| std::mem::replace(&mut w.probe, ProbeSink::disabled()))
            .collect(),
    );
    let series = SeriesSink::merge_canonical(
        worlds
            .iter_mut()
            .map(|w| std::mem::replace(&mut w.series, SeriesSink::disabled()))
            .collect(),
    );
    // Sink-health counters: non-zero drops mean the rings were too small to
    // hold the run and downstream analyses (lineage, critical path, gauge
    // summaries) may be incomplete.
    metrics.set("probe", "dropped_events", probe.evicted());
    metrics.set("series", "dropped_points", series.dropped());
    InstrumentedOutput {
        output,
        probe,
        metrics,
        windows,
        series,
    }
}

/// Run once per destination as the probe and keep the slowest (the paper's
/// max-over-leaves methodology).
pub fn execute_max_over_probes(run: &McastRun) -> RunOutput {
    let mut worst: Option<RunOutput> = None;
    for &probe in &run.dests {
        let mut r = run.clone();
        r.probe = probe;
        let out = execute_instrumented(&r, ProbeConfig::off()).output;
        let better = worst
            .as_ref()
            .is_none_or(|w| out.latency.mean() > w.latency.mean());
        if better {
            worst = Some(out);
        }
    }
    worst.expect("at least one destination")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shadow the deprecated shim: tests exercise the real path.
    fn execute(run: &McastRun) -> RunOutput {
        execute_instrumented(run, ProbeConfig::off()).output
    }

    #[test]
    fn nic_based_flat_multisend_completes() {
        let mut run = McastRun::new(5, 64, McastMode::NicBased, TreeShape::Flat);
        run.warmup = 2;
        run.iters = 5;
        let out = execute(&run);
        assert_eq!(out.latency.count(), 5);
        assert!(out.latency.mean() > 0.0);
        assert_eq!(out.retransmissions, 0);
        assert_eq!(out.height, 1);
    }

    #[test]
    fn host_based_binomial_completes() {
        let mut run = McastRun::new(8, 256, McastMode::HostBased, TreeShape::Binomial);
        run.warmup = 2;
        run.iters = 5;
        let out = execute(&run);
        assert_eq!(out.latency.count(), 5);
        assert!(out.height >= 3);
    }

    #[test]
    fn nic_based_beats_host_based_small_messages_16_nodes() {
        let nb = {
            let mut r = McastRun::new(
                16,
                64,
                McastMode::NicBased,
                TreeShape::Postal(crate::calibrate::postal_for_size(
                    64,
                    &GmParams::default(),
                    &NetParams::default(),
                    2,
                )),
            );
            r.warmup = 3;
            r.iters = 10;
            execute(&r).latency.mean()
        };
        let hb = {
            let mut r = McastRun::new(16, 64, McastMode::HostBased, TreeShape::Binomial);
            r.warmup = 3;
            r.iters = 10;
            execute(&r).latency.mean()
        };
        assert!(
            nb < hb,
            "NIC-based ({nb:.2}us) should beat host-based ({hb:.2}us)"
        );
    }

    #[test]
    fn percentiles_are_consistent_and_loss_fattens_the_tail() {
        let mut run = McastRun::new(8, 512, McastMode::NicBased, TreeShape::Binomial);
        run.warmup = 2;
        run.iters = 60;
        let clean = execute(&run);
        assert!(clean.latency_p50 <= clean.latency_p99);
        assert!(clean.latency_p50 > 0.0);
        // Clean runs are deterministic: the distribution is a spike.
        assert!(clean.latency_p99 - clean.latency_p50 < 2.0);
        run.faults = FaultPlan::with_loss(0.02);
        let lossy = execute(&run);
        assert!(
            lossy.latency_p99 > lossy.latency_p50 * 5.0,
            "timeout recoveries must fatten the tail: p50 {:.1} p99 {:.1}",
            lossy.latency_p50,
            lossy.latency_p99
        );
    }

    #[test]
    fn survives_random_loss() {
        let mut run = McastRun::new(8, 512, McastMode::NicBased, TreeShape::Binomial);
        run.warmup = 1;
        run.iters = 10;
        run.faults = FaultPlan::with_loss(0.05);
        let out = execute(&run);
        assert_eq!(out.latency.count(), 10);
        assert!(out.retransmissions > 0, "loss must trigger retransmissions");
    }

    #[test]
    fn deterministic_across_executions() {
        let mut run = McastRun::new(6, 128, McastMode::NicBased, TreeShape::Binomial);
        run.warmup = 1;
        run.iters = 5;
        run.faults = FaultPlan::with_loss(0.02);
        let a = execute(&run);
        let b = execute(&run);
        assert_eq!(a.latency.mean(), b.latency.mean());
        assert_eq!(a.events, b.events);
        assert_eq!(a.end_time, b.end_time);
    }
}
