//! Named message-size sweeps.
//!
//! Every figure in the paper sweeps message size over powers of two; the
//! bench bins used to copy the same `[usize; 15]` literals around. A
//! [`Sweep`] carries the points *and* a label, so results files record
//! which sweep produced them.

/// A labelled list of message sizes (bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sweep {
    label: &'static str,
    points: Vec<usize>,
}

impl Sweep {
    /// The GM-level sweep the paper's Figures 3-5 use: 1 B to 16 KB.
    pub fn gm_sizes() -> Sweep {
        Sweep {
            label: "gm_sizes",
            points: vec![
                1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240, 12288, 16384,
            ],
        }
    }

    /// The MPI-level sweep (Figures 6-7); tops out at the largest eager
    /// message (16 287 B).
    pub fn mpi_sizes() -> Sweep {
        Sweep {
            label: "mpi_sizes",
            points: vec![
                1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240, 12288, 16287,
            ],
        }
    }

    /// An arbitrary labelled sweep.
    pub fn custom(label: &'static str, points: Vec<usize>) -> Sweep {
        Sweep { label, points }
    }

    /// The sweep's label (recorded in results JSON).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The points, in order.
    pub fn points(&self) -> &[usize] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate the points by value.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.points.iter().copied()
    }
}

impl IntoIterator for Sweep {
    type Item = usize;
    type IntoIter = std::vec::IntoIter<usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a> IntoIterator for &'a Sweep {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sweeps_match_the_paper() {
        let gm = Sweep::gm_sizes();
        assert_eq!(gm.points().first(), Some(&1));
        assert_eq!(gm.points().last(), Some(&16384));
        assert_eq!(gm.len(), 15);
        let mpi = Sweep::mpi_sizes();
        assert_eq!(mpi.points().last(), Some(&16287), "below the eager limit");
    }

    #[test]
    fn sweeps_iterate_by_value() {
        let s = Sweep::custom("demo", vec![1, 2, 4]);
        let doubled: Vec<usize> = (&s).into_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 8]);
        assert_eq!(s.iter().sum::<usize>(), 7);
    }
}
