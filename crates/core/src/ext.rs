//! The NIC-based multicast firmware: the paper's contribution.
//!
//! Installed into each NIC through GM-2's descriptor/callback surface
//! ([`gm::NicExtension`]), this module implements:
//!
//! * **NIC-based multisend** — the host posts *one* request; the NIC
//!   downloads each packet once and re-queues it to successive children from
//!   the transmit-complete callback, rewriting only the header. The repeated
//!   host-request processing of the host-based scheme disappears.
//! * **NIC-based forwarding** — an intermediate NIC that accepts a multicast
//!   packet immediately re-queues it toward its own children (before the
//!   rest of the message has even arrived), while the payload is DMA'd to
//!   the host in parallel. No host involvement on the forwarding path.
//! * **Reliable one-to-many Go-Back-N** — every member tracks a receive
//!   sequence, a send sequence and a per-child acked array; on timeout,
//!   packets are retransmitted *only* to the children that have not
//!   acknowledged them, from the host-memory replica (the receive token is
//!   transformed into a send token, so no extra NIC resources are needed).

use bytes::BytesMut;
use gm_sim::{FlowId, SimTime};
use myrinet::{GroupId, NodeId, Packet, PacketKind, MTU};

use gm::proto::{self, RxVerdict};
use gm::{flow_tag, Cb, GmParams, NicCore, NicExtension};

use crate::group::{
    CollKind, FwdTokenPolicy, GroupState, InMsg, McastConfig, McastNotice, McastRec,
    McastRequest, RetxBufferPolicy,
};
use crate::group::MultisendImpl;

use std::collections::{BTreeMap, VecDeque};

/// Opaque tags threaded through callbacks, DMA jobs, work items and timers.
#[derive(Clone, Debug)]
pub enum McastTag {
    /// Root: a packet finished downloading into a send buffer.
    SdmaDone {
        /// Group.
        group: GroupId,
        /// Packet sequence.
        seq: u64,
    },
    /// Root: the replica to `children[idx]` finished serializing.
    Replica {
        /// Group.
        group: GroupId,
        /// Packet sequence.
        seq: u64,
        /// Child index just sent.
        idx: usize,
    },
    /// Forwarder: the forwarded replica to `children[idx]` finished
    /// serializing (transmitted straight from the receive buffer).
    FwdReplica {
        /// Group.
        group: GroupId,
        /// Packet sequence.
        seq: u64,
        /// Child index just sent.
        idx: usize,
    },
    /// A received packet's payload finished uploading to host memory.
    RdmaDone {
        /// Group.
        group: GroupId,
        /// Packet sequence (for buffer refcounting).
        seq: u64,
        /// Bytes uploaded.
        bytes: u32,
    },
    /// A retransmission finished re-downloading from host memory.
    RetxDma {
        /// Group.
        group: GroupId,
        /// Packet sequence.
        seq: u64,
        /// Target child.
        child: NodeId,
    },
    /// A single-target transmission (retransmit or per-dest-token send)
    /// finished serializing.
    SingleSent {
        /// Group.
        group: GroupId,
        /// Packet sequence.
        seq: u64,
        /// Target child.
        child: NodeId,
        /// Whether a send SRAM buffer was held (and must be freed).
        buf: bool,
    },
    /// Per-destination token processing (the multisend ablation).
    PerDestProc {
        /// Group.
        group: GroupId,
        /// Packet sequence.
        seq: u64,
        /// Target child.
        child: NodeId,
    },
    /// Group retransmission timer.
    GroupTimer {
        /// Group.
        group: GroupId,
        /// Arm generation (stale fires are ignored).
        gen: u64,
    },
    /// Barrier UP-token retransmission timer.
    BarrierTimer {
        /// Group.
        group: GroupId,
        /// The round the UP belongs to.
        round: u64,
    },
}

/// Opcode of the barrier's child-to-parent "subtree entered" token.
pub const OP_BARRIER_UP: u8 = 1;

/// Barrier release messages travel as zero-byte multicasts whose tag has
/// this bit set (low bits carry the round).
pub const BARRIER_TAG_BIT: u64 = 1 << 63;

/// A queued single-target transmission request.
#[derive(Clone, Copy, Debug)]
struct SingleTx {
    group: GroupId,
    seq: u64,
    child: NodeId,
}

/// The multicast firmware state for one NIC.
#[derive(Debug, Default)]
pub struct McastExt {
    /// Ablation switches (paper defaults).
    pub config: McastConfig,
    groups: BTreeMap<GroupId, GroupState>,
    /// Root packets waiting for a send SRAM buffer.
    sdma_pending: VecDeque<(GroupId, u64)>,
    /// Retransmissions / per-dest sends waiting for a buffer.
    single_pending: VecDeque<SingleTx>,
    /// Forward chains stalled on a free-pool send token (ablation).
    fwd_stalled: VecDeque<(GroupId, u64)>,
    /// Outstanding references to a held receive/send buffer per packet.
    buf_refs: BTreeMap<(GroupId, u64), u8>,
}

impl McastExt {
    /// Firmware with the paper's design choices.
    pub fn new() -> Self {
        McastExt::default()
    }

    /// Firmware with explicit ablation switches.
    pub fn with_config(config: McastConfig) -> Self {
        McastExt {
            config,
            ..McastExt::default()
        }
    }

    /// Number of installed groups (diagnostics).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Outstanding (unacked) packets for `group` (diagnostics).
    pub fn outstanding(&self, group: GroupId) -> usize {
        self.groups.get(&group).map_or(0, |g| g.records.len())
    }

    // -- flow attribution --------------------------------------------------------

    /// `(origin, folded tag)` of the message `(group, seq)`: from the
    /// forwarding record when one exists, else from the oldest
    /// still-uploading in-progress message (leaf receives keep no record).
    fn flow_parts(&self, group: GroupId, seq: u64) -> Option<(u32, u64)> {
        let g = self.groups.get(&group)?;
        let tag = g
            .records
            .iter()
            .find(|r| r.seq == seq)
            .map(|r| r.tag)
            .or_else(|| {
                g.in_msgs
                    .iter()
                    .find(|m| m.rdma_done < m.msg_len || m.msg_len == 0)
                    .map(|m| m.tag)
            })?;
        Some((g.root.0, flow_tag(tag)))
    }

    // -- packet construction ---------------------------------------------------

    fn data_pkt(src: NodeId, dst: NodeId, group: GroupId, rec: &McastRec, root: NodeId) -> Packet {
        Packet {
            src,
            dst,
            kind: PacketKind::Mcast {
                group,
                seq: rec.seq,
                offset: rec.offset,
                msg_len: rec.msg_len,
                tag: rec.tag,
                root,
            },
            payload: rec.payload.clone(),
        }
    }

    // -- root send path ----------------------------------------------------------

    fn start_send(&mut self, core: &mut NicCore<Self>, group: GroupId, data: bytes::Bytes, tag: u64) {
        let Some(g) = self.groups.get_mut(&group) else {
            core.counters.bump("mcast_send_unknown_group");
            return;
        };
        assert!(
            g.parent.is_none(),
            "only the root may initiate a multicast on its group"
        );
        if g.children.is_empty() {
            // Degenerate group: nothing to send.
            core.ext_notify(McastNotice::SendDone { group, tag });
            return;
        }
        let len = data.len();
        let first_seq = g.tx.next_seq();
        let mut off = 0usize;
        loop {
            let chunk = (len - off).min(MTU);
            let seq = g.tx.assign_seq();
            g.records.push_back(McastRec {
                seq,
                offset: off as u32,
                msg_len: len as u32,
                tag,
                payload: data.slice(off..off + chunk),
                last_tx: None,
                retries: 0,
            });
            off += chunk;
            if off >= len {
                break;
            }
        }
        let last_seq = g.tx.next_seq() - 1;
        g.out_msgs.push_back((tag, last_seq));
        core.counters.add("mcast_packets_out", last_seq - first_seq + 1);
        match self.config.multisend {
            MultisendImpl::Callback => {
                for seq in first_seq..=last_seq {
                    self.sdma_pending.push_back((group, seq));
                }
                self.pump_sdma(core);
            }
            MultisendImpl::PerDestToken => {
                // Approach 1: one token-processing work item per
                // (destination, packet), exactly the repetition the
                // NIC-based multisend exists to avoid.
                let children = self.groups[&group].children.clone();
                for seq in first_seq..=last_seq {
                    for &child in &children {
                        core.ext_work(
                            core.params().send_token_proc,
                            McastTag::PerDestProc { group, seq, child },
                        );
                    }
                }
            }
        }
    }

    fn pump_sdma(&mut self, core: &mut NicCore<Self>) {
        while let Some(&(group, seq)) = self.sdma_pending.front() {
            let bytes = match self.groups.get_mut(&group).and_then(|g| g.record(seq)) {
                Some(rec) => rec.payload.len() as u64,
                None => {
                    self.sdma_pending.pop_front();
                    continue;
                }
            };
            if !core.alloc_send_buffer() {
                core.signal_resource_wait();
                return;
            }
            self.sdma_pending.pop_front();
            core.ext_dma(bytes, McastTag::SdmaDone { group, seq });
        }
    }

    /// Start the replica chain for a packet sitting in a send buffer.
    fn start_chain(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64) {
        let me = core.node();
        let Some(g) = self.groups.get_mut(&group) else {
            core.free_send_buffer();
            return;
        };
        let (first_child, root) = (g.children[0], g.root);
        let Some(rec) = g.record(seq) else {
            // Fully acked while the DMA was in flight.
            core.free_send_buffer();
            return;
        };
        let pkt = Self::data_pkt(me, first_child, group, rec, root);
        core.counters.bump("mcast_tx");
        core.ext_tx(pkt, Cb::Ext(McastTag::Replica { group, seq, idx: 0 }));
    }

    /// Transmit-complete callback on the root's replica chain: rewrite the
    /// header for the next child and requeue (the GM-2 descriptor-callback
    /// trick), or release the buffer after the last child.
    fn replica_done(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64, idx: usize) {
        let me = core.node();
        let now = core.now();
        let Some(g) = self.groups.get_mut(&group) else {
            core.free_send_buffer();
            return;
        };
        let root = g.root;
        let next = proto::next_replica(g.children.len(), idx).map(|i| g.children[i]);
        if let Some(rec) = g.record(seq) {
            rec.last_tx = Some(now);
            if let Some(child) = next {
                let pkt = Self::data_pkt(me, child, group, rec, root);
                core.counters.bump("mcast_tx");
                core.ext_tx(
                    pkt,
                    Cb::Ext(McastTag::Replica {
                        group,
                        seq,
                        idx: idx + 1,
                    }),
                );
                return;
            }
        } else if let Some(child) = next {
            // Record already acked away mid-chain (possible with zero-loss
            // fast acks); keep the chain going from the refs we no longer
            // have — nothing to send, fall through to release.
            let _ = child;
        }
        core.free_send_buffer();
        self.arm_timer(core, group);
        self.pump_sdma(core);
        self.pump_single(core);
    }

    // -- forwarding path --------------------------------------------------------

    fn on_mcast_data(&mut self, core: &mut NicCore<Self>, pkt: Packet) {
        let PacketKind::Mcast {
            group,
            seq,
            offset,
            msg_len,
            tag,
            root: _,
        } = pkt.kind
        else {
            unreachable!("on_mcast_data on non-mcast packet")
        };
        let me = core.node();
        let Some(g) = self.groups.get_mut(&group) else {
            core.counters.bump("mcast_unknown_group");
            core.free_recv_buffer();
            return;
        };
        let parent = g.parent.expect("non-root received a multicast packet");
        if let RxVerdict::OutOfOrder { reack } = g.rx.verdict(seq) {
            core.counters.bump("mcast_out_of_order");
            core.free_recv_buffer();
            // Re-ack the last in-order packet so the parent's acked array
            // advances even if our ack was lost.
            if let Some(a) = reack {
                core.ext_tx(Packet::mcast_ack(me, parent, group, a), Cb::None);
            }
            return;
        }
        let is_collective = tag & BARRIER_TAG_BIT != 0;
        if is_collective {
            // Collective release: pure NIC-level control riding the
            // reliable multicast path. No receive token, no host copy.
            debug_assert!(msg_len == 0 || msg_len == 8, "release payload");
            let payload = pkt.payload.clone();
            return self.accept_barrier_release(core, &payload, group, seq);
        }
        if offset == 0 {
            // A new message needs a receive token ("the receive token is
            // presumed to be available to receive any message").
            if !core.take_recv_token(g.port) {
                core.free_recv_buffer();
                return; // no ack: the parent's timeout recovers this packet
            }
            let g = self.groups.get_mut(&group).expect("group exists");
            g.in_msgs.push_back(InMsg {
                tag,
                msg_len,
                received: 0,
                rdma_done: 0,
                data: BytesMut::with_capacity(msg_len as usize),
            });
        }
        let g = self.groups.get_mut(&group).expect("group exists");
        g.rx.accept();
        let msg = g.in_msgs.back_mut().expect("open message");
        debug_assert_eq!(msg.received, offset);
        msg.data.extend_from_slice(&pkt.payload);
        msg.received += pkt.payload.len() as u32;
        core.counters.bump("mcast_rx");

        let has_children = !g.children.is_empty();
        let hold_sram = self.config.retx_buffer == RetxBufferPolicy::HoldSram;
        // One ref for the RDMA upload, one for the forwarding chain, one
        // held until all children ack (HoldSram ablation only).
        self.buf_refs
            .insert((group, seq), proto::fwd_buf_refs(has_children, hold_sram));

        // Forward before acking: the replica chain is the latency-critical
        // path ("an intermediate NIC can forward the packets of a message
        // without waiting for the arrival of the complete message").
        if has_children {
            let g = self.groups.get_mut(&group).expect("group exists");
            g.records.push_back(McastRec {
                seq,
                offset,
                msg_len,
                tag,
                payload: pkt.payload.clone(),
                last_tx: None,
                retries: 0,
            });
            let need_pool_token = self.config.fwd_token == FwdTokenPolicy::FreePool;
            if need_pool_token && !core.take_send_token() {
                // Ablation: forwarding stalls until a pool token frees up —
                // the deadlock the paper's receive-token transformation
                // avoids.
                core.counters.bump("mcast_fwd_token_stall");
                self.fwd_stalled.push_back((group, seq));
                core.signal_resource_wait();
            } else {
                self.launch_forward(core, group, seq);
            }
        }

        // Ack the parent and upload the payload to host memory in parallel
        // with forwarding.
        core.ext_tx(Packet::mcast_ack(me, parent, group, seq), Cb::None);
        core.ext_dma(
            pkt.payload.len() as u64,
            McastTag::RdmaDone {
                group,
                seq,
                bytes: pkt.payload.len() as u32,
            },
        );
    }

    fn launch_forward(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64) {
        let me = core.node();
        let g = self.groups.get_mut(&group).expect("group exists");
        let (first_child, root) = (g.children[0], g.root);
        let Some(rec) = g.record(seq) else {
            // Already acked (cannot normally happen before first transmit).
            self.dec_ref(core, group, seq);
            return;
        };
        let pkt = Self::data_pkt(me, first_child, group, rec, root);
        core.counters.bump("mcast_fwd");
        core.ext_tx(pkt, Cb::Ext(McastTag::FwdReplica { group, seq, idx: 0 }));
    }

    fn fwd_replica_done(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64, idx: usize) {
        let me = core.node();
        let now = core.now();
        if let Some(g) = self.groups.get_mut(&group) {
            let root = g.root;
            let next = proto::next_replica(g.children.len(), idx).map(|i| g.children[i]);
            if let Some(rec) = g.record(seq) {
                rec.last_tx = Some(now);
                if let Some(child) = next {
                    let pkt = Self::data_pkt(me, child, group, rec, root);
                    core.counters.bump("mcast_fwd");
                    core.ext_tx(
                        pkt,
                        Cb::Ext(McastTag::FwdReplica {
                            group,
                            seq,
                            idx: idx + 1,
                        }),
                    );
                    return;
                }
            }
        }
        // Chain complete (or record acked away): drop the chain's buffer ref.
        self.dec_ref(core, group, seq);
        self.arm_timer(core, group);
    }

    fn rdma_done(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64, bytes: u32) {
        if let Some(g) = self.groups.get_mut(&group) {
            // FIFO PCI completions: credit the oldest message still
            // uploading.
            if let Some(msg) = g.in_msgs.iter_mut().find(|m| m.rdma_done < m.msg_len || m.msg_len == 0) {
                msg.rdma_done += bytes;
            }
            // Deliver every fully-arrived, fully-uploaded message in order.
            while let Some(front) = g.in_msgs.front() {
                if front.received >= front.msg_len && front.rdma_done >= front.msg_len {
                    let m = g.in_msgs.pop_front().expect("nonempty");
                    let (port, root) = (g.port, g.root);
                    core.notify_recv(port, root, port, m.tag, m.data.freeze());
                    core.counters.bump("mcast_delivered");
                } else {
                    break;
                }
            }
        }
        self.dec_ref(core, group, seq);
    }

    fn dec_ref(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64) {
        let Some(refs) = self.buf_refs.get_mut(&(group, seq)) else {
            return;
        };
        *refs -= 1;
        if *refs == 0 {
            self.buf_refs.remove(&(group, seq));
            core.free_recv_buffer();
        }
    }

    // -- NIC-level collectives (future-work extension) ----------------------------

    fn collective_enter(
        &mut self,
        core: &mut NicCore<Self>,
        group: GroupId,
        tag: u64,
        kind: CollKind,
        value: u64,
    ) {
        let Some(g) = self.groups.get_mut(&group) else {
            core.counters.bump("mcast_barrier_unknown_group");
            return;
        };
        assert!(!g.bar_entered, "host re-entered an open collective round");
        g.bar_entered = true;
        g.bar_tag = tag;
        g.bar_kind = kind;
        g.bar_value = value;
        self.barrier_progress(core, group);
    }

    /// Try to advance the collective at this node: once the local host has
    /// entered and every child subtree has reported UP, either release (at
    /// the root, through the reliable multicast path) or push our subtree's
    /// partial value up to the parent.
    fn barrier_progress(&mut self, core: &mut NicCore<Self>, group: GroupId) {
        let me = core.node();
        let timeout = core.params().timeout;
        let Some(g) = self.groups.get_mut(&group) else {
            return;
        };
        if !g.bar_entered {
            return;
        }
        let round = g.bar_round;
        let subtree_ready = g.bar_up.iter().all(|&c| c > round);
        if !subtree_ready {
            return;
        }
        // Fold this subtree's partial value (barrier folds nothing).
        let partial = match g.bar_kind {
            CollKind::Barrier => 0,
            CollKind::Allreduce(op) => g
                .bar_child_val
                .iter()
                .fold(g.bar_value, |acc, &v| op.apply(acc, v)),
        };
        match g.parent {
            None => {
                // Root: complete locally and release everyone through the
                // reliable multicast path (ordered with data messages).
                let tag = g.bar_tag;
                let kind = g.bar_kind;
                g.bar_round += 1;
                g.bar_entered = false;
                g.bar_up_sent = false;
                core.counters.bump("mcast_barrier_rounds");
                let payload = match kind {
                    CollKind::Barrier => {
                        core.ext_notify(McastNotice::BarrierDone { group, tag });
                        bytes::Bytes::new()
                    }
                    CollKind::Allreduce(_) => {
                        core.ext_notify(McastNotice::AllreduceDone {
                            group,
                            result: partial,
                            tag,
                        });
                        bytes::Bytes::copy_from_slice(&partial.to_le_bytes())
                    }
                };
                self.start_send(core, group, payload, BARRIER_TAG_BIT | round);
            }
            Some(parent) => {
                if g.bar_up_sent {
                    return;
                }
                g.bar_up_sent = true;
                core.ext_tx(
                    Packet::ctl(me, parent, group, OP_BARRIER_UP, round, partial),
                    Cb::None,
                );
                // Re-send the UP until the release arrives (UP tokens are
                // not otherwise acknowledged).
                core.ext_timer(timeout, McastTag::BarrierTimer { group, round });
            }
        }
    }

    /// A collective release (multicast with the collective tag bit) was
    /// accepted in sequence: complete the round at this member and let the
    /// normal forwarding machinery push it to the children. A zero-byte
    /// release is a barrier; an 8-byte release carries the allreduce result.
    fn accept_barrier_release(
        &mut self,
        core: &mut NicCore<Self>,
        pkt_payload: &bytes::Bytes,
        group: GroupId,
        seq: u64,
    ) {
        let me = core.node();
        let g = self.groups.get_mut(&group).expect("checked by caller");
        let parent = g.parent.expect("non-root");
        g.rx.accept();
        debug_assert!(g.bar_entered, "release precedes local entry");
        let tag = g.bar_tag;
        g.bar_round += 1;
        g.bar_entered = false;
        g.bar_up_sent = false;
        core.counters.bump("mcast_barrier_rounds");
        if pkt_payload.len() == 8 {
            let result = u64::from_le_bytes(pkt_payload[..].try_into().expect("8 bytes"));
            core.ext_notify(McastNotice::AllreduceDone { group, result, tag });
        } else {
            core.ext_notify(McastNotice::BarrierDone { group, tag });
        }

        // Forward the release down the tree exactly like a data packet
        // (records + per-child acks keep it reliable), then ack the parent.
        let g = self.groups.get_mut(&group).expect("group exists");
        let has_children = !g.children.is_empty();
        if has_children {
            self.buf_refs.insert((group, seq), 1);
            let g = self.groups.get_mut(&group).expect("group exists");
            g.records.push_back(McastRec {
                seq,
                offset: 0,
                msg_len: pkt_payload.len() as u32,
                tag: BARRIER_TAG_BIT | (g.bar_round - 1),
                payload: pkt_payload.clone(),
                last_tx: None,
                retries: 0,
            });
            self.launch_forward(core, group, seq);
        } else {
            core.free_recv_buffer();
        }
        core.ext_tx(Packet::mcast_ack(me, parent, group, seq), Cb::None);
    }

    /// A control packet arrived (currently only barrier UP tokens).
    fn on_ctl(&mut self, core: &mut NicCore<Self>, pkt: Packet) {
        let PacketKind::Ctl {
            group,
            op,
            seq,
            value,
        } = pkt.kind
        else {
            unreachable!("on_ctl on non-ctl packet")
        };
        debug_assert_eq!(op, OP_BARRIER_UP, "unknown ctl opcode {op}");
        let Some(g) = self.groups.get_mut(&group) else {
            core.counters.bump("mcast_ctl_unknown_group");
            return;
        };
        let Some(ci) = g.child_index(pkt.src) else {
            core.counters.bump("mcast_ctl_stray");
            return;
        };
        // Count semantics: UP for round r means the child subtree is ready
        // for every round <= r. Retransmitted UPs overwrite with the same
        // value; stale rounds never regress the counter.
        if seq + 1 >= g.bar_up[ci] {
            g.bar_child_val[ci] = value;
        }
        g.bar_up[ci] = g.bar_up[ci].max(seq + 1);
        self.barrier_progress(core, group);
    }

    /// UP-token retransmission: fire until the release moves us past the
    /// round the token belongs to.
    fn on_barrier_timer(&mut self, core: &mut NicCore<Self>, group: GroupId, round: u64) {
        let me = core.node();
        let timeout = core.params().timeout;
        let Some(g) = self.groups.get_mut(&group) else {
            return;
        };
        if g.bar_round != round || !g.bar_up_sent {
            return; // round completed; token no longer needed
        }
        let parent = g.parent.expect("only non-roots send UP");
        let partial = match g.bar_kind {
            CollKind::Barrier => 0,
            CollKind::Allreduce(op) => g
                .bar_child_val
                .iter()
                .fold(g.bar_value, |acc, &v| op.apply(acc, v)),
        };
        core.counters.bump("mcast_barrier_up_retx");
        core.ext_tx(
            Packet::ctl(me, parent, group, OP_BARRIER_UP, round, partial),
            Cb::None,
        );
        core.ext_timer(timeout, McastTag::BarrierTimer { group, round });
    }

    // -- acknowledgments ---------------------------------------------------------

    fn on_mcast_ack(&mut self, core: &mut NicCore<Self>, pkt: Packet) {
        let PacketKind::McastAck { group, seq } = pkt.kind else {
            unreachable!("on_mcast_ack on non-ack packet")
        };
        let hold_sram = self.config.retx_buffer == RetxBufferPolicy::HoldSram;
        let free_pool = self.config.fwd_token == FwdTokenPolicy::FreePool;
        let Some(g) = self.groups.get_mut(&group) else {
            core.counters.bump("mcast_stray_ack");
            return;
        };
        let Some(ci) = g.child_index(pkt.src) else {
            core.counters.bump("mcast_stray_ack");
            return;
        };
        g.acked.on_ack(ci, seq);
        let min_acked = g.min_acked();
        let is_forwarder = g.parent.is_some();
        // Records strictly below the release horizon are globally acked and
        // may be freed (the seeded off-by-one mutation widens the horizon —
        // freeing a record no one confirmed, which kills retransmission).
        let horizon = proto::release_horizon(min_acked, core.params().mutation);
        let mut freed: Vec<u64> = Vec::new();
        while let Some(front) = g.records.front() {
            if front.seq >= horizon {
                break;
            }
            let rec = g.records.pop_front().expect("nonempty");
            freed.push(rec.seq);
        }
        // Root: complete messages whose last packet is globally acked.
        // Barrier releases complete silently (the host already got its
        // BarrierDone when the release was initiated).
        if g.parent.is_none() {
            while let Some(&(tag, last_seq)) = g.out_msgs.front() {
                if last_seq >= min_acked {
                    break;
                }
                g.out_msgs.pop_front();
                if tag & BARRIER_TAG_BIT == 0 {
                    core.ext_notify(McastNotice::SendDone { group, tag });
                }
            }
        }
        for seq in freed {
            if hold_sram && is_forwarder {
                self.dec_ref(core, group, seq);
            }
            if free_pool && is_forwarder {
                core.return_send_token();
            }
        }
    }

    // -- retransmission -----------------------------------------------------------

    fn arm_timer(&mut self, core: &mut NicCore<Self>, group: GroupId) {
        let timeout = core.params().timeout;
        let Some(g) = self.groups.get_mut(&group) else {
            return;
        };
        if g.timer_armed || g.records.is_empty() {
            return;
        }
        g.timer_armed = true;
        g.timer_gen += 1;
        let gen = g.timer_gen;
        core.ext_timer(timeout, McastTag::GroupTimer { group, gen });
    }

    fn on_timer(&mut self, core: &mut NicCore<Self>, group: GroupId, gen: u64) {
        let timeout = core.params().timeout;
        let now = core.now();
        let Some(g) = self.groups.get_mut(&group) else {
            return;
        };
        if gen != g.timer_gen {
            return;
        }
        g.timer_armed = false;
        if g.records.is_empty() {
            return;
        }
        // Retransmit each overdue packet only to the children that have not
        // acknowledged it (§5: "retransmission ... only for the destinations
        // which have not acknowledged").
        let mut queued = 0u64;
        let mut earliest_due: Option<SimTime> = None;
        let mut max_retries = 0u32;
        let children = g.children.clone();
        let acked = g.acked.clone();
        let mut to_queue: Vec<SingleTx> = Vec::new();
        for rec in g.records.iter_mut() {
            let Some(last) = rec.last_tx else {
                // Not transmitted yet (still in a chain); check again later.
                earliest_due = Some(earliest_due.map_or(now + timeout, |e| e.min(now + timeout)));
                continue;
            };
            let due_at = last + timeout;
            if due_at > now {
                earliest_due = Some(earliest_due.map_or(due_at, |e: SimTime| e.min(due_at)));
                continue;
            }
            rec.retries += 1;
            max_retries = max_retries.max(rec.retries);
            for (ci, &child) in children.iter().enumerate() {
                if acked.needs(ci, rec.seq) {
                    to_queue.push(SingleTx {
                        group,
                        seq: rec.seq,
                        child,
                    });
                    queued += 1;
                }
            }
            rec.last_tx = Some(now); // pending retransmit counts as a round
        }
        core.counters.add("mcast_retransmissions", queued);
        self.single_pending.extend(to_queue);
        // Re-arm.
        let g = self.groups.get_mut(&group).expect("group exists");
        g.timer_armed = true;
        g.timer_gen += 1;
        let gen = g.timer_gen;
        // Back off exponentially once retransmitting (see GmParams::timeout).
        let backoff = timeout * (1u64 << max_retries.min(5));
        let delay = if queued > 0 {
            backoff
        } else {
            earliest_due.map_or(timeout, |e| {
                e.saturating_since(now).max(gm_sim::SimDuration::from_nanos(1))
            })
        };
        core.ext_timer(delay, McastTag::GroupTimer { group, gen });
        self.pump_single(core);
    }

    /// Drive queued single-target transmissions (retransmits and the
    /// per-destination-token ablation's sends).
    fn pump_single(&mut self, core: &mut NicCore<Self>) {
        let hold_sram = self.config.retx_buffer == RetxBufferPolicy::HoldSram;
        while let Some(&SingleTx { group, seq, child }) = self.single_pending.front()
        {
            let me = core.node();
            let Some(g) = self.groups.get_mut(&group) else {
                self.single_pending.pop_front();
                continue;
            };
            let still_needed = g
                .child_index(child)
                .map(|ci| g.acked.needs(ci, seq))
                .unwrap_or(false);
            let root = g.root;
            let rec_exists = g.record(seq).is_some();
            if !still_needed || !rec_exists {
                self.single_pending.pop_front();
                continue;
            }
            let is_forwarder = g.parent.is_some();
            if hold_sram && is_forwarder {
                // Data still sits in the held SRAM buffer: transmit directly.
                self.single_pending.pop_front();
                let g = self.groups.get_mut(&group).expect("group exists");
                let rec = g.record(seq).expect("record exists");
                let pkt = Self::data_pkt(me, child, group, rec, root);
                core.counters.bump("mcast_retx_tx");
                core.ext_tx(
                    pkt,
                    Cb::Ext(McastTag::SingleSent {
                        group,
                        seq,
                        child,
                        buf: false,
                    }),
                );
            } else {
                // Re-download the packet from the registered host memory.
                if !core.alloc_send_buffer() {
                    core.signal_resource_wait();
                    return;
                }
                self.single_pending.pop_front();
                let g = self.groups.get_mut(&group).expect("group exists");
                let bytes = g.record(seq).expect("record exists").payload.len() as u64;
                core.ext_dma(bytes, McastTag::RetxDma { group, seq, child });
            }
        }
    }

    fn retx_dma_done(&mut self, core: &mut NicCore<Self>, group: GroupId, seq: u64, child: NodeId) {
        let me = core.node();
        let Some(g) = self.groups.get_mut(&group) else {
            core.free_send_buffer();
            return;
        };
        let root = g.root;
        let Some(rec) = g.record(seq) else {
            core.free_send_buffer();
            return;
        };
        let pkt = Self::data_pkt(me, child, group, rec, root);
        core.counters.bump("mcast_retx_tx");
        core.ext_tx(
            pkt,
            Cb::Ext(McastTag::SingleSent {
                group,
                seq,
                child,
                buf: true,
            }),
        );
    }

    fn single_sent(
        &mut self,
        core: &mut NicCore<Self>,
        group: GroupId,
        seq: u64,
        buf: bool,
    ) {
        let now = core.now();
        if buf {
            core.free_send_buffer();
        }
        if let Some(rec) = self.groups.get_mut(&group).and_then(|g| g.record(seq)) {
            rec.last_tx = Some(now);
        }
        self.arm_timer(core, group);
        self.pump_single(core);
        self.pump_sdma(core);
    }
}

impl NicExtension for McastExt {
    type Request = McastRequest;
    type Notice = McastNotice;
    type Tag = McastTag;

    fn request_cost(&self, req: &McastRequest, params: &GmParams) -> gm_sim::SimDuration {
        match req {
            McastRequest::CreateGroup { children, .. } => {
                params.group_install_base + params.group_install_per_child * children.len() as u64
            }
            McastRequest::Send { .. } => params.ext_req_proc,
            // Entering a collective is a tiny table update.
            McastRequest::BarrierEnter { .. } | McastRequest::AllreduceEnter { .. } => {
                params.ack_proc
            }
        }
    }

    fn host_request(&mut self, core: &mut NicCore<Self>, req: McastRequest) {
        match req {
            McastRequest::CreateGroup {
                group,
                port,
                root,
                parent,
                children,
            } => {
                self.groups
                    .insert(group, GroupState::new(port, root, parent, children));
                core.counters.bump("mcast_group_installs");
                core.ext_notify(McastNotice::GroupReady { group });
            }
            McastRequest::Send { group, data, tag } => {
                self.start_send(core, group, data, tag);
            }
            McastRequest::BarrierEnter { group, tag } => {
                self.collective_enter(core, group, tag, CollKind::Barrier, 0);
            }
            McastRequest::AllreduceEnter {
                group,
                value,
                op,
                tag,
            } => {
                self.collective_enter(core, group, tag, CollKind::Allreduce(op), value);
            }
        }
    }

    fn packet(&mut self, core: &mut NicCore<Self>, pkt: Packet) {
        match pkt.kind {
            PacketKind::Mcast { .. } => self.on_mcast_data(core, pkt),
            PacketKind::McastAck { .. } => self.on_mcast_ack(core, pkt),
            PacketKind::Ctl { .. } => self.on_ctl(core, pkt),
            ref k => unreachable!("extension got non-multicast packet {k:?}"),
        }
    }

    fn tx_callback(&mut self, core: &mut NicCore<Self>, tag: McastTag) {
        match tag {
            McastTag::Replica { group, seq, idx } => self.replica_done(core, group, seq, idx),
            McastTag::FwdReplica { group, seq, idx } => {
                self.fwd_replica_done(core, group, seq, idx);
            }
            McastTag::SingleSent {
                group, seq, buf, ..
            } => self.single_sent(core, group, seq, buf),
            t => unreachable!("unexpected tx callback {t:?}"),
        }
    }

    fn work(&mut self, core: &mut NicCore<Self>, tag: McastTag) {
        match tag {
            McastTag::PerDestProc { group, seq, child } => {
                self.single_pending.push_back(SingleTx { group, seq, child });
                self.pump_single(core);
            }
            t => unreachable!("unexpected work item {t:?}"),
        }
    }

    fn dma_done(&mut self, core: &mut NicCore<Self>, tag: McastTag) {
        match tag {
            McastTag::SdmaDone { group, seq } => self.start_chain(core, group, seq),
            McastTag::RdmaDone { group, seq, bytes } => self.rdma_done(core, group, seq, bytes),
            McastTag::RetxDma { group, seq, child } => {
                self.retx_dma_done(core, group, seq, child);
            }
            t => unreachable!("unexpected dma completion {t:?}"),
        }
    }

    fn timer(&mut self, core: &mut NicCore<Self>, tag: McastTag) {
        match tag {
            McastTag::GroupTimer { group, gen } => self.on_timer(core, group, gen),
            McastTag::BarrierTimer { group, round } => {
                self.on_barrier_timer(core, group, round);
            }
            t => unreachable!("unexpected timer {t:?}"),
        }
    }

    fn resources_available(&mut self, core: &mut NicCore<Self>) {
        // Retry stalled forward chains first (they hold receive buffers),
        // then retransmissions, then fresh root packets.
        while let Some(&(group, seq)) = self.fwd_stalled.front() {
            if !core.take_send_token() {
                core.signal_resource_wait();
                break;
            }
            self.fwd_stalled.pop_front();
            self.launch_forward(core, group, seq);
        }
        self.pump_single(core);
        self.pump_sdma(core);
    }

    fn flow_of_request(&self, node: u32, req: &McastRequest) -> FlowId {
        match req {
            // The root's own work on a multicast (request processing, the
            // one-time SDMA) belongs to its self-flow `(root, tag, root)`;
            // per-destination flows link back to it causally.
            McastRequest::Send { tag, .. } => FlowId::new(node, flow_tag(*tag), node),
            _ => FlowId::NONE,
        }
    }

    fn flow_of_tag(&self, node: u32, tag: &McastTag) -> FlowId {
        match tag {
            // Work on this node's own copy of the message.
            McastTag::SdmaDone { group, seq } | McastTag::RdmaDone { group, seq, .. } => {
                match self.flow_parts(*group, *seq) {
                    Some((root, t)) => FlowId::new(root, t, node),
                    None => FlowId::NONE,
                }
            }
            // Replica chains: the hop belongs to the child being fed.
            McastTag::Replica { group, seq, idx } | McastTag::FwdReplica { group, seq, idx } => {
                let child = self
                    .groups
                    .get(group)
                    .and_then(|g| g.children.get(*idx))
                    .copied();
                match (self.flow_parts(*group, *seq), child) {
                    (Some((root, t)), Some(child)) => FlowId::new(root, t, child.0),
                    _ => FlowId::NONE,
                }
            }
            // Selective retransmissions target one child explicitly.
            McastTag::RetxDma { group, seq, child }
            | McastTag::SingleSent {
                group, seq, child, ..
            }
            | McastTag::PerDestProc { group, seq, child } => {
                match self.flow_parts(*group, *seq) {
                    Some((root, t)) => FlowId::new(root, t, child.0),
                    None => FlowId::NONE,
                }
            }
            McastTag::GroupTimer { .. } | McastTag::BarrierTimer { .. } => FlowId::NONE,
        }
    }
}
