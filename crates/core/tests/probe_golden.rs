//! Golden test for the `gm::trace` → probe-layer port.
//!
//! PR 3 replaced the bespoke protocol trace with `gm_sim::probe`. The files
//! under `tests/golden/` hold the *pre-port* trace output for two Figure-2
//! runs, captured before the old module was deleted. Rendering the probe
//! event stream back into the legacy line format must reproduce them
//! byte-for-byte — proving the port lost no event, reordered nothing, and
//! shifted no timestamp — and must be identical across seeded runs.

use gm_sim::probe::{Phase, ProbeConfig, ProbeEvent};
use nic_mcast::{build_cluster, McastMode, McastRun, TreeShape};

/// Render a probe event in the legacy `gm::trace` debug format, or `None`
/// for event kinds the old trace did not record (host busy spans, wire
/// flight, stalls, drops, timers).
fn legacy_line(e: &ProbeEvent) -> Option<String> {
    let what = match (e.id.name, e.phase) {
        ("host_call", Phase::Mark) => format!("HostCall({:?})", e.label),
        ("lanai", Phase::Begin) => format!("LanaiStart({:?})", e.label),
        ("lanai", Phase::End) => format!("LanaiEnd({:?})", e.label),
        ("pci_dma", Phase::Begin) => format!("DmaStart {{ ns: {} }}", e.a),
        ("pci_dma", Phase::End) => "DmaEnd".to_string(),
        ("wire_tx", Phase::Begin) => {
            format!("TxStart {{ dst: NodeId({}), bytes: {} }}", e.a, e.b)
        }
        ("wire_tx", Phase::End) => "TxEnd".to_string(),
        ("rx_arrive", Phase::Mark) => format!("RxArrive {{ src: NodeId({}) }}", e.a),
        ("notice", Phase::Mark) => format!("Notice({:?})", e.label),
        _ => return None,
    };
    Some(format!("{} n{} {}", e.time.as_nanos(), e.node, what))
}

fn rendered_trace(shape: TreeShape) -> String {
    let mut run = McastRun::new(5, 1024, McastMode::NicBased, shape);
    run.warmup = 0;
    run.iters = 1;
    let (mut cluster, _shared) = build_cluster(&run);
    cluster.set_probes(ProbeConfig::spans());
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    let mut out = String::new();
    for e in eng.world().probe.iter() {
        if let Some(line) = legacy_line(e) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn flat_multisend_timeline_matches_the_pre_port_trace() {
    let got = rendered_trace(TreeShape::Flat);
    let want = include_str!("golden/golden_fig2_flat_nic.txt");
    assert_eq!(got, want, "probe port changed the flat multisend timeline");
}

#[test]
fn chain_forwarding_timeline_matches_the_pre_port_trace() {
    let got = rendered_trace(TreeShape::Chain);
    let want = include_str!("golden/golden_fig2_chain_nic.txt");
    assert_eq!(got, want, "probe port changed the chain forwarding timeline");
}

#[test]
fn timelines_are_byte_identical_across_runs() {
    assert_eq!(rendered_trace(TreeShape::Flat), rendered_trace(TreeShape::Flat));
    assert_eq!(rendered_trace(TreeShape::Chain), rendered_trace(TreeShape::Chain));
}
