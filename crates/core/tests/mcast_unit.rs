//! Direct unit tests of the multicast firmware: `McastExt` driven through a
//! bare `NicCore`, no event engine — each test hand-plays the cluster's
//! role and inspects the NIC's outgoing intents.

use bytes::Bytes;
use gm::{GmParams, NicCore, NicExtension, Notice, TxJob};
use myrinet::{GroupId, NodeId, Packet, PacketKind, PortId};
use nic_mcast::{McastExt, McastNotice, McastRequest};

const PORT: PortId = PortId(0);
const G: GroupId = GroupId(1);

fn nic(node: u32) -> (NicCore<McastExt>, McastExt) {
    (
        NicCore::new(NodeId(node), GmParams::default()),
        McastExt::new(),
    )
}

fn drain_lanai(n: &mut NicCore<McastExt>, ext: &mut McastExt) {
    while let Some((_cost, work)) = n.lanai_start() {
        n.lanai_finish(work, ext);
    }
}

/// Run the LANai + PCI until quiescent, collecting transmitted packets and
/// firing descriptor callbacks like the transmit engine would.
fn pump_all(n: &mut NicCore<McastExt>, ext: &mut McastExt) -> Vec<Packet> {
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        while let Some((_cost, work)) = n.lanai_start() {
            n.lanai_finish(work, ext);
            progressed = true;
        }
        while let Some((_d, job)) = n.pci_start() {
            n.pci_finish(job, ext);
            progressed = true;
        }
        while let Some(TxJob { pkt, cb }) = n.tx_start() {
            out.push(pkt);
            n.tx_drained(cb);
            progressed = true;
        }
        if !progressed {
            return out;
        }
    }
}

fn install_root(n: &mut NicCore<McastExt>, ext: &mut McastExt, children: &[u32]) {
    let req = McastRequest::CreateGroup {
        group: G,
        port: PORT,
        root: NodeId(0),
        parent: None,
        children: children.iter().map(|&c| NodeId(c)).collect(),
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    drain_lanai(n, ext);
}

fn install_member(
    n: &mut NicCore<McastExt>,
    ext: &mut McastExt,
    parent: u32,
    children: &[u32],
) {
    n.host_provide_recv(PORT, 64);
    let req = McastRequest::CreateGroup {
        group: G,
        port: PORT,
        root: NodeId(0),
        parent: Some(NodeId(parent)),
        children: children.iter().map(|&c| NodeId(c)).collect(),
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    drain_lanai(n, ext);
}

#[test]
fn group_install_notifies_ready() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[1, 2]);
    let notices = n.drain_notices();
    assert!(matches!(
        notices.as_slice(),
        [Notice::Ext(McastNotice::GroupReady { group: G })]
    ));
    assert_eq!(ext.group_count(), 1);
}

#[test]
fn multisend_emits_one_replica_per_child_in_order() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[1, 2, 3]);
    n.drain_notices();
    let req = McastRequest::Send {
        group: G,
        data: Bytes::from_static(b"hello"),
        tag: 9,
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    let pkts = pump_all(&mut n, &mut ext);
    let dsts: Vec<u32> = pkts.iter().map(|p| p.dst.0).collect();
    assert_eq!(dsts, vec![1, 2, 3], "replica chain visits children in order");
    for p in &pkts {
        let PacketKind::Mcast { seq, tag, msg_len, .. } = p.kind else {
            panic!("non-mcast packet {:?}", p.kind)
        };
        assert_eq!((seq, tag, msg_len), (0, 9, 5));
        assert_eq!(&p.payload[..], b"hello");
    }
    // One outstanding record until the children ack.
    assert_eq!(ext.outstanding(G), 1);
}

#[test]
fn acks_clear_records_only_when_all_children_acked() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[1, 2]);
    n.drain_notices();
    let req = McastRequest::Send {
        group: G,
        data: Bytes::from_static(b"x"),
        tag: 4,
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    pump_all(&mut n, &mut ext);

    n.packet_arrived(Packet::mcast_ack(NodeId(1), NodeId(0), G, 0));
    drain_lanai(&mut n, &mut ext);
    assert_eq!(ext.outstanding(G), 1, "one child acked is not enough");
    assert!(n.drain_notices().is_empty());

    n.packet_arrived(Packet::mcast_ack(NodeId(2), NodeId(0), G, 0));
    drain_lanai(&mut n, &mut ext);
    assert_eq!(ext.outstanding(G), 0);
    let notices = n.drain_notices();
    assert!(matches!(
        notices.as_slice(),
        [Notice::Ext(McastNotice::SendDone { group: G, tag: 4 })]
    ));
}

#[test]
fn forwarder_relays_before_any_host_interaction() {
    // Node 1: parent 0, child 2. Feed it a multicast packet and check the
    // forwarded replica leaves before any host notice exists.
    let (mut n, mut ext) = nic(1);
    install_member(&mut n, &mut ext, 0, &[2]);
    n.drain_notices();
    let pkt = Packet {
        src: NodeId(0),
        dst: NodeId(1),
        kind: PacketKind::Mcast {
            group: G,
            seq: 0,
            offset: 0,
            msg_len: 3,
            tag: 7,
            root: NodeId(0),
        },
        payload: Bytes::from_static(b"abc"),
    };
    n.packet_arrived(pkt);
    drain_lanai(&mut n, &mut ext);
    // Before any DMA completes, the forward and the ack are already queued.
    let mut wire = Vec::new();
    while let Some(TxJob { pkt, cb }) = n.tx_start() {
        wire.push(pkt);
        n.tx_drained(cb);
    }
    assert_eq!(wire.len(), 2);
    assert!(
        matches!(wire[0].kind, PacketKind::Mcast { seq: 0, .. }) && wire[0].dst == NodeId(2),
        "forward first: {:?}",
        wire[0].kind
    );
    assert!(matches!(wire[1].kind, PacketKind::McastAck { seq: 0, .. }));
    assert!(
        n.drain_notices().is_empty(),
        "host not involved in forwarding"
    );
    // Only after the RDMA completes does the host hear about the message.
    let pkts = pump_all(&mut n, &mut ext);
    assert!(pkts.is_empty());
    let notices = n.drain_notices();
    assert!(
        matches!(&notices[..], [Notice::Recv { tag: 7, data, .. }] if &data[..] == b"abc"),
        "got {notices:?}"
    );
}

#[test]
fn out_of_order_multicast_packet_is_dropped_and_reacked() {
    let (mut n, mut ext) = nic(1);
    install_member(&mut n, &mut ext, 0, &[]);
    n.drain_notices();
    let mk = |seq: u64| Packet {
        src: NodeId(0),
        dst: NodeId(1),
        kind: PacketKind::Mcast {
            group: G,
            seq,
            offset: 0,
            msg_len: 1,
            tag: seq,
            root: NodeId(0),
        },
        payload: Bytes::from_static(b"z"),
    };
    // seq 2 before 0/1: dropped, no ack possible yet (nothing in order).
    n.packet_arrived(mk(2));
    drain_lanai(&mut n, &mut ext);
    assert_eq!(n.counters.get("mcast_out_of_order"), 1);
    assert!(n.tx_start().is_none());
    // In-order 0 accepted, acked.
    n.packet_arrived(mk(0));
    drain_lanai(&mut n, &mut ext);
    let TxJob { pkt, cb } = n.tx_start().expect("ack");
    assert!(matches!(pkt.kind, PacketKind::McastAck { seq: 0, .. }));
    n.tx_drained(cb);
    // A late duplicate of 0 re-acks cumulatively.
    n.packet_arrived(mk(0));
    drain_lanai(&mut n, &mut ext);
    let TxJob { pkt, cb } = n.tx_start().expect("re-ack");
    assert!(matches!(pkt.kind, PacketKind::McastAck { seq: 0, .. }));
    n.tx_drained(cb);
    assert_eq!(n.counters.get("mcast_out_of_order"), 2);
}

#[test]
fn timeout_retransmits_only_to_unacked_children() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[1, 2, 3]);
    n.drain_notices();
    let req = McastRequest::Send {
        group: G,
        data: Bytes::from_static(b"pkt"),
        tag: 0,
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    pump_all(&mut n, &mut ext);
    let timers = n.drain_timer_reqs();
    assert!(!timers.is_empty(), "group timer armed after the chain");

    // Children 1 and 3 ack; child 2 stays silent.
    n.packet_arrived(Packet::mcast_ack(NodeId(1), NodeId(0), G, 0));
    n.packet_arrived(Packet::mcast_ack(NodeId(3), NodeId(0), G, 0));
    drain_lanai(&mut n, &mut ext);

    // Fire the timer well past the timeout.
    let due = n.params().timeout * 3;
    n.set_now(gm_sim::SimTime::ZERO + due);
    for (_delay, tag) in timers {
        n.timer_fired(tag, &mut ext);
    }
    let pkts = pump_all(&mut n, &mut ext);
    assert_eq!(pkts.len(), 1, "exactly one retransmission: {pkts:?}");
    assert_eq!(pkts[0].dst, NodeId(2), "only the silent child");
    assert_eq!(n.counters.get("mcast_retransmissions"), 1);
}

#[test]
fn unknown_group_packets_are_counted_and_dropped() {
    let (mut n, mut ext) = nic(1);
    n.host_provide_recv(PORT, 4);
    let pkt = Packet {
        src: NodeId(0),
        dst: NodeId(1),
        kind: PacketKind::Mcast {
            group: GroupId(99),
            seq: 0,
            offset: 0,
            msg_len: 1,
            tag: 0,
            root: NodeId(0),
        },
        payload: Bytes::from_static(b"?"),
    };
    n.packet_arrived(pkt);
    drain_lanai(&mut n, &mut ext);
    assert_eq!(n.counters.get("mcast_unknown_group"), 1);
    assert!(n.tx_start().is_none(), "no ack for unknown groups");
    assert_eq!(n.recv_buffers_free(), n.params().recv_buffers);
}

#[test]
fn degenerate_group_with_no_children_completes_immediately() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[]);
    n.drain_notices();
    let req = McastRequest::Send {
        group: G,
        data: Bytes::from_static(b"solo"),
        tag: 1,
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    drain_lanai(&mut n, &mut ext);
    let notices = n.drain_notices();
    assert!(matches!(
        notices.as_slice(),
        [Notice::Ext(McastNotice::SendDone { tag: 1, .. })]
    ));
}

#[test]
fn multipacket_message_reassembles_at_leaf() {
    let (mut n, mut ext) = nic(1);
    install_member(&mut n, &mut ext, 0, &[]);
    n.drain_notices();
    let payload: Vec<u8> = (0..6000u32).map(|i| (i % 251) as u8).collect();
    for (i, chunk) in payload.chunks(4096).enumerate() {
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Mcast {
                group: G,
                seq: i as u64,
                offset: (i * 4096) as u32,
                msg_len: 6000,
                tag: 5,
                root: NodeId(0),
            },
            payload: Bytes::copy_from_slice(chunk),
        };
        n.packet_arrived(pkt);
    }
    let _ = pump_all(&mut n, &mut ext);
    let notices = n.drain_notices();
    let delivered: Vec<_> = notices
        .iter()
        .filter_map(|no| match no {
            Notice::Recv { tag, data, .. } => Some((*tag, data.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].0, 5);
    assert_eq!(&delivered[0].1[..], &payload[..]);
}

#[test]
fn group_reinstall_replaces_membership() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[1, 2]);
    n.drain_notices();
    install_root(&mut n, &mut ext, &[3]);
    n.drain_notices();
    let req = McastRequest::Send {
        group: G,
        data: Bytes::from_static(b"v2"),
        tag: 0,
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    let pkts = pump_all(&mut n, &mut ext);
    assert_eq!(pkts.len(), 1);
    assert_eq!(pkts[0].dst, NodeId(3), "new membership in force");
    assert_eq!(ext.group_count(), 1);
}

#[test]
fn work_items_cost_what_the_config_says() {
    let (n, ext) = nic(0);
    let p = n.params();
    let create = McastRequest::CreateGroup {
        group: G,
        port: PORT,
        root: NodeId(0),
        parent: None,
        children: vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
    };
    assert_eq!(
        ext.request_cost(&create, p),
        p.group_install_base + p.group_install_per_child * 4
    );
    let send = McastRequest::Send {
        group: G,
        data: Bytes::new(),
        tag: 0,
    };
    assert_eq!(ext.request_cost(&send, p), p.ext_req_proc);
}

#[test]
fn replica_chain_holds_exactly_one_send_buffer() {
    let (mut n, mut ext) = nic(0);
    install_root(&mut n, &mut ext, &[1, 2, 3, 4, 5]);
    n.drain_notices();
    let req = McastRequest::Send {
        group: G,
        data: Bytes::from_static(b"buf"),
        tag: 0,
    };
    let cost = ext.request_cost(&req, n.params());
    n.host_ext_request(cost, req);
    drain_lanai(&mut n, &mut ext);
    let (_d, job) = n.pci_start().expect("sdma");
    n.pci_finish(job, &mut ext);
    let total = n.params().send_buffers;
    // Mid-chain: one buffer held across all five replicas.
    for expect_dst in 1..=5u32 {
        assert_eq!(n.send_buffers_free(), total - 1, "replica {expect_dst}");
        let TxJob { pkt, cb } = n.tx_start().expect("replica");
        assert_eq!(pkt.dst, NodeId(expect_dst));
        n.tx_drained(cb);
        drain_lanai(&mut n, &mut ext); // run the descriptor callback
    }
    assert_eq!(n.send_buffers_free(), total, "buffer released after chain");
}

mod policies {
    //! The ablation-policy code paths, pinned at the unit level.

    use super::*;
    use nic_mcast::{FwdTokenPolicy, McastConfig, MultisendImpl, RetxBufferPolicy};

    fn nic_with(node: u32, config: McastConfig) -> (NicCore<McastExt>, McastExt) {
        (
            NicCore::new(NodeId(node), GmParams::default()),
            McastExt::with_config(config),
        )
    }

    #[test]
    fn per_dest_token_impl_pays_processing_per_destination() {
        let cfg = McastConfig {
            multisend: MultisendImpl::PerDestToken,
            ..McastConfig::default()
        };
        let (mut n, mut ext) = nic_with(0, cfg);
        install_root(&mut n, &mut ext, &[1, 2, 3]);
        n.drain_notices();
        let req = McastRequest::Send {
            group: G,
            data: Bytes::from_static(b"pd"),
            tag: 0,
        };
        let cost = ext.request_cost(&req, n.params());
        n.host_ext_request(cost, req);
        // The request processing itself, then one token-processing work
        // item per destination: 4 LANai work items in total, each costed.
        let mut costs = Vec::new();
        loop {
            // Interleave DMA/tx completion so the pipeline can progress.
            while let Some((_d, job)) = n.pci_start() {
                n.pci_finish(job, &mut ext);
            }
            while let Some(TxJob { cb, .. }) = n.tx_start() {
                n.tx_drained(cb);
            }
            match n.lanai_start() {
                Some((c, work)) => {
                    costs.push(c);
                    n.lanai_finish(work, &mut ext);
                }
                None => break,
            }
        }
        let token_procs = costs
            .iter()
            .filter(|&&c| c == n.params().send_token_proc)
            .count();
        // The Send request itself costs ext_req_proc (same magnitude as a
        // token processing) plus one token-processing item per destination.
        assert_eq!(token_procs, 4, "request + one token proc per destination");
    }

    #[test]
    fn free_pool_forwarding_consumes_and_returns_send_tokens() {
        let cfg = McastConfig {
            fwd_token: FwdTokenPolicy::FreePool,
            ..McastConfig::default()
        };
        let (mut n, mut ext) = nic_with(1, cfg);
        install_member(&mut n, &mut ext, 0, &[2]);
        n.drain_notices();
        let before = {
            // Fill-count probe: take everything, count, put back.
            let mut k = 0;
            while n.take_send_token() {
                k += 1;
            }
            for _ in 0..k {
                n.return_send_token();
            }
            k
        };
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Mcast {
                group: G,
                seq: 0,
                offset: 0,
                msg_len: 1,
                tag: 0,
                root: NodeId(0),
            },
            payload: Bytes::from_static(b"x"),
        };
        n.packet_arrived(pkt);
        drain_lanai(&mut n, &mut ext);
        // While the record is outstanding the pool is one short.
        let mut during = 0;
        while n.take_send_token() {
            during += 1;
        }
        for _ in 0..during {
            n.return_send_token();
        }
        assert_eq!(during, before - 1, "forwarding borrowed a pool token");
        // Drain forwarding + rdma, then ack from the child: token returns.
        let _ = pump_all(&mut n, &mut ext);
        n.packet_arrived(Packet::mcast_ack(NodeId(2), NodeId(1), G, 0));
        drain_lanai(&mut n, &mut ext);
        let mut after = 0;
        while n.take_send_token() {
            after += 1;
        }
        for _ in 0..after {
            n.return_send_token();
        }
        assert_eq!(after, before, "token returned on full acknowledgment");
    }

    #[test]
    fn hold_sram_keeps_the_receive_buffer_until_children_ack() {
        let cfg = McastConfig {
            retx_buffer: RetxBufferPolicy::HoldSram,
            ..McastConfig::default()
        };
        let (mut n, mut ext) = nic_with(1, cfg);
        install_member(&mut n, &mut ext, 0, &[2]);
        n.drain_notices();
        let total = n.params().recv_buffers;
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Mcast {
                group: G,
                seq: 0,
                offset: 0,
                msg_len: 1,
                tag: 0,
                root: NodeId(0),
            },
            payload: Bytes::from_static(b"h"),
        };
        n.packet_arrived(pkt);
        let _ = pump_all(&mut n, &mut ext);
        // Forward chain done, RDMA done — but the buffer is still pinned.
        assert_eq!(
            n.recv_buffers_free(),
            total - 1,
            "hold-SRAM pins the buffer past forwarding"
        );
        n.packet_arrived(Packet::mcast_ack(NodeId(2), NodeId(1), G, 0));
        drain_lanai(&mut n, &mut ext);
        assert_eq!(n.recv_buffers_free(), total, "released on ack");
    }

    #[test]
    fn host_memory_policy_frees_the_buffer_at_forward_completion() {
        let (mut n, mut ext) = nic(1);
        install_member(&mut n, &mut ext, 0, &[2]);
        n.drain_notices();
        let total = n.params().recv_buffers;
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Mcast {
                group: G,
                seq: 0,
                offset: 0,
                msg_len: 1,
                tag: 0,
                root: NodeId(0),
            },
            payload: Bytes::from_static(b"m"),
        };
        n.packet_arrived(pkt);
        let _ = pump_all(&mut n, &mut ext);
        // No ack yet, but the buffer is already back (retransmission would
        // re-download from host memory).
        assert_eq!(n.recv_buffers_free(), total);
        assert_eq!(ext.outstanding(G), 1, "record still awaits the ack");
    }
}

#[test]
fn zero_length_multicast_is_delivered() {
    let (mut n, mut ext) = nic(1);
    install_member(&mut n, &mut ext, 0, &[]);
    n.drain_notices();
    let pkt = Packet {
        src: NodeId(0),
        dst: NodeId(1),
        kind: PacketKind::Mcast {
            group: G,
            seq: 0,
            offset: 0,
            msg_len: 0,
            tag: 77,
            root: NodeId(0),
        },
        payload: Bytes::new(),
    };
    n.packet_arrived(pkt);
    let _ = pump_all(&mut n, &mut ext);
    let notices = n.drain_notices();
    assert!(
        matches!(&notices[..], [Notice::Recv { tag: 77, data, .. }] if data.is_empty()),
        "got {notices:?}"
    );
}
