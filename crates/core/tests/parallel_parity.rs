//! Differential suite for the sharded engine: a run split across shards
//! must be **bit-for-bit identical** to the sequential reference — same
//! latencies, same counters, same probe event stream, same iteration
//! windows. This is the contract that makes `--shards`/`MYRI_SIM_SHARDS`
//! a pure wall-clock knob.
//!
//! The test container may be single-core; `MYRI_SIM_FORCE_THREADS=1` is
//! set here so the sharded runs exercise the real scoped-thread window
//! loop, not just the caller-mode fallback (caller-mode parity is pinned
//! separately in `determinism.rs`, which runs in its own process without
//! the flag).

use gm_sim::probe::ProbeConfig;
use gm_sim::{FlowGraph, SeriesConfig, SimTime};
use myrinet::{DropRule, FaultPlan, NodeId};
use nic_mcast::{execute_observed, InstrumentedOutput, McastMode, McastRun, TreeShape};
use proptest::prelude::*;

/// Latch the threaded window loop on (checked once per process, so set it
/// before the first sharded run).
fn force_threads() {
    std::env::set_var("MYRI_SIM_FORCE_THREADS", "1");
}

fn run_with_shards(run: &McastRun, shards: u32, probes: ProbeConfig) -> InstrumentedOutput {
    let mut r = run.clone();
    r.shards = shards;
    execute_observed(&r, probes, SeriesConfig::on())
}

/// The mode-independent slice of the gauge series: everything except
/// `exec_*` gauges, which describe the execution itself (per-shard queue
/// depths) and legitimately differ. `seq` is excluded too — renumbering
/// interleaves differently once exec points are removed.
fn sim_series(o: &InstrumentedOutput) -> Vec<(SimTime, u32, &'static str, u64)> {
    o.series
        .iter()
        .filter(|p| !p.gauge.starts_with("exec_"))
        .map(|p| (p.time, p.node, p.gauge, p.value))
        .collect()
}

/// Every observable of the two runs must match exactly (floats compared
/// by bit pattern — "close" is not good enough).
fn assert_bit_identical(run: &McastRun, shards: u32) {
    let a = run_with_shards(run, 1, ProbeConfig::spans());
    let b = run_with_shards(run, shards, ProbeConfig::spans());
    assert_eq!(a.output.latency.count(), b.output.latency.count(), "iteration count");
    assert_eq!(
        a.output.latency.mean().to_bits(),
        b.output.latency.mean().to_bits(),
        "mean latency: seq {} vs sharded {}",
        a.output.latency.mean(),
        b.output.latency.mean()
    );
    assert_eq!(a.output.latency_p50.to_bits(), b.output.latency_p50.to_bits(), "p50");
    assert_eq!(a.output.latency_p99.to_bits(), b.output.latency_p99.to_bits(), "p99");
    assert_eq!(a.output.retransmissions, b.output.retransmissions, "retransmissions");
    assert_eq!(a.output.end_time, b.output.end_time, "end time");
    assert_eq!(a.output.events, b.output.events, "dispatched event count");
    assert_eq!(
        a.output.root_link_utilization.to_bits(),
        b.output.root_link_utilization.to_bits(),
        "root link utilization"
    );
    // `parallel.*` is execution diagnostics, present only on sharded runs.
    assert_eq!(
        a.metrics.without_layer("parallel"),
        b.metrics.without_layer("parallel"),
        "counter snapshot"
    );
    assert_eq!(a.windows, b.windows, "iteration windows");
    let (pa, pb) = (a.probe.to_vec(), b.probe.to_vec());
    assert_eq!(pa.len(), pb.len(), "probe stream length");
    for (i, (x, y)) in pa.iter().zip(pb.iter()).enumerate() {
        assert_eq!(x, y, "probe streams diverge at event {i}");
    }
    assert_eq!(sim_series(&a), sim_series(&b), "gauge time-series");

    // Lineage parity: the causal structure reconstructed from both streams
    // must agree flow-for-flow, and the critical path of every measured
    // window must be identical (same hops, same buckets, same signature).
    let (ga, gb) = (FlowGraph::build(&pa), FlowGraph::build(&pb));
    assert_eq!(ga.validate(), Vec::<String>::new(), "sequential flow graph");
    assert_eq!(gb.validate(), Vec::<String>::new(), "sharded flow graph");
    assert_eq!(
        ga.delivered(),
        gb.delivered(),
        "delivered flow sets diverge"
    );
    for f in ga.delivered() {
        assert_eq!(ga.lineage(f), gb.lineage(f), "lineage of {f}");
    }
    for (i, w) in a.windows.iter().enumerate() {
        let ca = ga.critical_path(&pa, *w);
        let cb = gb.critical_path(&pb, *w);
        assert_eq!(ca, cb, "critical path of window {i}");
    }
}

#[test]
fn crossbar_nic_based_matches_across_shard_counts() {
    force_threads();
    let mut run = McastRun::new(8, 1024, McastMode::NicBased, TreeShape::Binomial);
    run.warmup = 2;
    run.iters = 4;
    for shards in [2, 4, 8] {
        assert_bit_identical(&run, shards);
    }
}

#[test]
fn clos_topology_shards_along_leaves() {
    force_threads();
    // 32 nodes is a two-stage Clos: partitions must align on leaf switches
    // and the lookahead doubles. Both are exercised here.
    let mut run = McastRun::new(32, 512, McastMode::NicBased, TreeShape::KAry(4));
    run.warmup = 1;
    run.iters = 3;
    assert_bit_identical(&run, 4);
}

#[test]
fn lossy_runs_match_because_fault_draws_are_per_packet() {
    force_threads();
    let mut run = McastRun::new(8, 512, McastMode::NicBased, TreeShape::Binomial);
    run.warmup = 1;
    run.iters = 6;
    run.faults = FaultPlan::with_loss(0.05);
    assert_bit_identical(&run, 4);
}

#[test]
fn targeted_drop_rules_fall_back_to_sequential() {
    force_threads();
    // Rules carry mutable count-down state, so sharding is infeasible; the
    // run must still complete (sequentially) and agree with shards=1.
    let mut run = McastRun::new(6, 256, McastMode::NicBased, TreeShape::Binomial);
    run.warmup = 1;
    run.iters = 2;
    run.faults = FaultPlan {
        rules: vec![DropRule {
            dst: Some(NodeId(3)),
            data: Some(true),
            count: 2,
            ..DropRule::default()
        }],
        ..FaultPlan::default()
    };
    assert_bit_identical(&run, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_equals_sequential(
        n in 3u32..13,
        size in 1usize..4096,
        shards in 2u32..5,
        shape_k in 1u32..4,
        host_based in any::<bool>(),
        loss_on in any::<bool>(),
        seed in any::<u64>(),
    ) {
        force_threads();
        let mode = if host_based { McastMode::HostBased } else { McastMode::NicBased };
        let mut run = McastRun::new(n, size, mode, TreeShape::KAry(shape_k));
        run.warmup = 1;
        run.iters = 3;
        run.seed = seed;
        if loss_on {
            run.faults = FaultPlan::with_loss(0.03);
        }
        assert_bit_identical(&run, shards);
    }
}
