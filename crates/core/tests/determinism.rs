//! Regression test for bit-for-bit run determinism.
//!
//! The simulator's whole measurement methodology assumes identical inputs
//! produce identical event histories. PR 2 moved all protocol state off
//! default-hasher maps (randomized iteration order) onto `BTreeMap`; this
//! test pins that property by executing the same workload twice and
//! comparing the full protocol traces event-for-event.

use gm_sim::probe::{ProbeConfig, ProbeEvent};
use nic_mcast::{build_cluster, McastMode, McastRun, TreeShape};

/// Run `run` to completion with probes on and return the event history.
fn traced_events(run: &McastRun) -> Vec<ProbeEvent> {
    let (mut cluster, _shared) = build_cluster(run);
    cluster.set_probes(ProbeConfig::spans());
    let mut eng = cluster.into_engine();
    let outcome = eng.run_to_idle();
    assert_eq!(outcome, gm_sim::RunOutcome::Idle, "run did not converge");
    eng.world().probe.to_vec()
}

fn assert_deterministic(run: &McastRun) {
    let a = traced_events(run);
    let b = traced_events(run);
    assert!(!a.is_empty(), "trace should record protocol activity");
    assert_eq!(
        a.len(),
        b.len(),
        "identical runs produced different trace lengths"
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x, y, "traces diverge at event {i}");
    }
}

#[test]
fn nic_based_runs_are_bit_for_bit_identical() {
    let mut run = McastRun::new(8, 1024, McastMode::NicBased, TreeShape::KAry(2));
    run.warmup = 2;
    run.iters = 3;
    assert_deterministic(&run);
}

#[test]
fn host_based_runs_are_bit_for_bit_identical() {
    let mut run = McastRun::new(6, 256, McastMode::HostBased, TreeShape::Binomial);
    run.warmup = 1;
    run.iters = 2;
    assert_deterministic(&run);
}

#[test]
fn runs_with_faults_are_bit_for_bit_identical() {
    // Fault draws come from the seeded RNG, so even lossy runs must replay
    // exactly (Go-Back-N retransmissions included).
    let mut run = McastRun::new(8, 2048, McastMode::NicBased, TreeShape::KAry(2));
    run.warmup = 1;
    run.iters = 3;
    run.faults.drop_prob = 0.05;
    assert_deterministic(&run);
}

#[test]
fn sharded_caller_mode_is_deterministic_and_matches_sequential() {
    // This binary does not set MYRI_SIM_FORCE_THREADS, so on a single-core
    // host the sharded run exercises the caller-mode window protocol; the
    // threaded loop is pinned in `parallel_parity.rs`. Either way the
    // canonical Report observables must agree with the sequential run.
    use nic_mcast::execute_instrumented;

    let mut run = McastRun::new(8, 1024, McastMode::NicBased, TreeShape::Binomial);
    run.warmup = 1;
    run.iters = 3;
    run.faults.drop_prob = 0.02;
    run.shards = 1;
    let seq = execute_instrumented(&run, ProbeConfig::spans());
    run.shards = 4;
    let par1 = execute_instrumented(&run, ProbeConfig::spans());
    let par2 = execute_instrumented(&run, ProbeConfig::spans());
    for par in [&par1, &par2] {
        assert_eq!(seq.output.events, par.output.events);
        assert_eq!(seq.output.end_time, par.output.end_time);
        assert_eq!(
            seq.output.latency.mean().to_bits(),
            par.output.latency.mean().to_bits()
        );
        // `parallel.*` is execution diagnostics (only present on sharded
        // runs); everything else must match the sequential run exactly.
        assert_eq!(seq.metrics, par.metrics.without_layer("parallel"));
        assert_eq!(seq.probe.to_vec(), par.probe.to_vec());
    }
}
