//! End-to-end acceptance tests for causal flow tracing: lineage
//! reconstruction and critical-path extraction over real protocol runs
//! (not synthetic streams — those live in `sim::critical_path`'s unit
//! tests).

use gm_sim::probe::{ProbeConfig, PKT_DROP};
use gm_sim::{FlowGraph, FlowId};
use myrinet::FaultPlan;
use nic_mcast::{execute_instrumented, McastMode, McastRun, TreeShape};

/// Collective-release flows (`BARRIER_TAG_BIT` folded onto tag bit 30 by
/// `gm::flow_tag`) deliver through extension notices, not app receives, so
/// they carry no `FLOW_DELIVERY` record.
fn is_data_flow(f: FlowId) -> bool {
    f.tag() & (1 << 30) == 0
}

/// The paper's headline configuration: 16 nodes, 4 KB, NIC-based multicast.
/// Every measured window's critical path must decompose into buckets that
/// sum *exactly* to the window length (the iteration's completion latency).
#[test]
fn nic_broadcast_16x4k_buckets_sum_to_completion_latency() {
    let mut run = McastRun::new(16, 4096, McastMode::NicBased, TreeShape::KAry(2));
    run.warmup = 1;
    run.iters = 4;
    let out = execute_instrumented(&run, ProbeConfig::spans());
    assert_eq!(out.windows.len(), 4);
    let events = out.probe.to_vec();
    let graph = FlowGraph::build(&events);
    assert_eq!(graph.validate(), Vec::<String>::new());
    for (i, &(ws, we)) in out.windows.iter().enumerate() {
        let cp = graph
            .critical_path(&events, (ws, we))
            .unwrap_or_else(|| panic!("window {i} has no delivery"));
        assert_eq!(cp.total, we.saturating_since(ws), "window {i} total");
        assert_eq!(cp.bucket_sum(), cp.total, "window {i} buckets must sum");
        assert!(
            cp.steps.len() >= 2,
            "window {i}: a 16-node collective path has multiple hops, got {:?}",
            cp.steps
        );
        // The path must explain the window with real protocol work, not
        // just wait time.
        let wait = cp
            .buckets
            .iter()
            .find(|(k, _)| k == "wait")
            .map(|&(_, d)| d)
            .unwrap_or_default();
        assert!(wait < cp.total, "window {i} is pure wait: {:?}", cp.buckets);
    }
}

/// Under loss, Go-Back-N retransmits dropped multicast packets from the
/// NIC; the retransmitted hop keeps its `FlowId`, so the flow still
/// reaches delivery and its lineage is complete — the drop shows up as
/// extra records on the same hop, not as a broken chain.
#[test]
fn lossy_go_back_n_keeps_retransmitted_hops_in_lineage() {
    let mut run = McastRun::new(8, 2048, McastMode::NicBased, TreeShape::KAry(2));
    run.warmup = 1;
    run.iters = 6;
    run.faults = FaultPlan::with_loss(0.08);
    let out = execute_instrumented(&run, ProbeConfig::spans());
    assert!(
        out.output.retransmissions > 0,
        "loss plan must actually trigger Go-Back-N"
    );
    let events = out.probe.to_vec();
    let graph = FlowGraph::build(&events);
    assert_eq!(graph.validate(), Vec::<String>::new());

    // Every dropped *data* packet's flow must still be delivered, with the
    // retransmitted hop present in its own complete lineage.
    let dropped: Vec<FlowId> = events
        .iter()
        .filter(|e| e.id.name == PKT_DROP.name && e.flow.is_some() && is_data_flow(e.flow))
        .map(|e| e.flow)
        .collect();
    assert!(!dropped.is_empty(), "no data packets were dropped");
    let delivered = graph.delivered();
    for f in dropped {
        assert!(
            delivered.contains(&f),
            "dropped flow {f} never reached delivery"
        );
        let chain = graph.lineage(f);
        assert_eq!(*chain.last().expect("lineage nonempty"), f);
        assert!(
            chain.len() >= 2 || f.origin() == f.dest(),
            "delivered hop {f} should chain back to its sender, got {chain:?}"
        );
    }
}
