//! Tests of the NIC-level allreduce (the second future-work collective the
//! paper names: "for example, Allreduce and Alltoall broadcast"). Partial
//! values combine up the group tree inside firmware; the final result comes
//! back down as an 8-byte reliable multicast.

use std::sync::Mutex;
use std::sync::Arc;

use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::{SimDuration, SimTime};
use myrinet::{Fabric, FaultPlan, GroupId, NetParams, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, ReduceOp, SpanningTree, TreeShape};

const PORT: PortId = PortId(0);
const GID: GroupId = GroupId(2);

/// results[round][node] = (result, completion time).
type Results = Arc<Mutex<Vec<Vec<(u64, SimTime)>>>>;

struct ReduceApp {
    me: NodeId,
    tree: SpanningTree,
    op: ReduceOp,
    rounds: u32,
    round: u32,
    /// Per-round contribution of this node.
    contribute: fn(NodeId, u32) -> u64,
    stagger: fn(NodeId, u32) -> SimDuration,
    results: Results,
}

impl ReduceApp {
    fn enter(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let delay = (self.stagger)(self.me, self.round);
        if delay > SimDuration::ZERO {
            ctx.compute(delay, 0xA11);
        } else {
            self.post(ctx);
        }
    }
    fn post(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.ext(McastRequest::AllreduceEnter {
            group: GID,
            value: (self.contribute)(self.me, self.round),
            op: self.op,
            tag: self.round as u64,
        });
    }
}

impl HostApp<McastExt> for ReduceApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 8);
        ctx.ext(McastRequest::CreateGroup {
            group: GID,
            port: PORT,
            root: self.tree.root(),
            parent: self.tree.parent(self.me),
            children: self.tree.children(self.me).to_vec(),
        });
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => self.enter(ctx),
            Notice::ComputeDone { tag: 0xA11 } => self.post(ctx),
            Notice::Ext(McastNotice::AllreduceDone { result, tag, .. }) => {
                assert_eq!(tag, self.round as u64);
                self.results.lock().unwrap()[self.round as usize][self.me.idx()] =
                    (result, ctx.now());
                self.round += 1;
                if self.round < self.rounds {
                    self.enter(ctx);
                }
            }
            _ => {}
        }
    }
}

#[allow(clippy::type_complexity)]
fn run(
    n: u32,
    op: ReduceOp,
    rounds: u32,
    contribute: fn(NodeId, u32) -> u64,
    stagger: fn(NodeId, u32) -> SimDuration,
    faults: FaultPlan,
) -> Vec<Vec<(u64, SimTime)>> {
    let fabric = Fabric::with_config(Topology::for_nodes(n), NetParams::default(), faults, 31);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let results: Results = Arc::new(Mutex::new(vec![
        vec![(0, SimTime::ZERO); n as usize];
        rounds as usize
    ]));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..n {
        cluster.set_app(
            NodeId(i),
            Box::new(ReduceApp {
                me: NodeId(i),
                tree: tree.clone(),
                op,
                rounds,
                round: 0,
                contribute,
                stagger,
                results: results.clone(),
            }),
        );
    }
    let mut eng = cluster.into_engine();
    let outcome = eng.run(SimTime::MAX, 100_000_000);
    assert_eq!(outcome, gm_sim::RunOutcome::Idle, "allreduce hung");
    let r = results.lock().unwrap().clone();
    r
}

fn no_stagger(_: NodeId, _: u32) -> SimDuration {
    SimDuration::ZERO
}

#[test]
fn sum_over_every_cluster_size() {
    for n in [2u32, 3, 7, 8, 16] {
        let out = run(
            n,
            ReduceOp::Sum,
            3,
            |me, round| (me.0 as u64 + 1) * (round as u64 + 1),
            no_stagger,
            FaultPlan::none(),
        );
        for (round, row) in out.iter().enumerate() {
            let expect: u64 = (0..n as u64).map(|i| (i + 1) * (round as u64 + 1)).sum();
            for (i, &(result, t)) in row.iter().enumerate() {
                assert_eq!(result, expect, "n={n} round={round} node={i}");
                assert!(t > SimTime::ZERO);
            }
        }
    }
}

#[test]
fn min_and_max_reduce_correctly() {
    let contribute = |me: NodeId, _: u32| ((me.0 as u64 * 37) % 11) + 1;
    let values: Vec<u64> = (0..8u32).map(|i| ((i as u64 * 37) % 11) + 1).collect();
    let out = run(8, ReduceOp::Min, 1, contribute, no_stagger, FaultPlan::none());
    let expect_min = *values.iter().min().unwrap();
    assert!(out[0].iter().all(|&(r, _)| r == expect_min));

    let out = run(8, ReduceOp::Max, 1, contribute, no_stagger, FaultPlan::none());
    let expect_max = *values.iter().max().unwrap();
    assert!(out[0].iter().all(|&(r, _)| r == expect_max));
}

#[test]
fn per_round_values_do_not_leak_across_rounds() {
    // Each round contributes disjoint values; a stale child partial from
    // round r-1 would corrupt round r's sum.
    let out = run(
        8,
        ReduceOp::Sum,
        5,
        |me, round| 1000u64.pow(0) * (round as u64 * 100 + me.0 as u64),
        no_stagger,
        FaultPlan::none(),
    );
    for (round, row) in out.iter().enumerate() {
        let expect: u64 = (0..8u64).map(|i| round as u64 * 100 + i).sum();
        assert!(
            row.iter().all(|&(r, _)| r == expect),
            "round {round}: {row:?}"
        );
    }
}

#[test]
fn skewed_entries_still_reduce_exactly_once() {
    fn stagger(me: NodeId, round: u32) -> SimDuration {
        SimDuration::from_micros(((me.0 + round) % 5) as u64 * 120)
    }
    let out = run(
        16,
        ReduceOp::Sum,
        4,
        |me, round| me.0 as u64 + round as u64,
        stagger,
        FaultPlan::none(),
    );
    for (round, row) in out.iter().enumerate() {
        let expect: u64 = (0..16u64).map(|i| i + round as u64).sum();
        assert!(row.iter().all(|&(r, _)| r == expect), "round {round}");
    }
}

#[test]
fn allreduce_survives_packet_loss() {
    let out = run(
        8,
        ReduceOp::Sum,
        4,
        |me, _| me.0 as u64 + 1,
        no_stagger,
        FaultPlan::with_loss(0.03),
    );
    let expect: u64 = (1..=8).sum();
    for (round, row) in out.iter().enumerate() {
        assert!(
            row.iter().all(|&(r, _)| r == expect),
            "round {round}: {row:?}"
        );
    }
}

#[test]
fn no_member_finishes_before_the_last_entry() {
    // Allreduce is also a synchronization point: nobody can hold the
    // result before every contribution went in.
    fn stagger(me: NodeId, _: u32) -> SimDuration {
        if me.0 == 5 {
            SimDuration::from_micros(400)
        } else {
            SimDuration::ZERO
        }
    }
    let out = run(8, ReduceOp::Sum, 1, |me, _| me.0 as u64, stagger, FaultPlan::none());
    for &(_, t) in &out[0] {
        assert!(
            t >= SimTime::ZERO + SimDuration::from_micros(400),
            "someone exited before the straggler entered: {t}"
        );
    }
}
