//! Property-based tests of the NIC-based multicast: arbitrary membership,
//! tree shape, message schedules and loss rates — every destination must
//! receive every message exactly once, in order, bit-intact.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::{SimDuration, SimTime};
use myrinet::{Fabric, FaultPlan, GroupId, NetParams, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, PostalParams, SpanningTree, TreeShape};
use proptest::prelude::*;

const PORT: PortId = PortId(0);
const G: GroupId = GroupId(1);

type Log = Arc<Mutex<Vec<(u64, usize, u8)>>>;

struct Root {
    tree: SpanningTree,
    msgs: Vec<(usize, u8)>,
}

impl HostApp<McastExt> for Root {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.ext(McastRequest::CreateGroup {
            group: G,
            port: PORT,
            root: self.tree.root(),
            parent: None,
            children: self.tree.children(self.tree.root()).to_vec(),
        });
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if matches!(n, Notice::Ext(McastNotice::GroupReady { .. })) {
            for (i, &(len, fill)) in self.msgs.iter().enumerate() {
                ctx.ext(McastRequest::Send {
                    group: G,
                    data: Bytes::from(vec![fill; len]),
                    tag: i as u64,
                });
            }
        }
    }
}

struct Member {
    me: NodeId,
    tree: SpanningTree,
    log: Log,
}

impl HostApp<McastExt> for Member {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 64);
        ctx.ext(McastRequest::CreateGroup {
            group: G,
            port: PORT,
            root: self.tree.root(),
            parent: Some(self.tree.parent(self.me).expect("member")),
            children: self.tree.children(self.me).to_vec(),
        });
    }
    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        if let Notice::Recv { tag, data, .. } = n {
            ctx.provide_recv(PORT, 1);
            let fill = data.first().copied().unwrap_or(0);
            self.log.lock().unwrap().push((tag, data.len(), fill));
        }
    }
}

fn shapes() -> impl Strategy<Value = TreeShape> {
    prop_oneof![
        Just(TreeShape::Binomial),
        Just(TreeShape::Flat),
        Just(TreeShape::Chain),
        (1u32..4).prop_map(TreeShape::KAry),
        (1u64..20, 1u64..20).prop_map(|(l, t)| TreeShape::Postal(PostalParams::new(
            SimDuration::from_micros(l),
            SimDuration::from_micros(t),
        ))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn everyone_gets_everything_in_order(
        n in 2u32..12,
        shape in shapes(),
        msgs in proptest::collection::vec((1usize..9000, any::<u8>()), 1..10),
        loss in 0.0f64..0.15,
        seed in any::<u64>(),
    ) {
        let fabric = Fabric::with_config(
            Topology::for_nodes(n),
            NetParams::default(),
            FaultPlan::with_loss(loss),
            seed,
        );
        let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
        let tree = SpanningTree::build(NodeId(0), &dests, shape);
        let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
        cluster.set_app(
            NodeId(0),
            Box::new(Root {
                tree: tree.clone(),
                msgs: msgs.clone(),
            }),
        );
        let mut logs: Vec<Log> = Vec::new();
        for &d in &dests {
            let log: Log = Arc::default();
            logs.push(log.clone());
            cluster.set_app(
                d,
                Box::new(Member {
                    me: d,
                    tree: tree.clone(),
                    log,
                }),
            );
        }
        let mut eng = cluster.into_engine();
        let outcome = eng.run(SimTime::MAX, 200_000_000);
        prop_assert_eq!(outcome, gm_sim::RunOutcome::Idle, "multicast hung");
        for (di, log) in logs.iter().enumerate() {
            let got = log.lock().unwrap();
            prop_assert_eq!(got.len(), msgs.len(), "dest {} count", di + 1);
            for (k, &(tag, len, fill)) in got.iter().enumerate() {
                prop_assert_eq!(tag, k as u64, "dest {} order", di + 1);
                prop_assert_eq!(len, msgs[k].0);
                prop_assert_eq!(fill, msgs[k].1);
            }
        }
        // No packets left unaccounted: every NIC's records drained.
        for i in 0..n {
            prop_assert_eq!(
                eng.world().ext(NodeId(i)).outstanding(G),
                0,
                "node {} still holds records",
                i
            );
        }
    }
}
