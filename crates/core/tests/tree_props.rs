//! Property-based tests of the spanning-tree builders: coverage, deadlock
//! ordering, and postal-model consistency over arbitrary destination sets.

use gm_sim::SimDuration;
use myrinet::NodeId;
use nic_mcast::{coverage, min_makespan, PostalParams, SpanningTree, TreeShape};
use proptest::prelude::*;

/// An arbitrary destination set: distinct IDs, root excluded.
fn dests_strategy() -> impl Strategy<Value = (u32, Vec<u32>)> {
    (0u32..64, proptest::collection::btree_set(0u32..64, 1..40)).prop_map(|(root, mut set)| {
        set.remove(&root);
        (root, set.into_iter().collect())
    })
}

fn shapes() -> impl Strategy<Value = TreeShape> {
    prop_oneof![
        Just(TreeShape::Binomial),
        Just(TreeShape::Flat),
        Just(TreeShape::Chain),
        (1u32..6).prop_map(TreeShape::KAry),
        (1u64..40, 1u64..40).prop_map(|(t, l)| TreeShape::Postal(PostalParams::new(
            SimDuration::from_micros(l),
            SimDuration::from_micros(t),
        ))),
    ]
}

proptest! {
    #[test]
    fn every_builder_satisfies_the_invariants((root, dests) in dests_strategy(), shape in shapes()) {
        prop_assume!(!dests.is_empty());
        let dests: Vec<NodeId> = dests.into_iter().map(NodeId).collect();
        let tree = SpanningTree::build(NodeId(root), &dests, shape);
        // validate() checks coverage, single-parent, acyclicity and the
        // child-ID > parent-ID deadlock ordering.
        tree.validate().expect("invariants hold");
        // Every destination's children are sent in ascending ID order
        // (contiguous ranges of the sorted list).
        for n in std::iter::once(NodeId(root)).chain(dests.iter().copied()) {
            let ch = tree.children(n);
            for w in ch.windows(2) {
                prop_assert!(w[0] < w[1], "children of {n} not ascending");
            }
        }
    }

    #[test]
    fn depth_never_exceeds_destination_count((root, dests) in dests_strategy(), shape in shapes()) {
        prop_assume!(!dests.is_empty());
        let n = dests.len();
        let dests: Vec<NodeId> = dests.into_iter().map(NodeId).collect();
        let tree = SpanningTree::build(NodeId(root), &dests, shape);
        prop_assert!(tree.height() <= n);
        prop_assert!(tree.height() >= 1);
    }

    #[test]
    fn coverage_is_monotone(m in 0u64..200, lambda in 1u64..20) {
        prop_assert!(coverage(m + 1, lambda) >= coverage(m, lambda));
        // Larger lambda never covers more nodes in the same time.
        prop_assert!(coverage(m, lambda + 1) <= coverage(m, lambda));
    }

    #[test]
    fn min_makespan_is_tight(n in 1u64..500, lambda in 1u64..12) {
        let m = min_makespan(n, lambda);
        prop_assert!(coverage(m, lambda) >= n);
        if m > 0 {
            prop_assert!(coverage(m - 1, lambda) < n);
        }
    }

    #[test]
    fn postal_tree_respects_model_makespan((root, dests) in dests_strategy(),
                                           lat_us in 1u64..30, gap_us in 1u64..30) {
        prop_assume!(!dests.is_empty());
        let p = PostalParams::new(
            SimDuration::from_micros(lat_us),
            SimDuration::from_micros(gap_us),
        );
        let dests: Vec<NodeId> = dests.into_iter().map(NodeId).collect();
        let tree = SpanningTree::build(NodeId(root), &dests, TreeShape::Postal(p));
        // Simulate the postal model over the built tree: node finish time =
        // child i send completes at slot i; child usable lambda slots after
        // its send started. The worst leaf must meet min_makespan.
        let lambda = p.lambda();
        fn finish(tree: &SpanningTree, node: NodeId, start: u64, lambda: u64) -> u64 {
            let mut worst = start;
            for (i, &c) in tree.children(node).iter().enumerate() {
                let child_start = start + (i as u64 + 1) + lambda - 1;
                worst = worst.max(finish(tree, c, child_start, lambda));
            }
            worst
        }
        let makespan = finish(&tree, NodeId(root), 0, lambda);
        let optimal = min_makespan(dests.len() as u64 + 1, lambda);
        prop_assert!(
            makespan <= optimal,
            "postal tree misses its own model's bound: {makespan} > {optimal}"
        );
    }

    #[test]
    fn binomial_root_fanout_is_log2(n in 2u32..64) {
        let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
        let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
        let expect = 32 - (n - 1).leading_zeros();
        prop_assert_eq!(tree.children(NodeId(0)).len() as u32, expect);
    }
}
