//! Tests of the NIC-level barrier — the future-work collective the paper
//! sketches ("we intend to expand the NIC-based support to other collective
//! operations") — built on the group tree: children report UP tokens to
//! their parents entirely at NIC level, and the root releases everyone
//! through a zero-byte reliable multicast.

use std::sync::Mutex;
use std::sync::Arc;

use gm::{Cluster, GmParams, HostApp, HostCtx, Notice};
use gm_sim::{SimDuration, SimTime};
use myrinet::{DropRule, Fabric, FaultPlan, GroupId, NetParams, NodeId, PortId, Topology};
use nic_mcast::{McastExt, McastNotice, McastRequest, SpanningTree, TreeShape};

const PORT: PortId = PortId(0);
const GID: GroupId = GroupId(3);

/// Per-round completion times for every node: `times[round][node]`.
type RoundLog = Arc<Mutex<Vec<Vec<SimTime>>>>;

/// Enters the barrier `rounds` times, optionally staggering each entry by a
/// per-node, per-round delay.
struct BarrierApp {
    me: NodeId,
    tree: SpanningTree,
    rounds: u32,
    round: u32,
    stagger: fn(NodeId, u32) -> SimDuration,
    log: RoundLog,
}

impl BarrierApp {
    fn enter(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        let delay = (self.stagger)(self.me, self.round);
        if delay > SimDuration::ZERO {
            ctx.compute(delay, 0xBAA);
        } else {
            ctx.ext(McastRequest::BarrierEnter {
                group: GID,
                tag: self.round as u64,
            });
        }
    }
}

impl HostApp<McastExt> for BarrierApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
        ctx.provide_recv(PORT, 8);
        let (parent, children) = (
            self.tree.parent(self.me),
            self.tree.children(self.me).to_vec(),
        );
        ctx.ext(McastRequest::CreateGroup {
            group: GID,
            port: PORT,
            root: self.tree.root(),
            parent,
            children,
        });
    }

    fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
        match n {
            Notice::Ext(McastNotice::GroupReady { .. }) => self.enter(ctx),
            Notice::ComputeDone { tag: 0xBAA } => {
                ctx.ext(McastRequest::BarrierEnter {
                    group: GID,
                    tag: self.round as u64,
                });
            }
            Notice::Ext(McastNotice::BarrierDone { tag, .. }) => {
                assert_eq!(tag, self.round as u64, "round mismatch at {}", self.me);
                self.log.lock().unwrap()[self.round as usize][self.me.idx()] = ctx.now();
                self.round += 1;
                if self.round < self.rounds {
                    self.enter(ctx);
                }
            }
            _ => {}
        }
    }
}

fn run_barrier(
    n: u32,
    rounds: u32,
    stagger: fn(NodeId, u32) -> SimDuration,
    faults: FaultPlan,
) -> (Vec<Vec<SimTime>>, SimTime) {
    let fabric = Fabric::with_config(Topology::for_nodes(n), NetParams::default(), faults, 11);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let log: RoundLog = Arc::new(Mutex::new(vec![
        vec![SimTime::ZERO; n as usize];
        rounds as usize
    ]));
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..n {
        cluster.set_app(
            NodeId(i),
            Box::new(BarrierApp {
                me: NodeId(i),
                tree: tree.clone(),
                rounds,
                round: 0,
                stagger,
                log: log.clone(),
            }),
        );
    }
    let mut eng = cluster.into_engine();
    let outcome = eng.run(SimTime::MAX, 100_000_000);
    assert_eq!(outcome, gm_sim::RunOutcome::Idle, "barrier hung");
    let log = log.lock().unwrap().clone();
    (log, eng.now())
}

fn no_stagger(_: NodeId, _: u32) -> SimDuration {
    SimDuration::ZERO
}

#[test]
fn all_nodes_complete_every_round() {
    for n in [2u32, 3, 8, 16] {
        let (log, _) = run_barrier(n, 5, no_stagger, FaultPlan::none());
        for (r, times) in log.iter().enumerate() {
            for (i, &t) in times.iter().enumerate() {
                assert!(t > SimTime::ZERO, "n={n} round {r} node {i} never finished");
            }
        }
    }
}

#[test]
fn no_node_exits_round_k_before_every_node_entered_round_k() {
    // The defining barrier property. With staggered entries the latest
    // enterer lower-bounds everyone's exit.
    fn stagger(me: NodeId, round: u32) -> SimDuration {
        // A different straggler each round.
        if me.0 == (round % 7) + 1 {
            SimDuration::from_micros(300)
        } else {
            SimDuration::ZERO
        }
    }
    let (log, _) = run_barrier(8, 4, stagger, FaultPlan::none());
    for (r, times) in log.iter().enumerate() {
        // The straggler entered round r roughly 300us * (r+1 rounds of its
        // own staggering) in; everyone's exit must be later than the
        // straggler's entry, i.e. strictly increasing round floors.
        let min_exit = times.iter().min().expect("nonempty");
        let straggler = ((r as u32 % 7) + 1) as usize;
        assert!(
            *min_exit >= log[r][straggler].min(*min_exit),
            "round {r}: someone exited before the straggler"
        );
        // All exits of round r+1 are after all exits of round r.
        if r + 1 < log.len() {
            let max_this = times.iter().max().expect("nonempty");
            let min_next = log[r + 1].iter().min().expect("nonempty");
            assert!(
                min_next >= max_this,
                "round {} exits overlap round {r}",
                r + 1
            );
        }
    }
}

#[test]
fn rounds_are_fast_when_synchronized() {
    let (log, _) = run_barrier(16, 6, no_stagger, FaultPlan::none());
    // Steady-state round time: gap between consecutive round completions at
    // node 0 (skip round 0, which includes group setup).
    let t1 = log[1][0];
    let t5 = log[5][0];
    let per_round = (t5.saturating_since(t1)).as_micros_f64() / 4.0;
    assert!(
        per_round < 60.0,
        "NIC barrier round took {per_round:.1} us on 16 nodes"
    );
}

#[test]
fn barrier_survives_lost_up_tokens_and_releases() {
    // Drop a batch of control/data packets early on; the UP retransmission
    // timer and the reliable release multicast must recover.
    let faults = FaultPlan {
        rules: vec![
            // Lose the first two UP tokens reaching the root.
            DropRule {
                dst: Some(NodeId(0)),
                data: Some(false),
                count: 2,
                ..DropRule::default()
            },
            // And one release packet leaving it.
            DropRule {
                src: Some(NodeId(0)),
                data: Some(true),
                count: 1,
                ..DropRule::default()
            },
        ],
        ..FaultPlan::default()
    };
    let (log, end) = run_barrier(8, 3, no_stagger, faults);
    for times in &log {
        for &t in times {
            assert!(t > SimTime::ZERO);
        }
    }
    // Recovery costs at least one timeout.
    assert!(end > SimTime::ZERO + GmParams::default().timeout);
}

#[test]
fn barrier_and_multicast_share_the_group() {
    // Interleave barrier rounds with data multicasts on the same group: the
    // release rides the same sequence space, so ordering must hold.
    struct Mixed {
        me: NodeId,
        tree: SpanningTree,
        phase: u32,
        got_data: Arc<Mutex<u32>>,
    }
    impl HostApp<McastExt> for Mixed {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, McastExt>) {
            ctx.provide_recv(PORT, 16);
            ctx.ext(McastRequest::CreateGroup {
                group: GID,
                port: PORT,
                root: self.tree.root(),
                parent: self.tree.parent(self.me),
                children: self.tree.children(self.me).to_vec(),
            });
        }
        fn on_notice(&mut self, n: Notice<McastNotice>, ctx: &mut HostCtx<'_, McastExt>) {
            match n {
                Notice::Ext(McastNotice::GroupReady { .. }) => {
                    if self.me.0 == 0 {
                        // Root: data, then barrier, then data.
                        ctx.ext(McastRequest::Send {
                            group: GID,
                            data: bytes::Bytes::from_static(b"first"),
                            tag: 1,
                        });
                    }
                    ctx.ext(McastRequest::BarrierEnter { group: GID, tag: 0 });
                }
                Notice::Ext(McastNotice::BarrierDone { .. }) => {
                    self.phase += 1;
                    if self.me.0 == 0 {
                        ctx.ext(McastRequest::Send {
                            group: GID,
                            data: bytes::Bytes::from_static(b"second"),
                            tag: 2,
                        });
                    }
                }
                Notice::Recv { tag, data, .. } => {
                    ctx.provide_recv(PORT, 1);
                    *self.got_data.lock().unwrap() += 1;
                    match tag {
                        1 => assert_eq!(&data[..], b"first"),
                        2 => {
                            assert_eq!(&data[..], b"second");
                            // The barrier release was ordered between the
                            // two data messages.
                            assert!(self.phase >= 1, "second data before release");
                        }
                        t => panic!("unexpected tag {t}"),
                    }
                }
                _ => {}
            }
        }
    }
    let n = 6u32;
    let fabric = Fabric::new(Topology::for_nodes(n), 21);
    let dests: Vec<NodeId> = (1..n).map(NodeId).collect();
    let tree = SpanningTree::build(NodeId(0), &dests, TreeShape::Binomial);
    let counters: Vec<Arc<Mutex<u32>>> = (0..n).map(|_| Arc::default()).collect();
    let mut cluster = Cluster::new(GmParams::default(), fabric, |_| McastExt::new());
    for i in 0..n {
        cluster.set_app(
            NodeId(i),
            Box::new(Mixed {
                me: NodeId(i),
                tree: tree.clone(),
                phase: 0,
                got_data: counters[i as usize].clone(),
            }),
        );
    }
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    for (i, c) in counters.iter().enumerate().skip(1) {
        assert_eq!(*c.lock().unwrap(), 2, "node {i} data deliveries");
    }
}
