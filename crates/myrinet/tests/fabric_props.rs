//! Property-based tests of the fabric: route validity on arbitrary cluster
//! sizes, timing monotonicity, and loss accounting.

use bytes::Bytes;
use gm_sim::{SimDuration, SimTime};
use myrinet::{
    Fabric, FaultPlan, LinkEnds, NetParams, NodeId, Packet, PacketKind, PortId, Topology, Verdict,
};
use proptest::prelude::*;

fn pkt(src: u32, dst: u32, len: usize) -> Packet {
    Packet {
        src: NodeId(src),
        dst: NodeId(dst),
        kind: PacketKind::Data {
            port: PortId(0),
            src_port: PortId(0),
            seq: 0,
            offset: 0,
            msg_len: len as u32,
            tag: 0,
        },
        payload: Bytes::from(vec![0u8; len]),
    }
}

proptest! {
    #[test]
    fn routes_chain_correctly_for_any_size(n in 2u32..=128, a in 0u32..128, b in 0u32..128) {
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let topo = Topology::for_nodes(n);
        let route = topo.route(NodeId(a), NodeId(b));
        prop_assert!(!route.is_empty());
        // Endpoints chain: Inject(a, s0), [Inter...], Eject(sk, b).
        let mut prev = None;
        for (i, &l) in route.iter().enumerate() {
            match topo.link_ends(l) {
                LinkEnds::Inject(node, sw) => {
                    prop_assert_eq!(i, 0);
                    prop_assert_eq!(node, NodeId(a));
                    prev = Some(sw);
                }
                LinkEnds::Inter(from, to) => {
                    prop_assert_eq!(Some(from), prev);
                    prev = Some(to);
                }
                LinkEnds::Eject(sw, node) => {
                    prop_assert_eq!(i, route.len() - 1);
                    prop_assert_eq!(Some(sw), prev);
                    prop_assert_eq!(node, NodeId(b));
                }
            }
        }
    }

    #[test]
    fn latency_grows_with_size(n in 2u32..64, len_a in 0usize..8192, extra in 1usize..8192) {
        let topo = Topology::for_nodes(n);
        let t1 = {
            let mut f = Fabric::new(topo.clone(), 1);
            match f.inject(SimTime::ZERO, &pkt(0, n - 1, len_a)) {
                Verdict::Delivered { at, .. } => at,
                _ => unreachable!("no faults"),
            }
        };
        let t2 = {
            let mut f = Fabric::new(topo, 1);
            match f.inject(SimTime::ZERO, &pkt(0, n - 1, len_a + extra)) {
                Verdict::Delivered { at, .. } => at,
                _ => unreachable!("no faults"),
            }
        };
        prop_assert!(t2 > t1, "bigger packets must arrive later");
    }

    #[test]
    fn unloaded_latency_predicts_first_injection(n in 2u32..64, len in 0usize..16384) {
        let topo = Topology::for_nodes(n);
        let mut f = Fabric::new(topo, 9);
        let p = pkt(1 % n, n - 1, len);
        prop_assume!(p.src != p.dst);
        let hops = f.topology().route(p.src, p.dst).len();
        let predicted = f.unloaded_latency(hops, p.wire_bytes());
        match f.inject(SimTime::ZERO, &p) {
            Verdict::Delivered { at, .. } => {
                prop_assert_eq!(at, SimTime::ZERO + predicted);
            }
            _ => unreachable!("no faults"),
        }
    }

    #[test]
    fn back_to_back_packets_serialize(n in 2u32..32, len in 1usize..4096, count in 2usize..10) {
        let topo = Topology::for_nodes(n);
        let mut f = Fabric::new(topo, 2);
        let mut last = SimTime::ZERO;
        let ser = f.serialization(&pkt(0, 1, len));
        for i in 0..count {
            match f.inject(SimTime::ZERO, &pkt(0, 1, len)) {
                Verdict::Delivered { at, .. } => {
                    if i > 0 {
                        // Each subsequent packet arrives at least one
                        // serialization later than its predecessor.
                        prop_assert!(at >= last + ser);
                    }
                    last = at;
                }
                _ => unreachable!("no faults"),
            }
        }
    }

    #[test]
    fn loss_accounting_balances(loss in 0.0f64..0.5, count in 10usize..200) {
        let topo = Topology::for_nodes(2);
        let mut f = Fabric::with_config(topo, NetParams::default(), FaultPlan::with_loss(loss), 42);
        let mut t = SimTime::ZERO;
        let mut delivered = 0u64;
        for _ in 0..count {
            if matches!(f.inject(t, &pkt(0, 1, 100)), Verdict::Delivered { .. }) {
                delivered += 1;
            }
            t += SimDuration::from_micros(100);
        }
        let c = f.counters();
        prop_assert_eq!(c.get("delivered"), delivered);
        prop_assert_eq!(c.get("delivered") + c.get("dropped_random"), count as u64);
    }
}
