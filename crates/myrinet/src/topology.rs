//! Switch topologies: a single crossbar for small clusters and a two-level
//! Clos (spine/leaf of 16-port crossbars) for larger ones — Myrinet-2000's
//! default topology, per the paper ("Myrinet network uses its default
//! hardware topology, Clos network").

use crate::packet::NodeId;

/// A directed link's index into the fabric's link table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into per-link arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A switch's index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SwitchId(pub u32);

/// What a directed link connects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkEnds {
    /// NIC of `node` into switch.
    Inject(NodeId, SwitchId),
    /// Switch to switch.
    Inter(SwitchId, SwitchId),
    /// Switch out to NIC of `node`.
    Eject(SwitchId, NodeId),
}

/// The shape of the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopoKind {
    /// All nodes on one crossbar.
    SingleCrossbar,
    /// Two-level Clos: leaves host nodes, spines interconnect leaves.
    Clos {
        /// Number of leaf switches.
        leaves: u32,
        /// Number of spine switches.
        spines: u32,
        /// Hosts attached per leaf.
        hosts_per_leaf: u32,
    },
}

/// An immutable description of switches and directed links.
#[derive(Clone, Debug)]
pub struct Topology {
    n_nodes: u32,
    kind: TopoKind,
    links: Vec<LinkEnds>,
    /// Per-node injection link (NIC -> first switch).
    inject: Vec<LinkId>,
    /// Per-node ejection link (last switch -> NIC).
    eject: Vec<LinkId>,
    /// For Clos: [leaf][spine] up-link and [spine][leaf] down-link ids.
    up: Vec<Vec<LinkId>>,
    down: Vec<Vec<LinkId>>,
}

/// Radix of the modelled crossbar switches (Myrinet-2000 XBar16).
pub const SWITCH_PORTS: u32 = 16;

impl Topology {
    /// Build the default topology for `n_nodes`: a single crossbar when the
    /// cluster fits on one switch, otherwise a two-level Clos of 16-port
    /// crossbars (half the ports of each leaf face hosts, half face spines).
    pub fn for_nodes(n_nodes: u32) -> Topology {
        assert!(n_nodes >= 1, "need at least one node");
        assert!(
            n_nodes <= SWITCH_PORTS * SWITCH_PORTS / 2,
            "a two-level Clos of 16-port crossbars tops out at 128 hosts;              larger systems need a third switching stage"
        );
        if n_nodes <= SWITCH_PORTS {
            Self::single_crossbar(n_nodes)
        } else {
            let hosts_per_leaf = SWITCH_PORTS / 2;
            let leaves = n_nodes.div_ceil(hosts_per_leaf);
            let spines = SWITCH_PORTS / 2;
            Self::clos(n_nodes, leaves, spines, hosts_per_leaf)
        }
    }

    /// A single `n_nodes`-port crossbar (switch 0).
    pub fn single_crossbar(n_nodes: u32) -> Topology {
        assert!(
            (1..=SWITCH_PORTS).contains(&n_nodes),
            "single crossbar supports 1..=16 nodes, got {n_nodes}"
        );
        let sw = SwitchId(0);
        let mut links = Vec::with_capacity(2 * n_nodes as usize);
        let mut inject = Vec::with_capacity(n_nodes as usize);
        let mut eject = Vec::with_capacity(n_nodes as usize);
        for n in 0..n_nodes {
            inject.push(LinkId(links.len() as u32));
            links.push(LinkEnds::Inject(NodeId(n), sw));
            eject.push(LinkId(links.len() as u32));
            links.push(LinkEnds::Eject(sw, NodeId(n)));
        }
        Topology {
            n_nodes,
            kind: TopoKind::SingleCrossbar,
            links,
            inject,
            eject,
            up: vec![],
            down: vec![],
        }
    }

    /// An explicit two-level Clos.
    pub fn clos(n_nodes: u32, leaves: u32, spines: u32, hosts_per_leaf: u32) -> Topology {
        assert!(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1);
        assert!(
            leaves * hosts_per_leaf >= n_nodes,
            "not enough leaf ports: {leaves} leaves x {hosts_per_leaf} < {n_nodes} nodes"
        );
        assert!(
            hosts_per_leaf + spines <= SWITCH_PORTS,
            "leaf radix exceeded"
        );
        assert!(leaves <= SWITCH_PORTS, "spine radix exceeded");
        let mut links = Vec::new();
        let mut inject = Vec::with_capacity(n_nodes as usize);
        let mut eject = Vec::with_capacity(n_nodes as usize);
        for n in 0..n_nodes {
            let leaf = SwitchId(n / hosts_per_leaf);
            inject.push(LinkId(links.len() as u32));
            links.push(LinkEnds::Inject(NodeId(n), leaf));
            eject.push(LinkId(links.len() as u32));
            links.push(LinkEnds::Eject(leaf, NodeId(n)));
        }
        // Spine switches are numbered after the leaves.
        let mut up = vec![Vec::with_capacity(spines as usize); leaves as usize];
        let mut down = vec![Vec::with_capacity(leaves as usize); spines as usize];
        for l in 0..leaves {
            for s in 0..spines {
                up[l as usize].push(LinkId(links.len() as u32));
                links.push(LinkEnds::Inter(SwitchId(l), SwitchId(leaves + s)));
            }
        }
        for s in 0..spines {
            for l in 0..leaves {
                down[s as usize].push(LinkId(links.len() as u32));
                links.push(LinkEnds::Inter(SwitchId(leaves + s), SwitchId(l)));
            }
        }
        Topology {
            n_nodes,
            kind: TopoKind::Clos {
                leaves,
                spines,
                hosts_per_leaf,
            },
            links,
            inject,
            eject,
            up,
            down,
        }
    }

    /// Number of nodes attached.
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// The topology family.
    pub fn kind(&self) -> TopoKind {
        self.kind
    }

    /// Total number of directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// What link `id` connects.
    pub fn link_ends(&self, id: LinkId) -> LinkEnds {
        self.links[id.idx()]
    }

    /// The leaf switch hosting `node` (its only switch in a crossbar).
    pub fn leaf_of(&self, node: NodeId) -> SwitchId {
        match self.kind {
            TopoKind::SingleCrossbar => SwitchId(0),
            TopoKind::Clos { hosts_per_leaf, .. } => SwitchId(node.0 / hosts_per_leaf),
        }
    }

    /// Source route from `src` to `dst`: the ordered directed links a packet
    /// traverses. Spine choice is static per (src, dst) pair, mirroring
    /// Myrinet's source routing.
    ///
    /// `src == dst` is not routable (GM loops back locally, above the wire).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        assert!(src != dst, "no self-route on the fabric");
        assert!(src.0 < self.n_nodes && dst.0 < self.n_nodes, "node out of range");
        match self.kind {
            TopoKind::SingleCrossbar => {
                vec![self.inject[src.idx()], self.eject[dst.idx()]]
            }
            TopoKind::Clos { spines, .. } => {
                let src_leaf = self.leaf_of(src);
                let dst_leaf = self.leaf_of(dst);
                if src_leaf == dst_leaf {
                    return vec![self.inject[src.idx()], self.eject[dst.idx()]];
                }
                // Deterministic spine selection spreads pairs across spines.
                let spine = (src.0.wrapping_mul(31).wrapping_add(dst.0) % spines) as usize;
                vec![
                    self.inject[src.idx()],
                    self.up[src_leaf.0 as usize][spine],
                    self.down[spine][dst_leaf.0 as usize],
                    self.eject[dst.idx()],
                ]
            }
        }
    }

    /// Number of switch hops (= route length minus the final ejection wire).
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.route(src, dst).len()
    }

    /// Precompute every (src, dst) route into a [`RouteTable`]. Call once per
    /// topology; the table answers `route` queries with a slice borrow
    /// instead of a per-packet allocation.
    pub fn route_table(&self) -> RouteTable {
        RouteTable::new(self)
    }

    /// Partition the nodes into at most `n_shards` contiguous groups whose
    /// link state is disjoint under the fabric's two-stage reservation
    /// protocol (`tx_stage` touches the source-owned route prefix,
    /// `rx_stage` the destination-owned suffix).
    ///
    /// On a crossbar every route is `[inject(src), eject(dst)]`, so any
    /// split works and nodes are divided evenly. On a Clos the up-links
    /// `up[leaf][spine]` are shared by every host of `leaf` (and the
    /// down-links by every host of the destination leaf), so the split must
    /// be *leaf-aligned*: whole leaves are grouped, never divided. The
    /// returned map has `shard_of[node] < n` for some `n <= n_shards`
    /// (fewer shards than requested when there are not enough leaves).
    pub fn partition(&self, n_shards: u32) -> Vec<u32> {
        let n_shards = n_shards.max(1);
        // The indivisible placement unit: a node (crossbar) or a leaf (Clos).
        let unit_of = |node: u32| match self.kind {
            TopoKind::SingleCrossbar => node,
            TopoKind::Clos { hosts_per_leaf, .. } => node / hosts_per_leaf,
        };
        let units = unit_of(self.n_nodes - 1) + 1;
        let shards = n_shards.min(units);
        // `u * shards / units` yields contiguous, balanced groups.
        (0..self.n_nodes)
            .map(|node| unit_of(node) * shards / units)
            .collect()
    }

    /// Render the topology as Graphviz DOT (nodes as boxes, switches as
    /// ellipses; one undirected edge per link pair).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("graph myrinet {\n  rankdir=BT;\n");
        for n in 0..self.n_nodes {
            let _ = writeln!(out, "  n{n} [shape=box];");
        }
        // Undirected view: emit each Inject and leaf->spine link once.
        for &ends in &self.links {
            match ends {
                LinkEnds::Inject(node, sw) => {
                    let _ = writeln!(out, "  n{} -- s{};", node.0, sw.0);
                }
                LinkEnds::Inter(from, to) if from.0 < to.0 => {
                    let _ = writeln!(out, "  s{} -- s{};", from.0, to.0);
                }
                _ => {}
            }
        }
        out.push_str("}\n");
        out
    }
}

/// All (src, dst) source routes of a [`Topology`], precomputed into one
/// flattened CSR-style arena: `offsets[src * n + dst .. +1]` indexes a shared
/// `links` slab. Built once per topology (O(n²) pairs, ~300 KB at n = 128);
/// lookups are two loads and a bounds check, with no per-packet allocation —
/// the hot-path replacement for [`Topology::route`].
///
/// The `src == dst` diagonal is left empty and, like `Topology::route`,
/// panics on lookup: GM loops self-sends back locally, above the wire.
#[derive(Clone, Debug)]
pub struct RouteTable {
    n_nodes: u32,
    /// `n_nodes * n_nodes + 1` entries; route for (s, d) is
    /// `links[offsets[s*n+d] .. offsets[s*n+d+1]]`.
    offsets: Box<[u32]>,
    /// Concatenated link sequences for all ordered pairs.
    links: Box<[LinkId]>,
}

impl RouteTable {
    /// Precompute all routes of `topo`.
    pub fn new(topo: &Topology) -> RouteTable {
        let n = topo.n_nodes() as usize;
        let mut offsets = Vec::with_capacity(n * n + 1);
        // Worst case 4 links per pair (two-level Clos).
        let mut links = Vec::with_capacity(n * n * 4);
        offsets.push(0u32);
        for src in 0..n as u32 {
            for dst in 0..n as u32 {
                if src != dst {
                    links.extend(topo.route(NodeId(src), NodeId(dst)));
                }
                links
                    .len()
                    .try_into()
                    .map(|o| offsets.push(o))
                    .expect("route arena exceeds u32 offsets");
            }
        }
        RouteTable {
            n_nodes: topo.n_nodes(),
            offsets: offsets.into_boxed_slice(),
            links: links.into_boxed_slice(),
        }
    }

    /// The precomputed source route from `src` to `dst`, as a borrowed slice
    /// of the arena. Panics on `src == dst` (mirroring [`Topology::route`])
    /// and on out-of-range nodes.
    #[inline]
    pub fn route(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        assert!(src != dst, "no self-route on the fabric");
        assert!(
            src.0 < self.n_nodes && dst.0 < self.n_nodes,
            "node out of range"
        );
        let cell = src.0 as usize * self.n_nodes as usize + dst.0 as usize;
        &self.links[self.offsets[cell] as usize..self.offsets[cell + 1] as usize]
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Total links stored across all pairs (arena length).
    pub fn arena_len(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_routes_are_two_hops() {
        let t = Topology::for_nodes(16);
        assert_eq!(t.kind(), TopoKind::SingleCrossbar);
        for a in 0..16 {
            for b in 0..16 {
                if a == b {
                    continue;
                }
                let r = t.route(NodeId(a), NodeId(b));
                assert_eq!(r.len(), 2);
                assert_eq!(t.link_ends(r[0]), LinkEnds::Inject(NodeId(a), SwitchId(0)));
                assert_eq!(t.link_ends(r[1]), LinkEnds::Eject(SwitchId(0), NodeId(b)));
            }
        }
    }

    #[test]
    fn clos_selected_above_16() {
        let t = Topology::for_nodes(64);
        match t.kind() {
            TopoKind::Clos {
                leaves,
                spines,
                hosts_per_leaf,
            } => {
                assert_eq!(hosts_per_leaf, 8);
                assert_eq!(leaves, 8);
                assert_eq!(spines, 8);
            }
            k => panic!("expected Clos, got {k:?}"),
        }
    }

    #[test]
    fn clos_same_leaf_is_two_hops_cross_leaf_is_four() {
        let t = Topology::for_nodes(64);
        // Nodes 0 and 1 share leaf 0.
        assert_eq!(t.route(NodeId(0), NodeId(1)).len(), 2);
        // Nodes 0 and 63 are on different leaves.
        let r = t.route(NodeId(0), NodeId(63));
        assert_eq!(r.len(), 4);
        // The path is inject, up, down, eject in order.
        assert!(matches!(t.link_ends(r[0]), LinkEnds::Inject(NodeId(0), _)));
        assert!(matches!(t.link_ends(r[1]), LinkEnds::Inter(_, _)));
        assert!(matches!(t.link_ends(r[2]), LinkEnds::Inter(_, _)));
        assert!(matches!(t.link_ends(r[3]), LinkEnds::Eject(_, NodeId(63))));
    }

    #[test]
    fn clos_route_link_endpoints_chain() {
        let t = Topology::for_nodes(128);
        for (a, b) in [(0u32, 127u32), (5, 99), (17, 16), (120, 3)] {
            let r = t.route(NodeId(a), NodeId(b));
            // Verify each consecutive pair of links shares a switch.
            let mut prev_to: Option<SwitchId> = None;
            for &l in &r {
                match t.link_ends(l) {
                    LinkEnds::Inject(n, sw) => {
                        assert_eq!(n, NodeId(a));
                        assert!(prev_to.is_none());
                        prev_to = Some(sw);
                    }
                    LinkEnds::Inter(from, to) => {
                        assert_eq!(Some(from), prev_to);
                        prev_to = Some(to);
                    }
                    LinkEnds::Eject(sw, n) => {
                        assert_eq!(Some(sw), prev_to);
                        assert_eq!(n, NodeId(b));
                    }
                }
            }
        }
    }

    #[test]
    fn route_is_deterministic() {
        let t = Topology::for_nodes(64);
        assert_eq!(t.route(NodeId(1), NodeId(60)), t.route(NodeId(1), NodeId(60)));
    }

    #[test]
    #[should_panic(expected = "no self-route")]
    fn self_route_panics() {
        Topology::for_nodes(4).route(NodeId(2), NodeId(2));
    }

    #[test]
    fn dot_export_mentions_every_node_and_switch() {
        let t = Topology::for_nodes(24);
        let dot = t.to_dot();
        for n in 0..24 {
            assert!(dot.contains(&format!("n{n} ")), "node {n} missing");
        }
        // 3 leaves + 8 spines; every leaf-spine pair appears once.
        assert_eq!(dot.matches(" -- s").count(), 24 + 3 * 8);
        assert!(dot.starts_with("graph myrinet {"));
    }

    #[test]
    fn odd_sizes_build() {
        for n in [1u32, 2, 3, 15, 16, 17, 33, 100, 128] {
            let t = Topology::for_nodes(n);
            assert_eq!(t.n_nodes(), n);
            if n >= 2 {
                let _ = t.route(NodeId(0), NodeId(n - 1));
            }
        }
    }

    #[test]
    fn route_table_matches_on_demand_routes_all_pairs() {
        for n in [1u32, 2, 7, 16, 17, 64, 128] {
            let t = Topology::for_nodes(n);
            let table = t.route_table();
            assert_eq!(table.n_nodes(), n);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    assert_eq!(
                        table.route(NodeId(a), NodeId(b)),
                        t.route(NodeId(a), NodeId(b)).as_slice(),
                        "pair ({a}, {b}) of {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_table_arena_is_dense() {
        let t = Topology::for_nodes(64);
        let table = t.route_table();
        let expect: usize = (0..64u32)
            .flat_map(|a| (0..64u32).filter(move |&b| a != b).map(move |b| (a, b)))
            .map(|(a, b)| t.route(NodeId(a), NodeId(b)).len())
            .sum();
        assert_eq!(table.arena_len(), expect);
    }

    #[test]
    #[should_panic(expected = "no self-route")]
    fn route_table_self_route_panics() {
        Topology::for_nodes(4).route_table().route(NodeId(1), NodeId(1));
    }

    #[test]
    fn partition_crossbar_is_contiguous_and_balanced() {
        let t = Topology::for_nodes(8);
        let p = t.partition(4);
        assert_eq!(p, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn partition_clos_never_splits_a_leaf() {
        let t = Topology::for_nodes(64); // 8 leaves x 8 hosts
        for shards in [1u32, 2, 3, 4, 7, 8, 64] {
            let p = t.partition(shards);
            assert_eq!(p.len(), 64);
            for n in 0..64usize {
                assert_eq!(p[n], p[n - n % 8], "leaf of node {n} split at {shards} shards");
            }
            // Contiguous and starting at zero.
            assert_eq!(p[0], 0);
            for w in p.windows(2) {
                assert!(w[1] == w[0] || w[1] == w[0] + 1);
            }
            let max = *p.iter().max().unwrap();
            assert!(max < shards.min(8));
        }
    }

    #[test]
    fn partition_clamps_to_available_units() {
        // 24 nodes -> 3 leaves; asking for 8 shards yields only 3.
        let t = Topology::for_nodes(24);
        let p = t.partition(8);
        assert_eq!(*p.iter().max().unwrap(), 2);
        // One node, any request -> single shard.
        assert_eq!(Topology::for_nodes(1).partition(4), vec![0]);
    }
}
