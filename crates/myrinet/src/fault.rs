//! Fault injection: the paper's reliability mechanisms (acks, timeout,
//! retransmission) only matter because "bit error-rates are low in modern
//! networks, [but] they are not zero". This module lets tests and ablations
//! drop or corrupt packets, either probabilistically or by targeted rule.

use crate::packet::{NodeId, Packet};

/// Why a packet never reached its destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Random loss (bit-error model).
    Random,
    /// Matched a targeted drop rule.
    Rule(usize),
    /// CRC corruption: delivered but discarded by the receiving NIC.
    Corrupt,
}

/// Selects packets for a targeted drop.
#[derive(Clone, Debug, Default)]
pub struct DropRule {
    /// Only packets injected by this node.
    pub src: Option<NodeId>,
    /// Only packets destined to this node.
    pub dst: Option<NodeId>,
    /// Only multicast (true) or only unicast (false) protocol packets.
    pub mcast: Option<bool>,
    /// Only data-bearing (true) or only control (false) packets.
    pub data: Option<bool>,
    /// Only packets with this sequence number.
    pub seq: Option<u64>,
    /// How many matching packets to drop (decremented; 0 = exhausted).
    pub count: u32,
}

impl DropRule {
    /// Drop the next `count` data packets from `src` to `dst`.
    pub fn data_between(src: NodeId, dst: NodeId, count: u32) -> DropRule {
        DropRule {
            src: Some(src),
            dst: Some(dst),
            data: Some(true),
            count,
            ..DropRule::default()
        }
    }

    fn matches(&self, pkt: &Packet) -> bool {
        self.count > 0
            && self.src.is_none_or(|s| s == pkt.src)
            && self.dst.is_none_or(|d| d == pkt.dst)
            && self.mcast.is_none_or(|m| m == pkt.kind.is_mcast())
            && self.data.is_none_or(|d| d == pkt.kind.is_data())
            && self.seq.is_none_or(|q| q == pkt.kind.seq())
    }
}

/// The full fault configuration for a run.
///
/// ```
/// use myrinet::{DropRule, FaultPlan, NodeId};
///
/// // 1% random loss plus a targeted burst: drop the next three data
/// // packets headed for node 5.
/// let plan = FaultPlan {
///     drop_prob: 0.01,
///     corrupt_prob: 0.0,
///     rules: vec![DropRule {
///         dst: Some(NodeId(5)),
///         data: Some(true),
///         count: 3,
///         ..DropRule::default()
///     }],
/// };
/// assert_eq!(plan.rules.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Probability each packet is lost in transit.
    pub drop_prob: f64,
    /// Probability each packet arrives corrupted (receiver discards it).
    pub corrupt_prob: f64,
    /// Targeted one-shot drop rules, checked in order.
    pub rules: Vec<DropRule>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Uniform random loss with probability `p`.
    pub fn with_loss(p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p));
        FaultPlan {
            drop_prob: p,
            ..FaultPlan::default()
        }
    }

    /// Decide this packet's fate. `unit_draw` is a fresh U[0,1) sample used
    /// for both probabilistic checks (split into disjoint subintervals so a
    /// single draw keeps the RNG stream consumption packet-count-stable).
    pub fn check(&mut self, pkt: &Packet, unit_draw: f64) -> Option<DropReason> {
        for (i, rule) in self.rules.iter_mut().enumerate() {
            if rule.matches(pkt) {
                rule.count -= 1;
                return Some(DropReason::Rule(i));
            }
        }
        if unit_draw < self.drop_prob {
            return Some(DropReason::Random);
        }
        if unit_draw < self.drop_prob + self.corrupt_prob {
            return Some(DropReason::Corrupt);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crate::packet::{PacketKind, PortId};

    fn data_pkt(src: u32, dst: u32, seq: u64) -> Packet {
        Packet {
            src: NodeId(src),
            dst: NodeId(dst),
            kind: PacketKind::Data {
                port: PortId(0),
                src_port: PortId(0),
                seq,
                offset: 0,
                msg_len: 4,
                tag: 0,
            },
            payload: Bytes::from_static(b"abcd"),
        }
    }

    #[test]
    fn no_faults_passes_everything() {
        let mut plan = FaultPlan::none();
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.0), None);
    }

    #[test]
    fn probabilistic_drop_uses_draw() {
        let mut plan = FaultPlan::with_loss(0.1);
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.05), Some(DropReason::Random));
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.15), None);
    }

    #[test]
    fn corrupt_band_above_drop_band() {
        let mut plan = FaultPlan {
            drop_prob: 0.1,
            corrupt_prob: 0.1,
            rules: vec![],
        };
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.05), Some(DropReason::Random));
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.15), Some(DropReason::Corrupt));
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.25), None);
    }

    #[test]
    fn rule_counts_down_and_expires() {
        let mut plan = FaultPlan {
            rules: vec![DropRule::data_between(NodeId(0), NodeId(1), 2)],
            ..FaultPlan::default()
        };
        assert_eq!(plan.check(&data_pkt(0, 1, 0), 0.9), Some(DropReason::Rule(0)));
        assert_eq!(plan.check(&data_pkt(0, 1, 1), 0.9), Some(DropReason::Rule(0)));
        assert_eq!(plan.check(&data_pkt(0, 1, 2), 0.9), None);
    }

    #[test]
    fn rule_filters_by_fields() {
        let mut plan = FaultPlan {
            rules: vec![DropRule {
                seq: Some(7),
                mcast: Some(false),
                count: 10,
                ..DropRule::default()
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.check(&data_pkt(3, 4, 6), 0.9), None);
        assert_eq!(plan.check(&data_pkt(3, 4, 7), 0.9), Some(DropReason::Rule(0)));
        // Ack with seq 7 is not data but matches mcast=false and seq.
        let ack = Packet::ack(NodeId(0), NodeId(1), PortId(0), 7);
        assert_eq!(plan.check(&ack, 0.9), Some(DropReason::Rule(0)));
    }
}
