//! `myrinet` — a discrete-event model of a Myrinet-2000-like fabric.
//!
//! Provides the substrate under the GM protocol model: wormhole cut-through
//! switching over a single crossbar or a two-level Clos of 16-port switches,
//! with deterministic source routing, link contention, and fault injection.
//!
//! ```
//! use gm_sim::SimTime;
//! use myrinet::{Fabric, NodeId, Packet, PacketKind, PortId, Topology, Verdict};
//!
//! let mut fabric = Fabric::new(Topology::for_nodes(16), 42);
//! let pkt = Packet {
//!     src: NodeId(0),
//!     dst: NodeId(5),
//!     kind: PacketKind::Ack { port: PortId(0), seq: 0 },
//!     payload: bytes::Bytes::new(),
//! };
//! match fabric.inject(SimTime::ZERO, &pkt) {
//!     Verdict::Delivered { at, .. } => assert!(at > SimTime::ZERO),
//!     Verdict::Dropped { .. } => unreachable!("no faults configured"),
//! }
//! ```

#![warn(missing_docs)]

mod fabric;
mod fault;
mod packet;
mod topology;

pub use fabric::{Fabric, NetParams, RxOutcome, TxVerdict, Verdict, WireHandoff};
pub use fault::{DropReason, DropRule, FaultPlan};
pub use packet::{GroupId, NodeId, Packet, PacketKind, PortId, HEADER_BYTES, MTU};
pub use topology::{LinkEnds, LinkId, SwitchId, TopoKind, Topology, SWITCH_PORTS};
