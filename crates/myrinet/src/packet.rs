//! Wire-level packet format.
//!
//! Myrinet carries arbitrary source-routed packets; GM defines the packet
//! types layered on it. The fabric only inspects `src`/`dst` and the total
//! size; everything else is opaque protocol header carried through.

use std::fmt;

use bytes::Bytes;

/// A host/NIC pair's network identifier (the "network ID" the paper sorts
/// destinations by for deadlock freedom).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A GM communication endpoint on a node (GM "port").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u8);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A multicast group identifier (unique per (root, membership) pair).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Bytes of routing + protocol header prepended to every packet on the wire.
pub const HEADER_BYTES: u64 = 24;

/// GM's maximum packet payload (the paper: "The maximum packet size in GM is
/// 4096 bytes").
pub const MTU: usize = 4096;

/// Protocol content of a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// A unicast GM data packet on a (port, peer) connection.
    Data {
        /// Destination port on the receiving node.
        port: PortId,
        /// Sending port on the source node.
        src_port: PortId,
        /// Go-Back-N sequence number on this connection.
        seq: u64,
        /// Byte offset of this packet's payload within its message.
        offset: u32,
        /// Total message length in bytes.
        msg_len: u32,
        /// Message tag passed through to the receiver.
        tag: u64,
    },
    /// Cumulative acknowledgment for a unicast connection.
    Ack {
        /// Port of the original sender being acked.
        port: PortId,
        /// Highest in-order sequence number received.
        seq: u64,
    },
    /// A multicast data packet (NIC-based scheme).
    Mcast {
        /// Group this packet belongs to.
        group: GroupId,
        /// Per-group Go-Back-N sequence number (same for all children).
        seq: u64,
        /// Byte offset within the multicast message.
        offset: u32,
        /// Total multicast message length.
        msg_len: u32,
        /// Message tag passed through to receivers.
        tag: u64,
        /// Root of the multicast operation (for delivery records).
        root: NodeId,
    },
    /// Cumulative acknowledgment from a child to its parent for a group.
    McastAck {
        /// Group being acked.
        group: GroupId,
        /// Highest in-order group sequence number received.
        seq: u64,
    },
    /// An extension control packet on a group (e.g. the NIC-level barrier's
    /// child-to-parent "subtree ready" token). Pure control: no payload, no
    /// receive buffer, delivered straight to the NIC extension.
    Ctl {
        /// Group the control message belongs to.
        group: GroupId,
        /// Extension-defined opcode.
        op: u8,
        /// Extension-defined sequence (e.g. barrier round).
        seq: u64,
        /// Extension-defined immediate (e.g. an allreduce partial value).
        value: u64,
    },
}

impl PacketKind {
    /// Whether this is any multicast-protocol packet (extension-handled).
    pub fn is_mcast(&self) -> bool {
        matches!(
            self,
            PacketKind::Mcast { .. } | PacketKind::McastAck { .. } | PacketKind::Ctl { .. }
        )
    }

    /// Whether this packet carries message payload (vs pure control).
    pub fn is_data(&self) -> bool {
        matches!(self, PacketKind::Data { .. } | PacketKind::Mcast { .. })
    }

    /// The sequence number carried, for logging and fault targeting.
    pub fn seq(&self) -> u64 {
        match *self {
            PacketKind::Data { seq, .. }
            | PacketKind::Ack { seq, .. }
            | PacketKind::Mcast { seq, .. }
            | PacketKind::McastAck { seq, .. }
            | PacketKind::Ctl { seq, .. } => seq,
        }
    }
}

/// One packet in flight on the fabric.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol content.
    pub kind: PacketKind,
    /// Payload bytes (empty for control packets).
    pub payload: Bytes,
}

impl Packet {
    /// Total size on the wire, including header.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload.len() as u64
    }

    /// Build an ack packet for a unicast connection.
    pub fn ack(src: NodeId, dst: NodeId, port: PortId, seq: u64) -> Packet {
        Packet {
            src,
            dst,
            kind: PacketKind::Ack { port, seq },
            payload: Bytes::new(),
        }
    }

    /// Build a multicast ack packet (child -> parent).
    pub fn mcast_ack(src: NodeId, dst: NodeId, group: GroupId, seq: u64) -> Packet {
        Packet {
            src,
            dst,
            kind: PacketKind::McastAck { group, seq },
            payload: Bytes::new(),
        }
    }

    /// Build an extension control packet.
    pub fn ctl(src: NodeId, dst: NodeId, group: GroupId, op: u8, seq: u64, value: u64) -> Packet {
        Packet {
            src,
            dst,
            kind: PacketKind::Ctl {
                group,
                op,
                seq,
                value,
            },
            payload: Bytes::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_includes_header() {
        let p = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            kind: PacketKind::Ack {
                port: PortId(0),
                seq: 3,
            },
            payload: Bytes::new(),
        };
        assert_eq!(p.wire_bytes(), HEADER_BYTES);
        let p2 = Packet {
            payload: Bytes::from(vec![0u8; 100]),
            ..p
        };
        assert_eq!(p2.wire_bytes(), HEADER_BYTES + 100);
    }

    #[test]
    fn kind_classification() {
        let data = PacketKind::Data {
            port: PortId(0),
            src_port: PortId(0),
            seq: 1,
            offset: 0,
            msg_len: 8,
            tag: 0,
        };
        let mc = PacketKind::Mcast {
            group: GroupId(1),
            seq: 2,
            offset: 0,
            msg_len: 8,
            tag: 0,
            root: NodeId(0),
        };
        let ack = PacketKind::Ack {
            port: PortId(0),
            seq: 5,
        };
        let mack = PacketKind::McastAck {
            group: GroupId(1),
            seq: 6,
        };
        assert!(data.is_data() && !data.is_mcast());
        assert!(mc.is_data() && mc.is_mcast());
        assert!(!ack.is_data() && !ack.is_mcast());
        assert!(!mack.is_data() && mack.is_mcast());
        assert_eq!(data.seq(), 1);
        assert_eq!(mc.seq(), 2);
        assert_eq!(ack.seq(), 5);
        assert_eq!(mack.seq(), 6);
    }

    #[test]
    fn display_ids() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(PortId(1).to_string(), "p1");
        assert_eq!(GroupId(9).to_string(), "g9");
    }
}
