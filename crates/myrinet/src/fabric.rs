//! The wormhole fabric timing model.
//!
//! Myrinet uses cut-through (wormhole) switching: a packet's head flit starts
//! crossing the next link as soon as the route is decoded, while its tail is
//! still being serialized links behind. We model each directed link as a
//! serially-reusable resource with a `busy_until` horizon:
//!
//! * head arrival at hop *i*: `a_i = start_{i-1} + wire_prop + hop_delay`
//! * link grant: `start_i = max(a_i, busy_until_i)` (contention)
//! * link release: `busy_until_i = start_i + serialization`
//! * delivery (tail at destination NIC): `start_last + wire_prop + serialization`
//!
//! This approximates true wormhole blocking (which holds every link of the
//! path simultaneously); for the paper's tree-ordered traffic the critical
//! path is identical. See DESIGN.md §7.

use gm_sim::{Counters, DetRng, SimDuration, SimTime};

use crate::fault::{DropReason, FaultPlan};
use crate::packet::Packet;
use crate::topology::{RouteTable, Topology};

/// Physical-layer timing constants.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Link bandwidth in bytes/second (Myrinet-2000: 2 Gb/s = 250 MB/s).
    pub link_bandwidth: u64,
    /// Routing decision + crossbar traversal per switch.
    pub hop_delay: SimDuration,
    /// Cable propagation per link.
    pub wire_prop: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            link_bandwidth: 250_000_000,
            hop_delay: SimDuration::from_nanos(300),
            wire_prop: SimDuration::from_nanos(100),
        }
    }
}

/// Outcome of injecting one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The packet's tail reaches the destination NIC at `at`; the source
    /// link is occupied until `src_free`.
    Delivered {
        /// Tail arrival at the destination NIC.
        at: SimTime,
        /// When the injection link drains (the sender may start its next
        /// packet's serialization then).
        src_free: SimTime,
    },
    /// The packet was lost (or delivered corrupt and discarded).
    Dropped {
        /// Why.
        reason: DropReason,
        /// The injection link is still occupied until this time (the wire
        /// was used even though delivery failed).
        src_free: SimTime,
    },
}

impl Verdict {
    /// When the sender's injection link frees up, regardless of fate.
    pub fn src_free(&self) -> SimTime {
        match *self {
            Verdict::Delivered { src_free, .. } | Verdict::Dropped { src_free, .. } => src_free,
        }
    }
}

/// The network: topology + per-link occupancy + faults + counters.
pub struct Fabric {
    topo: Topology,
    /// All routes interned once at construction; `inject` borrows slices from
    /// this table instead of allocating a `Vec<LinkId>` per packet.
    routes: RouteTable,
    params: NetParams,
    busy_until: Vec<SimTime>,
    /// Accumulated serialization time per link (for utilization reports).
    busy_time: Vec<SimDuration>,
    /// Total per-hop contention stall of the most recent `inject` (time the
    /// head spent waiting for busy links along the route).
    last_stall: SimDuration,
    faults: FaultPlan,
    rng: DetRng,
    counters: Counters,
}

impl Fabric {
    /// A fault-free fabric with default timing.
    pub fn new(topo: Topology, seed: u64) -> Fabric {
        Fabric::with_config(topo, NetParams::default(), FaultPlan::none(), seed)
    }

    /// Full configuration.
    pub fn with_config(topo: Topology, params: NetParams, faults: FaultPlan, seed: u64) -> Fabric {
        let n_links = topo.n_links();
        let routes = topo.route_table();
        Fabric {
            topo,
            routes,
            params,
            busy_until: vec![SimTime::ZERO; n_links],
            busy_time: vec![SimDuration::ZERO; n_links],
            last_stall: SimDuration::ZERO,
            faults,
            rng: DetRng::new(seed, "fabric-faults"),
            counters: Counters::new(),
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The interned route table (precomputed at construction).
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// Timing constants in use.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Protocol-visible counters (delivered, dropped, bytes...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Replace the fault plan mid-run (used by failure-injection tests).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Accumulated serialization time on link `id`.
    pub fn link_busy(&self, id: crate::topology::LinkId) -> SimDuration {
        self.busy_time[id.idx()]
    }

    /// Total contention stall of the most recent [`inject`](Self::inject):
    /// how long the packet's head waited for busy links along its route.
    /// Zero on an unloaded path. Read by the cluster's probe layer right
    /// after injecting to emit per-packet contention spans.
    pub fn last_inject_stall(&self) -> SimDuration {
        self.last_stall
    }

    /// The busiest link and its accumulated serialization time.
    pub fn hottest_link(&self) -> (crate::topology::LinkId, SimDuration) {
        let (idx, &busy) = self
            .busy_time
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| b)
            .expect("fabrics have links");
        (crate::topology::LinkId(idx as u32), busy)
    }

    /// Serialization time of `pkt` on one link.
    pub fn serialization(&self, pkt: &Packet) -> SimDuration {
        SimDuration::for_bytes(pkt.wire_bytes(), self.params.link_bandwidth)
    }

    /// Unloaded tail-arrival latency from `src` to `dst` for a packet of
    /// `wire_bytes` (used by tree construction to estimate delivery time).
    pub fn unloaded_latency(&self, hops: usize, wire_bytes: u64) -> SimDuration {
        let ser = SimDuration::for_bytes(wire_bytes, self.params.link_bandwidth);
        // Each link adds wire_prop; each intermediate switch adds hop_delay.
        let switches = hops.saturating_sub(1) as u64;
        self.params.wire_prop * hops as u64 + self.params.hop_delay * switches + ser
    }

    /// Inject `pkt` at `now` (the moment the NIC starts driving the wire).
    ///
    /// Reserves every link on the route and returns either the delivery time
    /// at the destination NIC or a drop verdict. The caller (the NIC model)
    /// must not start another transmission before `src_free`.
    // simlint::hot
    pub fn inject(&mut self, now: SimTime, pkt: &Packet) -> Verdict {
        // Borrowing the interned route (disjoint from the per-link state
        // mutated below) keeps this path allocation-free.
        let route = self.routes.route(pkt.src, pkt.dst);
        debug_assert!(!route.is_empty());
        let ser = SimDuration::for_bytes(pkt.wire_bytes(), self.params.link_bandwidth);

        // Head propagation with per-link contention.
        let mut head = now;
        let mut src_free = SimTime::ZERO;
        let mut stall = SimDuration::ZERO;
        for (i, link) in route.iter().enumerate() {
            let start = head.max(self.busy_until[link.idx()]);
            stall += start.saturating_since(head);
            self.busy_until[link.idx()] = start + ser;
            self.busy_time[link.idx()] += ser;
            if i == 0 {
                src_free = start + ser;
            }
            // Head reaches the far end of this link, then pays the routing
            // delay if another switch follows.
            head = start + self.params.wire_prop;
            if i + 1 < route.len() {
                head += self.params.hop_delay;
            }
        }
        let delivered_at = head + ser;
        self.last_stall = stall;
        if stall > SimDuration::ZERO {
            self.counters.add("stall_ns", stall.as_nanos());
        }

        self.counters.add("wire_bytes", pkt.wire_bytes());
        let draw = self.rng.unit();
        if let Some(reason) = self.faults.check(pkt, draw) {
            self.counters.bump(match reason {
                DropReason::Random => "dropped_random",
                DropReason::Rule(_) => "dropped_rule",
                DropReason::Corrupt => "dropped_corrupt",
            });
            return Verdict::Dropped { reason, src_free };
        }
        self.counters.bump("delivered");
        Verdict::Delivered {
            at: delivered_at,
            src_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DropRule;
    use crate::packet::{NodeId, PacketKind, PortId, HEADER_BYTES};
    use bytes::Bytes;

    fn pkt(src: u32, dst: u32, len: usize) -> Packet {
        Packet {
            src: NodeId(src),
            dst: NodeId(dst),
            kind: PacketKind::Data {
                port: PortId(0),
                src_port: PortId(0),
                seq: 0,
                offset: 0,
                msg_len: len as u32,
                tag: 0,
            },
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    fn fabric(n: u32) -> Fabric {
        Fabric::new(Topology::for_nodes(n), 1)
    }

    #[test]
    fn crossbar_latency_matches_formula() {
        let mut f = fabric(4);
        let p = pkt(0, 1, 1000);
        let ser = SimDuration::for_bytes(1000 + HEADER_BYTES, 250_000_000);
        match f.inject(SimTime::ZERO, &p) {
            Verdict::Delivered { at, src_free } => {
                // route: inject link + eject link = 2 links, 1 switch between.
                let expect = SimDuration::from_nanos(100) * 2
                    + SimDuration::from_nanos(300)
                    + ser;
                assert_eq!(at, SimTime::ZERO + expect);
                assert_eq!(src_free, SimTime::ZERO + ser);
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn unloaded_latency_agrees_with_inject() {
        let mut f = fabric(8);
        let p = pkt(2, 5, 512);
        let hops = f.topology().route(NodeId(2), NodeId(5)).len();
        let predicted = f.unloaded_latency(hops, p.wire_bytes());
        match f.inject(SimTime::ZERO, &p) {
            Verdict::Delivered { at, .. } => assert_eq!(at, SimTime::ZERO + predicted),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn same_source_serializes_on_inject_link() {
        let mut f = fabric(4);
        let p1 = pkt(0, 1, 4096);
        let p2 = pkt(0, 2, 4096);
        let v1 = f.inject(SimTime::ZERO, &p1);
        // Inject the second at t=0 as well: it must wait for the first to
        // drain off node 0's injection link.
        let v2 = f.inject(SimTime::ZERO, &p2);
        let (Verdict::Delivered { at: a1, src_free: f1 }, Verdict::Delivered { at: a2, .. }) =
            (v1, v2)
        else {
            panic!("drops unexpected")
        };
        assert!(a2 > a1);
        assert!(a2 >= f1 + SimDuration::from_nanos(1));
    }

    #[test]
    fn distinct_sources_do_not_contend_to_distinct_dsts() {
        let mut f = fabric(4);
        let v1 = f.inject(SimTime::ZERO, &pkt(0, 1, 4096));
        let v2 = f.inject(SimTime::ZERO, &pkt(2, 3, 4096));
        let (Verdict::Delivered { at: a1, .. }, Verdict::Delivered { at: a2, .. }) = (v1, v2)
        else {
            panic!()
        };
        assert_eq!(a1, a2, "independent paths should not interfere");
    }

    #[test]
    fn shared_destination_contends_on_eject_link() {
        let mut f = fabric(4);
        let v1 = f.inject(SimTime::ZERO, &pkt(0, 3, 4096));
        let v2 = f.inject(SimTime::ZERO, &pkt(1, 3, 4096));
        let (Verdict::Delivered { at: a1, .. }, Verdict::Delivered { at: a2, .. }) = (v1, v2)
        else {
            panic!()
        };
        assert!(a2 > a1, "second packet to same dst must queue on eject link");
    }

    #[test]
    fn drops_still_occupy_source_link() {
        let topo = Topology::for_nodes(2);
        let faults = FaultPlan {
            rules: vec![DropRule::data_between(NodeId(0), NodeId(1), 1)],
            ..FaultPlan::default()
        };
        let mut f = Fabric::with_config(topo, NetParams::default(), faults, 7);
        match f.inject(SimTime::ZERO, &pkt(0, 1, 4096)) {
            Verdict::Dropped { src_free, .. } => {
                assert!(src_free > SimTime::ZERO);
            }
            v => panic!("expected drop, got {v:?}"),
        }
        assert_eq!(f.counters().get("dropped_rule"), 1);
        // Next packet goes through.
        assert!(matches!(
            f.inject(SimTime::from_nanos(50_000), &pkt(0, 1, 4096)),
            Verdict::Delivered { .. }
        ));
    }

    #[test]
    fn random_loss_rate_approximately_holds() {
        let topo = Topology::for_nodes(2);
        let mut f = Fabric::with_config(
            topo,
            NetParams::default(),
            FaultPlan::with_loss(0.2),
            42,
        );
        let mut t = SimTime::ZERO;
        let mut drops = 0;
        for _ in 0..2000 {
            if matches!(f.inject(t, &pkt(0, 1, 64)), Verdict::Dropped { .. }) {
                drops += 1;
            }
            t += SimDuration::from_micros(10);
        }
        let rate = drops as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    fn link_busy_accumulates_serialization() {
        let mut f = fabric(4);
        let p = pkt(0, 1, 4096);
        let ser = f.serialization(&p);
        f.inject(SimTime::ZERO, &p);
        f.inject(SimTime::ZERO, &p);
        let inject_link = f.topology().route(NodeId(0), NodeId(1))[0];
        assert_eq!(f.link_busy(inject_link), ser * 2);
        let (hot, busy) = f.hottest_link();
        assert_eq!(busy, ser * 2);
        assert!(hot == inject_link || f.link_busy(hot) == busy);
    }

    #[test]
    fn clos_cross_leaf_slower_than_same_leaf() {
        let mut f = fabric(64);
        let Verdict::Delivered { at: near, .. } = f.inject(SimTime::ZERO, &pkt(0, 1, 64)) else {
            panic!()
        };
        let Verdict::Delivered { at: far, .. } = f.inject(SimTime::ZERO, &pkt(8, 63, 64)) else {
            panic!()
        };
        assert!(far > near);
    }
}
