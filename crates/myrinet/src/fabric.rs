//! The wormhole fabric timing model.
//!
//! Myrinet uses cut-through (wormhole) switching: a packet's head flit starts
//! crossing the next link as soon as the route is decoded, while its tail is
//! still being serialized links behind. We model each directed link as a
//! serially-reusable resource with a `busy_until` horizon:
//!
//! * head arrival at hop *i*: `a_i = start_{i-1} + wire_prop + hop_delay`
//! * link grant: `start_i = max(a_i, busy_until_i)` (contention)
//! * link release: `busy_until_i = start_i + serialization`
//! * delivery (tail at destination NIC): `start_last + wire_prop + serialization`
//!
//! This approximates true wormhole blocking (which holds every link of the
//! path simultaneously); for the paper's tree-ordered traffic the critical
//! path is identical. See DESIGN.md §7.

use gm_sim::{splitmix64, Counters, SimDuration, SimTime};

use crate::fault::{DropReason, FaultPlan};
use crate::packet::{NodeId, Packet};
use crate::topology::{LinkId, RouteTable, Topology};

/// Physical-layer timing constants.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Link bandwidth in bytes/second (Myrinet-2000: 2 Gb/s = 250 MB/s).
    pub link_bandwidth: u64,
    /// Routing decision + crossbar traversal per switch.
    pub hop_delay: SimDuration,
    /// Cable propagation per link.
    pub wire_prop: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            link_bandwidth: 250_000_000,
            hop_delay: SimDuration::from_nanos(300),
            wire_prop: SimDuration::from_nanos(100),
        }
    }
}

impl NetParams {
    /// The minimum time between a packet's injection and its head reaching
    /// the first link beyond the injection segment: one cable propagation
    /// plus one switch traversal, with contention only adding to it. This is
    /// the fabric's intrinsic *lookahead* — the conservative window width
    /// parallel execution may use (see `gm_sim::parallel`).
    pub fn min_wire_latency(&self) -> SimDuration {
        self.wire_prop + self.hop_delay
    }
}

/// A packet in flight across the route's ownership boundary: the
/// source-owned links (injection, and the leaf up-link on cross-leaf Clos
/// routes) are already reserved by [`Fabric::tx_stage`]; the head reaches
/// the first destination-owned link at `head_at`, where
/// [`Fabric::rx_stage`] finishes the route.
#[derive(Clone, Debug)]
pub struct WireHandoff {
    /// The packet (owns the payload across the boundary).
    pub pkt: Packet,
    /// Head arrival at the first destination-owned link.
    pub head_at: SimTime,
    /// Per-source injection sequence number; `(head_at, src, wire_seq)` is
    /// the canonical, mode-independent ordering key for boundary arrivals.
    pub wire_seq: u64,
}

/// Outcome of [`Fabric::tx_stage`].
#[derive(Debug)]
pub struct TxVerdict {
    /// When the injection link drains (the sender may start its next
    /// packet's serialization then).
    pub src_free: SimTime,
    /// The boundary hand-off to finish with [`Fabric::rx_stage`].
    pub handoff: WireHandoff,
}

/// Outcome of [`Fabric::rx_stage`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxOutcome {
    /// The packet's tail reaches the destination NIC at `at`.
    Delivered {
        /// Tail arrival at the destination NIC.
        at: SimTime,
    },
    /// The packet was lost (or delivered corrupt and discarded). The links
    /// were still occupied.
    Dropped {
        /// Why.
        reason: DropReason,
    },
}

/// Outcome of injecting one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The packet's tail reaches the destination NIC at `at`; the source
    /// link is occupied until `src_free`.
    Delivered {
        /// Tail arrival at the destination NIC.
        at: SimTime,
        /// When the injection link drains (the sender may start its next
        /// packet's serialization then).
        src_free: SimTime,
    },
    /// The packet was lost (or delivered corrupt and discarded).
    Dropped {
        /// Why.
        reason: DropReason,
        /// The injection link is still occupied until this time (the wire
        /// was used even though delivery failed).
        src_free: SimTime,
    },
}

impl Verdict {
    /// When the sender's injection link frees up, regardless of fate.
    pub fn src_free(&self) -> SimTime {
        match *self {
            Verdict::Delivered { src_free, .. } | Verdict::Dropped { src_free, .. } => src_free,
        }
    }
}

/// The network: topology + per-link occupancy + faults + counters.
///
/// `Clone` exists for sharded runs: each shard clones the (fresh) fabric and
/// thereafter touches only the link state its nodes own, so the clones never
/// diverge on shared state. Counters are merged at the end of the run.
#[derive(Clone)]
pub struct Fabric {
    topo: Topology,
    /// All routes interned once at construction; `inject` borrows slices from
    /// this table instead of allocating a `Vec<LinkId>` per packet.
    routes: RouteTable,
    params: NetParams,
    busy_until: Vec<SimTime>,
    /// Accumulated serialization time per link (for utilization reports).
    busy_time: Vec<SimDuration>,
    /// Total per-hop contention stall of the most recent `inject` /
    /// `tx_stage` / `rx_stage` (time the head spent waiting for busy links
    /// along the reserved segment).
    last_stall: SimDuration,
    faults: FaultPlan,
    /// Seed for the stateless per-packet fault draw: the drop decision for a
    /// packet is a pure function of `(fault_seed, src, wire_seq)`, so it does
    /// not depend on the global interleaving of injections — a prerequisite
    /// for sharded execution matching the sequential reference bit-for-bit.
    fault_seed: u64,
    /// Per-source injection counter feeding the fault draw and the canonical
    /// `(head_at, src, wire_seq)` boundary ordering key.
    wire_seq: Vec<u64>,
    counters: Counters,
}

impl Fabric {
    /// A fault-free fabric with default timing.
    pub fn new(topo: Topology, seed: u64) -> Fabric {
        Fabric::with_config(topo, NetParams::default(), FaultPlan::none(), seed)
    }

    /// Full configuration.
    pub fn with_config(topo: Topology, params: NetParams, faults: FaultPlan, seed: u64) -> Fabric {
        let n_links = topo.n_links();
        let n_nodes = topo.n_nodes();
        let routes = topo.route_table();
        Fabric {
            topo,
            routes,
            params,
            busy_until: vec![SimTime::ZERO; n_links],
            busy_time: vec![SimDuration::ZERO; n_links],
            last_stall: SimDuration::ZERO,
            faults,
            fault_seed: splitmix64(seed ^ 0x6661_6272_6963_2d66), // "fabric-f"
            wire_seq: vec![0; n_nodes as usize],
            counters: Counters::new(),
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The interned route table (precomputed at construction).
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// Timing constants in use.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Protocol-visible counters (delivered, dropped, bytes...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Replace the fault plan mid-run (used by failure-injection tests).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The fault plan in use.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Accumulated serialization time on link `id`.
    pub fn link_busy(&self, id: crate::topology::LinkId) -> SimDuration {
        self.busy_time[id.idx()]
    }

    /// Total contention stall of the most recent [`inject`](Self::inject):
    /// how long the packet's head waited for busy links along its route.
    /// Zero on an unloaded path. Read by the cluster's probe layer right
    /// after injecting to emit per-packet contention spans.
    pub fn last_inject_stall(&self) -> SimDuration {
        self.last_stall
    }

    /// The busiest link and its accumulated serialization time.
    pub fn hottest_link(&self) -> (crate::topology::LinkId, SimDuration) {
        let (idx, &busy) = self
            .busy_time
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| b)
            .expect("fabrics have links");
        (crate::topology::LinkId(idx as u32), busy)
    }

    /// Serialization time of `pkt` on one link.
    pub fn serialization(&self, pkt: &Packet) -> SimDuration {
        SimDuration::for_bytes(pkt.wire_bytes(), self.params.link_bandwidth)
    }

    /// Unloaded tail-arrival latency from `src` to `dst` for a packet of
    /// `wire_bytes` (used by tree construction to estimate delivery time).
    pub fn unloaded_latency(&self, hops: usize, wire_bytes: u64) -> SimDuration {
        let ser = SimDuration::for_bytes(wire_bytes, self.params.link_bandwidth);
        // Each link adds wire_prop; each intermediate switch adds hop_delay.
        let switches = hops.saturating_sub(1) as u64;
        self.params.wire_prop * hops as u64 + self.params.hop_delay * switches + ser
    }

    /// Inject `pkt` at `now` (the moment the NIC starts driving the wire).
    ///
    /// Reserves every link on the route and returns either the delivery time
    /// at the destination NIC or a drop verdict. The caller (the NIC model)
    /// must not start another transmission before `src_free`.
    ///
    /// Equivalent to [`tx_stage`](Self::tx_stage) followed immediately by
    /// [`rx_stage`](Self::rx_stage): the sequential engine runs both
    /// back-to-back (via the cluster's wire buffer), the sharded engine runs
    /// them on the source and destination shard respectively.
    pub fn inject(&mut self, now: SimTime, pkt: &Packet) -> Verdict {
        let tx = self.tx_stage(now, pkt.clone());
        let tx_stall = self.last_stall;
        let out = self.rx_stage(&tx.handoff);
        self.last_stall += tx_stall;
        match out {
            RxOutcome::Delivered { at } => Verdict::Delivered {
                at,
                src_free: tx.src_free,
            },
            RxOutcome::Dropped { reason } => Verdict::Dropped {
                reason,
                src_free: tx.src_free,
            },
        }
    }

    /// Stage 1 of a transfer: reserve the source-owned half of the route
    /// (the injection link, plus the up-link on cross-leaf Clos routes) and
    /// compute when the head crosses into the destination-owned half.
    ///
    /// Touches only state owned by `pkt.src`'s side of the route, so under a
    /// leaf-aligned sharding it may run concurrently with any other shard.
    // simlint::hot
    pub fn tx_stage(&mut self, now: SimTime, pkt: Packet) -> TxVerdict {
        let (links, len) = self.route_array(pkt.src, pkt.dst);
        let cut = len / 2;
        let ser = SimDuration::for_bytes(pkt.wire_bytes(), self.params.link_bandwidth);
        let (head_at, src_free) = self.reserve_segment(&links, 0, cut, len, now, ser);
        self.counters.add("wire_bytes", pkt.wire_bytes());
        let wire_seq = self.wire_seq[pkt.src.idx()];
        self.wire_seq[pkt.src.idx()] += 1;
        TxVerdict {
            src_free,
            handoff: WireHandoff {
                pkt,
                head_at,
                wire_seq,
            },
        }
    }

    /// Stage 2 of a transfer: at `handoff.head_at`, reserve the
    /// destination-owned half of the route, decide the packet's fate, and
    /// return the tail-arrival time (or drop reason).
    ///
    /// Touches only state owned by `pkt.dst`'s side of the route. The fault
    /// draw is a pure function of `(fault_seed, src, wire_seq)`, so the
    /// verdict is identical no matter which engine (or shard) runs it.
    // simlint::hot
    pub fn rx_stage(&mut self, handoff: &WireHandoff) -> RxOutcome {
        let pkt = &handoff.pkt;
        let (links, len) = self.route_array(pkt.src, pkt.dst);
        let cut = len / 2;
        let ser = SimDuration::for_bytes(pkt.wire_bytes(), self.params.link_bandwidth);
        let (head, _) = self.reserve_segment(&links, cut, len, len, handoff.head_at, ser);
        let delivered_at = head + ser;
        let draw = self.fault_draw(pkt.src, handoff.wire_seq);
        if let Some(reason) = self.faults.check(pkt, draw) {
            self.counters.bump(match reason {
                DropReason::Random => "dropped_random",
                DropReason::Rule(_) => "dropped_rule",
                DropReason::Corrupt => "dropped_corrupt",
            });
            return RxOutcome::Dropped { reason };
        }
        self.counters.bump("delivered");
        RxOutcome::Delivered { at: delivered_at }
    }

    /// The per-packet loss draw: a splitmix64 chain over the seed, source,
    /// and that source's injection sequence number. Stateless by design —
    /// unlike an ordered RNG stream, the draw for packet `k` from node `s`
    /// does not depend on how injections from other nodes interleave.
    fn fault_draw(&self, src: NodeId, wire_seq: u64) -> f64 {
        let z = splitmix64(splitmix64(self.fault_seed ^ u64::from(src.0)) ^ wire_seq);
        // Top 53 bits -> uniform in [0, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Copy the interned route into a fixed array so `&mut self` methods can
    /// walk it while mutating per-link state. Routes are at most 4 links
    /// (inject, up, down, eject on cross-leaf Clos paths).
    #[inline]
    fn route_array(&self, src: NodeId, dst: NodeId) -> ([LinkId; 4], usize) {
        let route = self.routes.route(src, dst);
        debug_assert!(!route.is_empty() && route.len() <= 4);
        let mut links = [LinkId(0); 4];
        links[..route.len()].copy_from_slice(route);
        (links, route.len())
    }

    /// Reserve `links[lo..hi]` of a route of `route_len` links, starting
    /// with the head at `head`. `lo..hi` are global route indices, so the
    /// final hop of the *route* (not of the segment) correctly omits
    /// `hop_delay`. Returns the head time past the segment and the
    /// free-time of the segment's first link; updates `last_stall` with the
    /// contention encountered in this segment.
    // simlint::hot
    fn reserve_segment(
        &mut self,
        links: &[LinkId],
        lo: usize,
        hi: usize,
        route_len: usize,
        mut head: SimTime,
        ser: SimDuration,
    ) -> (SimTime, SimTime) {
        let mut first_free = SimTime::ZERO;
        let mut stall = SimDuration::ZERO;
        for (i, &link) in links.iter().enumerate().take(hi).skip(lo) {
            let start = head.max(self.busy_until[link.idx()]);
            stall += start.saturating_since(head);
            self.busy_until[link.idx()] = start + ser;
            self.busy_time[link.idx()] += ser;
            if i == lo {
                first_free = start + ser;
            }
            // Head reaches the far end of this link, then pays the routing
            // delay if another switch follows.
            head = start + self.params.wire_prop;
            if i + 1 < route_len {
                head += self.params.hop_delay;
            }
        }
        self.last_stall = stall;
        if stall > SimDuration::ZERO {
            self.counters.add("stall_ns", stall.as_nanos());
        }
        (head, first_free)
    }

    /// The minimum boundary offset over all cross-shard `(src, dst)` pairs:
    /// the earliest a packet injected "now" on one shard can require state
    /// owned by another. This is the *lookahead* a windowed parallel run may
    /// safely use. `None` if no pair crosses shards (single shard).
    pub fn cross_lookahead(&self, shard_of: &[u32]) -> Option<SimDuration> {
        let n = self.topo.n_nodes();
        debug_assert_eq!(shard_of.len(), n as usize);
        let mut min: Option<SimDuration> = None;
        for src in 0..n {
            for dst in 0..n {
                if src == dst || shard_of[src as usize] == shard_of[dst as usize] {
                    continue;
                }
                let route = self.routes.route(NodeId(src), NodeId(dst));
                let cut = route.len() / 2;
                // Unloaded head offset through the TX-owned segment:
                // each of the `cut` links pays wire_prop + hop_delay
                // (a switch always follows, since cut < route.len()).
                let off = (self.params.wire_prop + self.params.hop_delay) * cut as u64;
                min = Some(match min {
                    Some(m) if m <= off => m,
                    _ => off,
                });
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DropRule;
    use crate::packet::{NodeId, PacketKind, PortId, HEADER_BYTES};
    use bytes::Bytes;

    fn pkt(src: u32, dst: u32, len: usize) -> Packet {
        Packet {
            src: NodeId(src),
            dst: NodeId(dst),
            kind: PacketKind::Data {
                port: PortId(0),
                src_port: PortId(0),
                seq: 0,
                offset: 0,
                msg_len: len as u32,
                tag: 0,
            },
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    fn fabric(n: u32) -> Fabric {
        Fabric::new(Topology::for_nodes(n), 1)
    }

    #[test]
    fn crossbar_latency_matches_formula() {
        let mut f = fabric(4);
        let p = pkt(0, 1, 1000);
        let ser = SimDuration::for_bytes(1000 + HEADER_BYTES, 250_000_000);
        match f.inject(SimTime::ZERO, &p) {
            Verdict::Delivered { at, src_free } => {
                // route: inject link + eject link = 2 links, 1 switch between.
                let expect = SimDuration::from_nanos(100) * 2
                    + SimDuration::from_nanos(300)
                    + ser;
                assert_eq!(at, SimTime::ZERO + expect);
                assert_eq!(src_free, SimTime::ZERO + ser);
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn unloaded_latency_agrees_with_inject() {
        let mut f = fabric(8);
        let p = pkt(2, 5, 512);
        let hops = f.topology().route(NodeId(2), NodeId(5)).len();
        let predicted = f.unloaded_latency(hops, p.wire_bytes());
        match f.inject(SimTime::ZERO, &p) {
            Verdict::Delivered { at, .. } => assert_eq!(at, SimTime::ZERO + predicted),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn same_source_serializes_on_inject_link() {
        let mut f = fabric(4);
        let p1 = pkt(0, 1, 4096);
        let p2 = pkt(0, 2, 4096);
        let v1 = f.inject(SimTime::ZERO, &p1);
        // Inject the second at t=0 as well: it must wait for the first to
        // drain off node 0's injection link.
        let v2 = f.inject(SimTime::ZERO, &p2);
        let (Verdict::Delivered { at: a1, src_free: f1 }, Verdict::Delivered { at: a2, .. }) =
            (v1, v2)
        else {
            panic!("drops unexpected")
        };
        assert!(a2 > a1);
        assert!(a2 >= f1 + SimDuration::from_nanos(1));
    }

    #[test]
    fn distinct_sources_do_not_contend_to_distinct_dsts() {
        let mut f = fabric(4);
        let v1 = f.inject(SimTime::ZERO, &pkt(0, 1, 4096));
        let v2 = f.inject(SimTime::ZERO, &pkt(2, 3, 4096));
        let (Verdict::Delivered { at: a1, .. }, Verdict::Delivered { at: a2, .. }) = (v1, v2)
        else {
            panic!()
        };
        assert_eq!(a1, a2, "independent paths should not interfere");
    }

    #[test]
    fn shared_destination_contends_on_eject_link() {
        let mut f = fabric(4);
        let v1 = f.inject(SimTime::ZERO, &pkt(0, 3, 4096));
        let v2 = f.inject(SimTime::ZERO, &pkt(1, 3, 4096));
        let (Verdict::Delivered { at: a1, .. }, Verdict::Delivered { at: a2, .. }) = (v1, v2)
        else {
            panic!()
        };
        assert!(a2 > a1, "second packet to same dst must queue on eject link");
    }

    #[test]
    fn drops_still_occupy_source_link() {
        let topo = Topology::for_nodes(2);
        let faults = FaultPlan {
            rules: vec![DropRule::data_between(NodeId(0), NodeId(1), 1)],
            ..FaultPlan::default()
        };
        let mut f = Fabric::with_config(topo, NetParams::default(), faults, 7);
        match f.inject(SimTime::ZERO, &pkt(0, 1, 4096)) {
            Verdict::Dropped { src_free, .. } => {
                assert!(src_free > SimTime::ZERO);
            }
            v => panic!("expected drop, got {v:?}"),
        }
        assert_eq!(f.counters().get("dropped_rule"), 1);
        // Next packet goes through.
        assert!(matches!(
            f.inject(SimTime::from_nanos(50_000), &pkt(0, 1, 4096)),
            Verdict::Delivered { .. }
        ));
    }

    #[test]
    fn random_loss_rate_approximately_holds() {
        let topo = Topology::for_nodes(2);
        let mut f = Fabric::with_config(
            topo,
            NetParams::default(),
            FaultPlan::with_loss(0.2),
            42,
        );
        let mut t = SimTime::ZERO;
        let mut drops = 0;
        for _ in 0..2000 {
            if matches!(f.inject(t, &pkt(0, 1, 64)), Verdict::Dropped { .. }) {
                drops += 1;
            }
            t += SimDuration::from_micros(10);
        }
        let rate = drops as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    fn link_busy_accumulates_serialization() {
        let mut f = fabric(4);
        let p = pkt(0, 1, 4096);
        let ser = f.serialization(&p);
        f.inject(SimTime::ZERO, &p);
        f.inject(SimTime::ZERO, &p);
        let inject_link = f.topology().route(NodeId(0), NodeId(1))[0];
        assert_eq!(f.link_busy(inject_link), ser * 2);
        let (hot, busy) = f.hottest_link();
        assert_eq!(busy, ser * 2);
        assert!(hot == inject_link || f.link_busy(hot) == busy);
    }

    #[test]
    fn two_stage_matches_atomic_inject() {
        // Replaying the same injection schedule through explicit tx/rx
        // stages must reproduce the atomic verdicts exactly (inject is
        // defined as tx_stage + rx_stage back-to-back).
        let schedule = [(0u32, 1u32, 0u64), (2, 1, 0), (0, 3, 200), (1, 0, 900)];
        let mut atomic = fabric(4);
        let mut staged = fabric(4);
        for &(s, d, t_ns) in &schedule {
            let t = SimTime::from_nanos(t_ns);
            let p = pkt(s, d, 1500);
            let v = atomic.inject(t, &p);
            let tx = staged.tx_stage(t, p.clone());
            let rx = staged.rx_stage(&tx.handoff);
            match (v, rx) {
                (Verdict::Delivered { at, src_free }, RxOutcome::Delivered { at: at2 }) => {
                    assert_eq!(at, at2);
                    assert_eq!(src_free, tx.src_free);
                }
                (v, rx) => panic!("verdicts diverge: {v:?} vs {rx:?}"),
            }
        }
        assert_eq!(
            atomic.counters().get("delivered"),
            staged.counters().get("delivered")
        );
        assert_eq!(
            atomic.counters().get("stall_ns"),
            staged.counters().get("stall_ns")
        );
    }

    #[test]
    fn fault_draw_is_stateless_per_packet() {
        // The drop fate of (src, wire_seq) must not depend on what other
        // sources injected in between — the property that lets shards decide
        // fates independently.
        let topo = Topology::for_nodes(4);
        let plan = || FaultPlan::with_loss(0.5);
        let mut a = Fabric::with_config(topo.clone(), NetParams::default(), plan(), 42);
        let mut b = Fabric::with_config(topo.clone(), NetParams::default(), plan(), 42);
        let mut t = SimTime::ZERO;
        let mut fates_a = Vec::new();
        for i in 0..64 {
            // `a` interleaves node 2's traffic between node 0's packets.
            let _ = a.inject(t, &pkt(2, 3, 64));
            fates_a.push(matches!(a.inject(t, &pkt(0, 1, 64)), Verdict::Dropped { .. }));
            t += SimDuration::from_micros(10 * (i + 1));
        }
        let mut t = SimTime::ZERO;
        for (i, &fate) in fates_a.iter().enumerate() {
            let got = matches!(b.inject(t, &pkt(0, 1, 64)), Verdict::Dropped { .. });
            assert_eq!(got, fate, "packet {i} fate changed with interleaving");
            t += SimDuration::from_micros(10 * (i as u64 + 1));
        }
    }

    #[test]
    fn cross_lookahead_matches_boundary_offsets() {
        // Crossbar: boundary after the inject link = wire + hop.
        let f = fabric(4);
        let shard_of = f.topology().partition(2);
        assert_eq!(
            f.cross_lookahead(&shard_of),
            Some(SimDuration::from_nanos(400))
        );
        // Leaf-aligned Clos: every cross-shard pair is cross-leaf, boundary
        // after inject + up = 2 * (wire + hop).
        let f = fabric(64);
        let shard_of = f.topology().partition(4);
        assert_eq!(
            f.cross_lookahead(&shard_of),
            Some(SimDuration::from_nanos(800))
        );
        // Single shard: nothing crosses.
        assert_eq!(f.cross_lookahead(&vec![0; 64]), None);
    }

    #[test]
    fn clos_cross_leaf_slower_than_same_leaf() {
        let mut f = fabric(64);
        let Verdict::Delivered { at: near, .. } = f.inject(SimTime::ZERO, &pkt(0, 1, 64)) else {
            panic!()
        };
        let Verdict::Delivered { at: far, .. } = f.inject(SimTime::ZERO, &pkt(8, 63, 64)) else {
            panic!()
        };
        assert!(far > near);
    }
}
