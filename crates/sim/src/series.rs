//! `sim::series` — deterministic time-series telemetry.
//!
//! Gauges are step functions over simulated time: send/receive token
//! occupancy, NIC SRAM buffer usage, PCI and injection-link utilization,
//! event-queue depth. A [`SeriesSink`] records one [`SeriesPoint`] per
//! *change* of a `(node, gauge)` pair (consecutive equal samples are
//! deduplicated), so the stored stream is exactly the step function and is
//! byte-identical however often a site samples.
//!
//! The discipline matches `sim::probe`:
//!
//! * **zero-cost when disabled** — [`SeriesSink::record`] is one branch and
//!   never allocates on a disabled sink;
//! * **bounded** — points land in a ring pre-allocated at construction;
//!   overflow bumps a `dropped` counter instead of growing;
//! * **canonical merge** — per-shard sinks merge by a stable sort on
//!   `(time, node, gauge)`, and since every `(node, gauge)` pair is owned
//!   by exactly one shard, the merged stream is identical at any shard
//!   count.
//!
//! [`SeriesSink::summarize`] folds the step functions into per-gauge
//! [`GaugeSummary`] rows: min/max/last, a time-weighted mean, and a
//! fixed-width histogram of time spent at each value band.

use crate::time::SimTime;

/// What a run samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesConfig {
    enabled: bool,
    capacity: usize,
}

impl SeriesConfig {
    /// Default ring capacity of [`SeriesConfig::on`].
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    /// Sample nothing; every gauge site reduces to one branch.
    pub const fn off() -> Self {
        SeriesConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Sample gauges into a ring of the default capacity.
    pub const fn on() -> Self {
        SeriesConfig {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Sample gauges into a ring of `capacity` points.
    pub const fn with_capacity(capacity: usize) -> Self {
        SeriesConfig {
            enabled: capacity > 0,
            capacity,
        }
    }

    /// Whether anything is sampled.
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for SeriesConfig {
    fn default() -> Self {
        SeriesConfig::off()
    }
}

/// One gauge transition: `(node, gauge)` took `value` at `time`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Simulated time of the transition.
    pub time: SimTime,
    /// Total order among equal timestamps (per sink; renumbered on merge).
    pub seq: u64,
    /// Node the gauge belongs to (shard index for execution gauges).
    pub node: u32,
    /// Static gauge name. Gauges prefixed `exec_` describe the *execution*
    /// (queue depths, shard scheduling) and are allowed to differ between
    /// sequential and sharded runs; all others are simulation state and
    /// must be mode-independent.
    pub gauge: &'static str,
    /// The new value.
    pub value: u64,
}

/// Number of fixed-width value bands in a [`GaugeSummary`] histogram.
pub const HIST_BINS: usize = 8;

/// Summary of one `(node, gauge)` step function over `[0, end]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeSummary {
    /// Gauge name.
    pub gauge: &'static str,
    /// Owning node.
    pub node: u32,
    /// Smallest value taken.
    pub min: u64,
    /// Largest value taken.
    pub max: u64,
    /// Value at `end`.
    pub last: u64,
    /// Time-weighted mean, scaled by 1000 (integer, deterministic).
    pub mean_x1000: u64,
    /// Nanoseconds spent in each of [`HIST_BINS`] equal value bands of
    /// `[min, max]` (all in bin 0 when `min == max`). Sums to the observed
    /// span (first transition to `end`).
    pub hist: [u64; HIST_BINS],
}

/// The ring-buffer sink gauge transitions land in.
#[derive(Clone, Debug, Default)]
pub struct SeriesSink {
    config: SeriesConfig,
    points: Vec<SeriesPoint>,
    head: usize,
    seq: u64,
    dropped: u64,
    /// Last value per `(node, gauge)` — the dedup filter. Linear scan: the
    /// key population is nodes × gauge kinds, a few hundred at most.
    last: Vec<((u32, &'static str), u64)>,
}

impl SeriesSink {
    /// A sink for `config` (pre-allocates the ring iff enabled).
    pub fn new(config: SeriesConfig) -> Self {
        let points = if config.is_enabled() {
            Vec::with_capacity(config.capacity)
        } else {
            Vec::new()
        };
        SeriesSink {
            config,
            points,
            head: 0,
            seq: 0,
            dropped: 0,
            last: Vec::new(),
        }
    }

    /// A disabled sink (the default for clusters).
    pub fn disabled() -> Self {
        SeriesSink::new(SeriesConfig::off())
    }

    /// Whether samples are kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration in use.
    pub fn config(&self) -> SeriesConfig {
        self.config
    }

    /// Sample `(node, gauge) = value` at `time`. Free (one branch) when
    /// disabled; a no-op when the value is unchanged; otherwise a ring
    /// write (overflow bumps [`SeriesSink::dropped`], never grows).
    #[inline]
    pub fn record(&mut self, time: SimTime, node: u32, gauge: &'static str, value: u64) {
        if !self.config.enabled {
            return;
        }
        match self.last.iter_mut().find(|(k, _)| *k == (node, gauge)) {
            Some((_, v)) if *v == value => return,
            Some((_, v)) => *v = value,
            None => self.last.push(((node, gauge), value)),
        }
        let p = SeriesPoint {
            time,
            seq: self.seq,
            node,
            gauge,
            value,
        };
        self.seq += 1;
        if self.points.len() < self.config.capacity {
            self.points.push(p);
        } else {
            self.points[self.head] = p;
            self.head = (self.head + 1) % self.config.capacity;
            self.dropped += 1;
        }
    }

    /// Recorded transitions, oldest first (ring rotation already applied).
    pub fn iter(&self) -> impl Iterator<Item = &SeriesPoint> + Clone + '_ {
        let (tail, front) = self.points.split_at(self.head.min(self.points.len()));
        front.iter().chain(tail.iter())
    }

    /// Number of transitions currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing was sampled (or the sink is disabled).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Ring slots actually allocated (0 for a disabled sink).
    pub fn allocated_capacity(&self) -> usize {
        self.points.capacity()
    }

    /// Transitions overwritten because the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merge per-shard sinks into one canonical stream: stable sort by
    /// `(time, node, gauge)` (preserving each sink's internal order), then
    /// renumber. Every `(node, gauge)` pair is sampled by exactly one
    /// shard, so the merged stream is independent of the sharding.
    pub fn merge_canonical(sinks: Vec<SeriesSink>) -> SeriesSink {
        let enabled = sinks.iter().any(SeriesSink::is_enabled);
        let capacity: usize = sinks.iter().map(|s| s.config.capacity).sum();
        let dropped: u64 = sinks.iter().map(|s| s.dropped).sum();
        let mut points: Vec<SeriesPoint> =
            Vec::with_capacity(sinks.iter().map(SeriesSink::len).sum());
        for sink in &sinks {
            points.extend(sink.iter().copied());
        }
        points.sort_by_key(|p| (p.time, p.node, p.gauge));
        for (i, p) in points.iter_mut().enumerate() {
            p.seq = i as u64;
        }
        let seq = points.len() as u64;
        SeriesSink {
            config: SeriesConfig {
                enabled,
                capacity: capacity.max(points.len()),
            },
            points,
            head: 0,
            seq,
            dropped,
            last: Vec::new(),
        }
    }

    /// Fold every `(node, gauge)` step function into a [`GaugeSummary`],
    /// sorted by `(gauge, node)`. Each function is evaluated from its first
    /// transition to `end`.
    pub fn summarize(&self, end: SimTime) -> Vec<GaugeSummary> {
        // Group points per (gauge, node), preserving time order.
        let mut keys: Vec<(&'static str, u32)> = Vec::new();
        for p in self.iter() {
            if !keys.contains(&(p.gauge, p.node)) {
                keys.push((p.gauge, p.node));
            }
        }
        keys.sort();
        let mut out = Vec::with_capacity(keys.len());
        for (gauge, node) in keys {
            let pts: Vec<&SeriesPoint> = self
                .iter()
                .filter(|p| p.gauge == gauge && p.node == node)
                .collect();
            let min = pts.iter().map(|p| p.value).min().unwrap_or(0);
            let max = pts.iter().map(|p| p.value).max().unwrap_or(0);
            let last = pts.last().map_or(0, |p| p.value);
            // Durations at each value: from each transition to the next
            // (or to `end`).
            let mut weighted: u128 = 0;
            let mut span: u64 = 0;
            let mut hist = [0u64; HIST_BINS];
            for (i, p) in pts.iter().enumerate() {
                let until = pts
                    .get(i + 1)
                    .map_or(end, |n| n.time)
                    .max(p.time);
                let dur = until.as_nanos().saturating_sub(p.time.as_nanos());
                if dur == 0 {
                    continue;
                }
                weighted += u128::from(dur) * u128::from(p.value);
                span += dur;
                let bin = if max == min {
                    0
                } else {
                    // Fixed-width bands over [min, max], top value inclusive.
                    (((p.value - min) * HIST_BINS as u64) / (max - min + 1)) as usize
                };
                hist[bin.min(HIST_BINS - 1)] += dur;
            }
            let mean_x1000 = if span == 0 {
                last * 1000
            } else {
                ((weighted * 1000) / u128::from(span)) as u64
            };
            out.push(GaugeSummary {
                gauge,
                node,
                min,
                max,
                last,
                mean_x1000,
                hist,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_sink_records_nothing_and_allocates_nothing() {
        let mut s = SeriesSink::disabled();
        for i in 0..10_000 {
            s.record(at(i), 0, "tokens", i);
        }
        assert!(s.is_empty());
        assert_eq!(s.allocated_capacity(), 0, "disabled sink must not allocate");
        assert!(!s.is_enabled());
    }

    #[test]
    fn consecutive_equal_samples_deduplicate() {
        let mut s = SeriesSink::new(SeriesConfig::with_capacity(16));
        s.record(at(0), 0, "tokens", 4);
        s.record(at(10), 0, "tokens", 4);
        s.record(at(20), 0, "tokens", 3);
        s.record(at(30), 0, "tokens", 3);
        s.record(at(40), 0, "tokens", 4);
        let vals: Vec<u64> = s.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![4, 3, 4]);
        // An equal value on a different node is not deduplicated away.
        s.record(at(50), 1, "tokens", 4);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn ring_overflow_counts_dropped() {
        let mut s = SeriesSink::new(SeriesConfig::with_capacity(4));
        for i in 0..10u64 {
            s.record(at(i), 0, "q", i);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        let vals: Vec<u64> = s.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![6, 7, 8, 9]);
    }

    #[test]
    fn merge_is_canonical_and_shard_independent() {
        let mk = |recs: &[(u64, u32, u64)]| {
            let mut s = SeriesSink::new(SeriesConfig::with_capacity(64));
            for &(t, n, v) in recs {
                s.record(at(t), n, "tokens", v);
            }
            s
        };
        let whole = mk(&[(0, 0, 1), (0, 1, 2), (5, 0, 3), (7, 1, 4)]);
        let a = mk(&[(0, 0, 1), (5, 0, 3)]);
        let b = mk(&[(0, 1, 2), (7, 1, 4)]);
        let merged = SeriesSink::merge_canonical(vec![a, b]);
        let one = SeriesSink::merge_canonical(vec![whole]);
        let m: Vec<_> = merged.iter().copied().collect();
        let o: Vec<_> = one.iter().copied().collect();
        assert_eq!(m, o, "merge must not depend on sharding");
    }

    #[test]
    fn summary_is_time_weighted_and_hist_sums_to_span() {
        let mut s = SeriesSink::new(SeriesConfig::with_capacity(64));
        // value 2 on [0,100), 6 on [100,400), 2 on [400,1000].
        s.record(at(0), 3, "tokens", 2);
        s.record(at(100), 3, "tokens", 6);
        s.record(at(400), 3, "tokens", 2);
        let sums = s.summarize(at(1000));
        assert_eq!(sums.len(), 1);
        let g = sums[0];
        assert_eq!((g.gauge, g.node), ("tokens", 3));
        assert_eq!((g.min, g.max, g.last), (2, 6, 2));
        // mean = (2*700 + 6*300) / 1000 = 3.2
        assert_eq!(g.mean_x1000, 3200);
        assert_eq!(g.hist.iter().sum::<u64>(), 1000);
        // min band holds the 700ns at value 2; top band the 300ns at 6.
        assert_eq!(g.hist[0], 700);
        assert_eq!(g.hist.iter().rev().sum::<u64>() - g.hist[0], 300);
    }

    #[test]
    fn summaries_sort_by_gauge_then_node() {
        let mut s = SeriesSink::new(SeriesConfig::with_capacity(64));
        s.record(at(0), 1, "z", 1);
        s.record(at(0), 0, "a", 1);
        s.record(at(0), 0, "z", 1);
        let keys: Vec<(&str, u32)> = s
            .summarize(at(10))
            .iter()
            .map(|g| (g.gauge, g.node))
            .collect();
        assert_eq!(keys, vec![("a", 0), ("z", 0), ("z", 1)]);
    }
}
