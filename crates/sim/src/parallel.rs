//! Lookahead-windowed parallel execution: shard a world across cores with a
//! bit-for-bit deterministic merge.
//!
//! A [`ShardWorld`] is one partition of a simulation: it owns a disjoint
//! slice of the world's state and an [`EventQueue`](crate::EventQueue) of its
//! own, and interacts with other shards **only** by emitting hand-off
//! messages into an [`Outbox`]. The [`ShardedEngine`] runs the classic
//! conservative (Chandy–Misra / YAWNS-style) barrier-synchronized loop:
//!
//! 1. every shard publishes the timestamp of its earliest pending event;
//! 2. the global window start `W` is the minimum; shards then dispatch their
//!    local events concurrently while `t < horizon`, where each shard's
//!    horizon is at least `W + lookahead` (`lookahead` = the minimum latency
//!    of any cross-shard interaction, so nothing a peer does inside the
//!    window can affect events this side of the horizon);
//! 3. at the barrier, emitted hand-offs are routed to their destination
//!    shards and absorbed in the canonical `(time, src, seq)` order.
//!
//! Two refinements on the textbook loop:
//!
//! * **Per-shard horizons.** Shard `i` may run past `W + lookahead`, up to
//!   `min(earliest event of any *other* shard, earliest hand-off it emitted
//!   itself this window) + lookahead`. When only one shard is active (the
//!   serial phases of a ping-pong workload) it keeps running alone until it
//!   actually talks to a peer, amortizing barrier costs away.
//! * **Determinism is schedule-independent.** Window sizing and thread
//!   interleaving only decide *when* events are dispatched, never their
//!   relative order within a shard (each queue is insertion-stable) or the
//!   order of hand-offs (sorted by the unique `(time, src, seq)` key before
//!   absorption, and delivered ahead of same-instant local events via
//!   [`EventClass::Wire`](crate::queue::EventClass)). Results are therefore
//!   bit-for-bit identical to the sequential engine — proven by the
//!   differential suites in `crates/core`.
//!
//! On a single-core host (or with one shard) the engine runs the identical
//! window protocol on the calling thread — same results, no thread overhead;
//! `MYRI_SIM_FORCE_THREADS=1` forces the threaded path for parity testing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::engine::{dispatch_stats, RunOutcome, Scheduler};
use crate::time::{SimDuration, SimTime};

/// One partition of a simulated world, driven by the [`ShardedEngine`].
///
/// Implementations must route every cross-shard effect through the
/// [`Outbox`] (with a hand-off time at least `lookahead` after the emitting
/// event) and keep all other state strictly shard-local.
pub trait ShardWorld: Send {
    /// The event alphabet of this world.
    type Event: Send;
    /// A cross-shard hand-off message (e.g. a packet crossing the fabric).
    type Handoff: Send;

    /// Handle one event at `sched.now()`, emitting any cross-shard effects
    /// into `outbox`.
    fn handle(
        &mut self,
        event: Self::Event,
        sched: &mut Scheduler<Self::Event>,
        outbox: &mut Outbox<Self::Handoff>,
    );

    /// Deliver one hand-off emitted by a peer shard. Called at the window
    /// barrier, in canonical `(time, src, seq)` order; implementations
    /// typically buffer the payload and schedule a wire-class drain event
    /// at `msg.time` via [`Scheduler::at_wire`].
    fn absorb(&mut self, msg: OutMsg<Self::Handoff>, sched: &mut Scheduler<Self::Event>);
}

/// One cross-shard hand-off in flight.
pub struct OutMsg<H> {
    /// Destination shard index.
    pub dst_shard: u32,
    /// Simulated arrival time at the destination shard (must be at least
    /// `lookahead` after the emitting event).
    pub time: SimTime,
    /// Canonical tie-break key, major: the emitting entity (e.g. source
    /// node id). Together with `seq` this must be unique per message.
    pub src: u64,
    /// Canonical tie-break key, minor: per-`src` emission sequence.
    pub seq: u64,
    /// The message payload.
    pub payload: H,
}

/// Collector for the hand-offs one shard emits during a window.
pub struct Outbox<H> {
    msgs: Vec<OutMsg<H>>,
    /// Earliest hand-off time emitted this window (`SimTime::MAX` if none);
    /// dynamically tightens the emitting shard's horizon.
    earliest: SimTime,
}

impl<H> Outbox<H> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox {
            msgs: Vec::new(),
            earliest: SimTime::MAX,
        }
    }

    /// Emit a hand-off to `dst_shard`, arriving at `time`. `(time, src,
    /// seq)` must be unique per message — it is the canonical merge key.
    pub fn send(&mut self, dst_shard: u32, time: SimTime, src: u64, seq: u64, payload: H) {
        self.earliest = self.earliest.min(time);
        self.msgs.push(OutMsg {
            dst_shard,
            time,
            src,
            seq,
            payload,
        });
    }

    /// Number of hand-offs collected.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no hand-off has been emitted.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

impl<H> Default for Outbox<H> {
    fn default() -> Self {
        Self::new()
    }
}

/// Execution diagnostics for one shard, exposed through
/// [`ShardedEngine::shard_stats`] (and surfaced as `parallel.*` metrics by
/// the scenario layer). These describe *how* the run was executed — they
/// legitimately differ between sequential, caller-mode, and threaded runs,
/// unlike simulation results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Windows this shard participated in (run_window invocations).
    pub windows: u64,
    /// Windows whose horizon was dynamically tightened below the static
    /// bound by the shard's own hand-off emissions.
    pub horizon_tightenings: u64,
    /// Barrier waits performed (0 in caller mode, 2 per window threaded).
    pub barrier_waits: u64,
    /// Events this shard dispatched.
    pub events: u64,
}

/// One shard: its world partition, event queue, and dispatch counters.
struct Lane<W: ShardWorld> {
    world: W,
    sched: Scheduler<W::Event>,
    events_handled: u64,
    stats: ShardStats,
}

/// Sense-reversing spin barrier for the worker threads. Spins briefly (the
/// windows are sub-microsecond apart when shards are busy), then yields so
/// an oversubscribed host is not starved.
struct SpinBarrier {
    n: u32,
    count: AtomicU64,
    sense: AtomicU64,
}

impl SpinBarrier {
    fn new(n: u32) -> Self {
        SpinBarrier {
            n,
            count: AtomicU64::new(0),
            sense: AtomicU64::new(0),
        }
    }

    fn wait(&self, local_sense: &mut u64) {
        *local_sense ^= 1;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == u64::from(self.n) {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                spins = spins.wrapping_add(1);
                if spins < 4096 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Whether the threaded window loop should be used for `n_shards`.
fn threads_enabled(n_shards: usize) -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    let force =
        *FORCE.get_or_init(|| std::env::var("MYRI_SIM_FORCE_THREADS").as_deref() == Ok("1"));
    n_shards > 1
        && (force || std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1)
}

/// `floor + lookahead`, saturating at `SimTime::MAX` (idle shards publish
/// `MAX`; adding to it must not wrap).
fn horizon(floor_ns: u64, lookahead: SimDuration) -> u64 {
    floor_ns.saturating_add(lookahead.as_nanos())
}

/// The parallel counterpart of [`Engine`](crate::Engine): S shard worlds,
/// each with its own event queue, synchronized on lookahead windows.
pub struct ShardedEngine<W: ShardWorld> {
    lanes: Vec<Lane<W>>,
    lookahead: SimDuration,
}

impl<W: ShardWorld> ShardedEngine<W> {
    /// Wrap `worlds` (one per shard) with empty queues at t=0. `lookahead`
    /// must be the minimum simulated latency of any cross-shard hand-off,
    /// and must be strictly positive — a zero lookahead admits no
    /// conservative window.
    pub fn new(worlds: Vec<W>, lookahead: SimDuration) -> Self {
        assert!(!worlds.is_empty(), "at least one shard");
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative windowing needs a positive lookahead"
        );
        ShardedEngine {
            lanes: worlds
                .into_iter()
                .map(|world| Lane {
                    world,
                    sched: Scheduler::new(),
                    events_handled: 0,
                    stats: ShardStats::default(),
                })
                .collect(),
            lookahead,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.lanes.len()
    }

    /// The window width in use.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Schedule an event on shard `shard` from outside the worlds (workload
    /// kickoff).
    pub fn schedule(&mut self, shard: usize, time: SimTime, event: W::Event) {
        self.lanes[shard].sched.at(time, event);
    }

    /// The latest shard clock (equals the sequential engine's `now()` after
    /// a drained run: the time of the globally last event).
    pub fn now(&self) -> SimTime {
        self.lanes
            .iter()
            .map(|l| l.sched.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total events dispatched across all shards.
    pub fn events_handled(&self) -> u64 {
        self.lanes.iter().map(|l| l.events_handled).sum()
    }

    /// Per-shard execution diagnostics (windows, horizon tightenings,
    /// barrier waits, events), in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.lanes
            .iter()
            .map(|l| ShardStats {
                events: l.events_handled,
                ..l.stats
            })
            .collect()
    }

    /// Shared access to shard `i`'s world.
    pub fn world(&self, i: usize) -> &W {
        &self.lanes[i].world
    }

    /// Exclusive access to shard `i`'s world.
    pub fn world_mut(&mut self, i: usize) -> &mut W {
        &mut self.lanes[i].world
    }

    /// Consume the engine, returning the shard worlds in shard order.
    pub fn into_worlds(self) -> Vec<W> {
        self.lanes.into_iter().map(|l| l.world).collect()
    }

    /// Run until every shard drains.
    pub fn run_to_idle(&mut self) -> RunOutcome {
        self.run(SimTime::MAX, u64::MAX)
    }

    /// Run until idle, the clock passes `deadline` (no event after it is
    /// dispatched, exactly like the sequential engine), or at least
    /// `max_events` have been dispatched (checked at window boundaries, so
    /// the sharded engine may overshoot by up to one window).
    pub fn run(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        if threads_enabled(self.lanes.len()) {
            self.run_threaded(deadline, max_events)
        } else {
            self.run_on_caller(deadline, max_events)
        }
    }

    /// The window protocol on the calling thread (single core, one shard, or
    /// threads disabled): identical decisions, identical results.
    fn run_on_caller(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        // simlint::allow(det-walltime, "dispatch-rate measurement of the simulator itself; never feeds simulated time")
        let started = std::time::Instant::now();
        let lookahead = self.lookahead;
        let n = self.lanes.len();
        let mut mailboxes: Vec<Vec<OutMsg<W::Handoff>>> = (0..n).map(|_| Vec::new()).collect();
        let mut handled_total = 0u64;
        let outcome = loop {
            // Barrier phase: absorb routed hand-offs in canonical order.
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let mut msgs = std::mem::take(&mut mailboxes[i]);
                msgs.sort_unstable_by_key(|m| (m.time, m.src, m.seq));
                for m in msgs {
                    lane.world.absorb(m, &mut lane.sched);
                }
            }
            let nexts: Vec<u64> = self
                .lanes
                .iter_mut()
                .map(|l| l.sched.peek_time().map_or(u64::MAX, SimTime::as_nanos))
                .collect();
            let w = nexts.iter().copied().min().expect("nonempty lanes");
            if w == u64::MAX {
                break RunOutcome::Idle;
            }
            if w > deadline.as_nanos() {
                break RunOutcome::TimeLimit;
            }
            if handled_total >= max_events {
                break RunOutcome::EventLimit;
            }
            // Window phase: each shard runs to its own horizon.
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let other_min = nexts
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &v)| v)
                    .min()
                    .unwrap_or(u64::MAX);
                let bound = horizon(other_min, lookahead).min(deadline.as_nanos().saturating_add(1));
                let mut outbox = Outbox::new();
                handled_total += run_window(lane, bound, lookahead, &mut outbox);
                for m in outbox.msgs {
                    debug_assert_ne!(m.dst_shard as usize, i, "self hand-off must stay local");
                    mailboxes[m.dst_shard as usize].push(m);
                }
            }
        };
        dispatch_stats::add(handled_total, started.elapsed());
        outcome
    }

    /// The window protocol on scoped worker threads, one per shard, meeting
    /// at a spin barrier twice per window.
    fn run_threaded(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        let n = self.lanes.len() as u32;
        let shared = Shared {
            barrier: SpinBarrier::new(n),
            next: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mailboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            total: AtomicU64::new(0),
            lookahead: self.lookahead,
            deadline,
            max_events,
        };
        let (lane0, rest) = self.lanes.split_at_mut(1);
        // simlint::allow(det-thread, "barrier-synchronized shard workers: hand-offs merge in canonical (time, src, seq) order, so results are schedule-independent (proven by the seq/par differential suites)")
        std::thread::scope(|scope| {
            for (k, lane) in rest.iter_mut().enumerate() {
                let shared = &shared;
                scope.spawn(move || worker_loop(k + 1, lane, shared));
            }
            worker_loop(0, &mut lane0[0], &shared)
        })
    }
}

/// Cross-thread coordination state for one `run_threaded` call.
struct Shared<H> {
    barrier: SpinBarrier,
    /// Per-shard earliest pending event (ns; `u64::MAX` when idle),
    /// published before the window-start barrier.
    next: Vec<AtomicU64>,
    /// Per-destination-shard hand-off mailboxes.
    mailboxes: Vec<Mutex<Vec<OutMsg<H>>>>,
    /// Global dispatched-event count (event-limit checks).
    total: AtomicU64,
    lookahead: SimDuration,
    deadline: SimTime,
    max_events: u64,
}

/// One worker's window loop. Every worker evaluates the same exit conditions
/// on the same published data, so all of them leave in the same round with
/// the same outcome.
fn worker_loop<W: ShardWorld>(
    me: usize,
    lane: &mut Lane<W>,
    sh: &Shared<W::Handoff>,
) -> RunOutcome {
    // simlint::allow(det-walltime, "dispatch-rate measurement of the simulator itself; never feeds simulated time")
    let started = std::time::Instant::now();
    let mut sense = 0u64;
    let mut local_handled = 0u64;
    let outcome = loop {
        // Barrier phase: drain my mailbox in canonical order, publish my
        // earliest pending event, meet the others at the window start.
        let mut msgs = std::mem::take(
            &mut *sh.mailboxes[me]
                .lock()
                .expect("a shard worker panicked while flushing hand-offs"),
        );
        msgs.sort_unstable_by_key(|m| (m.time, m.src, m.seq));
        for m in msgs {
            lane.world.absorb(m, &mut lane.sched);
        }
        let next_t = lane.sched.peek_time().map_or(u64::MAX, SimTime::as_nanos);
        sh.next[me].store(next_t, Ordering::Release);
        lane.stats.barrier_waits += 1;
        sh.barrier.wait(&mut sense);

        // Global decision point (identical inputs on every worker).
        let mut w = u64::MAX;
        let mut other_min = u64::MAX;
        for (j, a) in sh.next.iter().enumerate() {
            let v = a.load(Ordering::Acquire);
            w = w.min(v);
            if j != me {
                other_min = other_min.min(v);
            }
        }
        if w == u64::MAX {
            break RunOutcome::Idle;
        }
        if w > sh.deadline.as_nanos() {
            break RunOutcome::TimeLimit;
        }
        if sh.total.load(Ordering::Acquire) >= sh.max_events {
            break RunOutcome::EventLimit;
        }

        // Window phase: run to my horizon, then flush hand-offs and meet at
        // the window end so every mailbox is complete before the next drain.
        let bound =
            horizon(other_min, sh.lookahead).min(sh.deadline.as_nanos().saturating_add(1));
        let mut outbox = Outbox::new();
        let handled = run_window(lane, bound, sh.lookahead, &mut outbox);
        if handled > 0 {
            local_handled += handled;
            sh.total.fetch_add(handled, Ordering::AcqRel);
        }
        if !outbox.msgs.is_empty() {
            flush_outbox(me, outbox, &sh.mailboxes);
        }
        lane.stats.barrier_waits += 1;
        sh.barrier.wait(&mut sense);
    };
    dispatch_stats::add(local_handled, started.elapsed());
    outcome
}

/// Dispatch one shard's events while they fall inside its horizon. The
/// horizon tightens as the shard emits hand-offs: after emitting at time
/// `h`, a peer's reaction can reach back no earlier than `h + lookahead`.
fn run_window<W: ShardWorld>(
    lane: &mut Lane<W>,
    static_bound_ns: u64,
    lookahead: SimDuration,
    outbox: &mut Outbox<W::Handoff>,
) -> u64 {
    let mut handled = 0u64;
    loop {
        let bound = if outbox.earliest == SimTime::MAX {
            static_bound_ns
        } else {
            static_bound_ns.min(horizon(outbox.earliest.as_nanos(), lookahead))
        };
        match lane.sched.peek_time() {
            Some(t) if t.as_nanos() < bound => {}
            _ => break,
        }
        let (_, event) = lane.sched.pop_advance().expect("peeked nonempty");
        lane.world.handle(event, &mut lane.sched, outbox);
        handled += 1;
    }
    lane.stats.windows += 1;
    if outbox.earliest != SimTime::MAX
        && horizon(outbox.earliest.as_nanos(), lookahead) < static_bound_ns
    {
        lane.stats.horizon_tightenings += 1;
    }
    lane.events_handled += handled;
    handled
}

/// Route a window's emissions into the shared mailboxes, one lock per
/// destination shard. Mailbox arrival order is irrelevant: the receiver
/// re-sorts by the unique `(time, src, seq)` key before absorbing.
fn flush_outbox<H>(me: usize, outbox: Outbox<H>, mailboxes: &[Mutex<Vec<OutMsg<H>>>]) {
    let mut msgs = outbox.msgs;
    msgs.sort_unstable_by_key(|m| m.dst_shard);
    let mut iter = msgs.into_iter().peekable();
    while let Some(first) = iter.next() {
        let dst = first.dst_shard as usize;
        debug_assert_ne!(dst, me, "self hand-off must stay local");
        let mut guard = mailboxes[dst]
            .lock()
            .expect("a shard worker panicked while absorbing hand-offs");
        guard.push(first);
        while iter.peek().is_some_and(|m| m.dst_shard as usize == dst) {
            guard.push(iter.next().expect("peeked"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy shard world: each shard owns one node; a node, upon receiving a
    /// token at time t, bounces it to the other node arriving at t + 500ns,
    /// `remaining` times. Cross-shard latency is exactly the lookahead.
    struct OneNode {
        me: u32,
        peer_shard: u32,
        remaining: u32,
        log: Vec<(u64, u64)>,
        sent: u64,
    }

    enum Ev {
        Token(u64),
    }

    impl ShardWorld for OneNode {
        type Event = Ev;
        type Handoff = u64;

        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>, outbox: &mut Outbox<u64>) {
            let Ev::Token(p) = event;
            self.log.push((sched.now().as_nanos(), p));
            if self.remaining > 0 {
                self.remaining -= 1;
                let at = sched.now() + SimDuration::from_nanos(500);
                if self.peer_shard == u32::MAX {
                    // Single-shard mode: bounce locally.
                    sched.at(at, Ev::Token(p + 1));
                } else {
                    outbox.send(self.peer_shard, at, u64::from(self.me), self.sent, p + 1);
                    self.sent += 1;
                }
            }
        }

        fn absorb(&mut self, m: OutMsg<u64>, sched: &mut Scheduler<Ev>) {
            sched.at_wire(m.time, Ev::Token(m.payload));
        }
    }

    #[test]
    fn ping_pong_across_two_shards_matches_one_shard() {
        // Two shards bouncing a token; compare the merged log against the
        // single-shard run of the same protocol.
        fn run(shards: bool) -> Vec<(u64, u64)> {
            let worlds = if shards {
                vec![
                    OneNode {
                        me: 0,
                        peer_shard: 1,
                        remaining: 10,
                        log: vec![],
                        sent: 0,
                    },
                    OneNode {
                        me: 1,
                        peer_shard: 0,
                        remaining: 10,
                        log: vec![],
                        sent: 0,
                    },
                ]
            } else {
                vec![OneNode {
                    me: 0,
                    peer_shard: u32::MAX,
                    remaining: 20,
                    log: vec![],
                    sent: 0,
                }]
            };
            let mut eng = ShardedEngine::new(worlds, SimDuration::from_nanos(500));
            eng.schedule(0, SimTime::ZERO, Ev::Token(0));
            assert_eq!(eng.run_to_idle(), RunOutcome::Idle);
            let mut log: Vec<(u64, u64)> = eng
                .into_worlds()
                .into_iter()
                .flat_map(|w| w.log)
                .collect();
            log.sort_unstable();
            log
        }
        assert_eq!(run(true), run(false));
    }
}
