//! Measurement collectors used by the protocol layers and the bench harness.

use crate::time::{SimDuration, SimTime};

/// Streaming mean / variance / min / max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty collector.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration sample in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another collector's samples into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Tracks how much of wall-clock simulated time a resource spent busy.
///
/// Used for host-CPU-time accounting in the skew experiments: the host "CPU"
/// is busy while it is inside an MPI call or computing.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    busy: SimDuration,
    busy_since: Option<SimTime>,
}

impl BusyTracker {
    /// New, idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the resource busy starting at `now`. No-op if already busy.
    pub fn start(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Mark the resource idle at `now`, accumulating the busy span.
    ///
    /// Panics if not currently busy.
    pub fn stop(&mut self, now: SimTime) {
        let since = self.busy_since.take().expect("BusyTracker::stop while idle");
        self.busy += now - since;
    }

    /// Whether currently marked busy.
    pub fn is_busy(&self) -> bool {
        self.busy_since.is_some()
    }

    /// Total accumulated busy time (excluding any open interval).
    pub fn total(&self) -> SimDuration {
        self.busy
    }

    /// Reset the accumulated total (keeps any open interval's start).
    pub fn reset(&mut self) {
        self.busy = SimDuration::ZERO;
    }
}

/// Fixed-bucket histogram of microsecond values, for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width_us: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    max: f64,
}

impl Histogram {
    /// `n_buckets` buckets of `bucket_width_us` microseconds each.
    pub fn new(bucket_width_us: f64, n_buckets: usize) -> Self {
        assert!(bucket_width_us > 0.0 && n_buckets > 0);
        Histogram {
            bucket_width_us,
            buckets: vec![0; n_buckets],
            overflow: 0,
            count: 0,
            max: 0.0,
        }
    }

    /// Record a sample in microseconds.
    pub fn record(&mut self, us: f64) {
        self.count += 1;
        self.max = self.max.max(us);
        let idx = (us / self.bucket_width_us) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate p-th percentile (0 < p <= 100) via bucket upper bounds.
    /// Percentiles landing in the overflow region report the exact maximum
    /// sample instead.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (i as f64 + 1.0) * self.bucket_width_us;
            }
        }
        self.max
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Simple monotonic counter set keyed by static names (protocol counters).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        for e in &mut self.entries {
            if e.0 == name {
                e.1 += n;
                return;
            }
        }
        self.entries.push((name, n));
    }

    /// Increment counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.0 == name)
            .map_or(0, |e| e.1)
    }

    /// Iterate over `(name, value)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Add every counter of `other` into `self` (shard-merge). The result is
    /// order-canonicalized by name so a merged set serializes identically no
    /// matter how creation order differed across shards.
    pub fn merge_from(&mut self, other: &Counters) {
        for (name, v) in other.iter() {
            self.add(name, v);
        }
        self.entries.sort_by_key(|e| e.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_pooled() {
        let xs: Vec<f64> = (0..50).map(|i| (i * 7 % 13) as f64).collect();
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.stddev() - all.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn busy_tracker_accumulates() {
        let mut b = BusyTracker::new();
        b.start(SimTime::from_nanos(10));
        assert!(b.is_busy());
        b.stop(SimTime::from_nanos(30));
        b.start(SimTime::from_nanos(100));
        b.stop(SimTime::from_nanos(105));
        assert_eq!(b.total().as_nanos(), 25);
        b.reset();
        assert_eq!(b.total().as_nanos(), 0);
    }

    #[test]
    fn busy_tracker_double_start_is_noop() {
        let mut b = BusyTracker::new();
        b.start(SimTime::from_nanos(10));
        b.start(SimTime::from_nanos(20)); // ignored
        b.stop(SimTime::from_nanos(30));
        assert_eq!(b.total().as_nanos(), 20);
    }

    #[test]
    #[should_panic(expected = "while idle")]
    fn busy_tracker_stop_idle_panics() {
        let mut b = BusyTracker::new();
        b.stop(SimTime::from_nanos(1));
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 100);
        assert!((h.percentile(50.0) - 50.0).abs() < 1.01);
        assert!((h.percentile(99.0) - 99.0).abs() < 1.01);
        h.record(1e9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), 1e9);
        // A percentile that lands in the overflow reports the max sample.
        assert_eq!(h.percentile(100.0), 1e9);
    }

    #[test]
    fn counters() {
        let mut c = Counters::new();
        c.bump("tx");
        c.add("tx", 4);
        c.bump("rx");
        assert_eq!(c.get("tx"), 5);
        assert_eq!(c.get("rx"), 1);
        assert_eq!(c.get("nope"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("tx", 5), ("rx", 1)]);
    }
}
