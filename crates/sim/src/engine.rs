//! The simulation run loop.
//!
//! A [`World`] owns all simulated state. The [`Engine`] pops events from the
//! queue in timestamp order, advances the clock, and hands each event to the
//! world along with a [`Scheduler`] through which the world emits follow-up
//! events. Because the queue is insertion-stable and the clock is integer
//! nanoseconds, runs are bit-for-bit reproducible.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Process-wide dispatch totals across every [`Engine`] instance, fed by the
/// run loops and read by benchmark harnesses to report an aggregate
/// events-per-second figure (e.g. `results/perf_baseline.json`).
pub mod dispatch_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static EVENTS: AtomicU64 = AtomicU64::new(0);
    static WALL_NANOS: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn add(events: u64, wall: std::time::Duration) {
        if events > 0 {
            EVENTS.fetch_add(events, Ordering::Relaxed);
            // simlint::allow(units, "std::time::Duration wall-clock stat, not SimTime")
            WALL_NANOS.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Total `(events_dispatched, wall_in_run_loops)` since process start.
    pub fn snapshot() -> (u64, std::time::Duration) {
        (
            EVENTS.load(Ordering::Relaxed),
            std::time::Duration::from_nanos(WALL_NANOS.load(Ordering::Relaxed)),
        )
    }

    /// Aggregate dispatch rate in events per wall-clock second (0.0 before
    /// any events have run).
    pub fn events_per_sec() -> f64 {
        let (events, wall) = snapshot();
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        }
    }
}

/// Handle through which event handlers schedule future events.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Scheduler<E> {
    pub(crate) fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    fn with_queue_kind(kind: crate::queue::QueueKind) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(kind),
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` from now.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at an absolute time (must not be in the past).
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        assert!(time >= self.now, "scheduling into the past: {time} < {}", self.now);
        self.queue.push(time, event);
    }

    /// Schedule `event` to fire at the current instant (after events already
    /// queued for this instant).
    #[inline]
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Schedule a wire-boundary event: at its instant it is delivered before
    /// every normally-scheduled event, regardless of scheduling order. This
    /// gives packet hand-offs a canonical position within the instant that
    /// is identical in sequential and sharded runs (see `sim::parallel`).
    #[inline]
    pub fn at_wire(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "scheduling into the past: {time} < {}",
            self.now
        );
        self.queue.push_wire(time, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Earliest pending event time (`None` when idle). `&mut` because the
    /// wheel refills its active tier lazily.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pop the earliest event and advance the clock to it (window run loops).
    pub(crate) fn pop_advance(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        Some((time, event))
    }
}

/// All simulated state plus its event-dispatch logic.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event at time `sched.now()`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained.
    Idle,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count limit was reached with events still pending.
    EventLimit,
}

/// The discrete-event engine: a clock, an event queue, and a world.
pub struct Engine<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    events_handled: u64,
    /// Wall-clock time spent inside the run loops (dispatch throughput).
    run_wall: std::time::Duration,
}

impl<W: World> Engine<W> {
    /// Wrap `world` with an empty event queue at t=0.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            sched: Scheduler::new(),
            events_handled: 0,
            run_wall: std::time::Duration::ZERO,
        }
    }

    /// Like [`Engine::new`] but with an explicit queue implementation,
    /// overriding the process default (used by differential benchmarks).
    pub fn with_queue_kind(world: W, kind: crate::queue::QueueKind) -> Self {
        Engine {
            world,
            sched: Scheduler::with_queue_kind(kind),
            events_handled: 0,
            run_wall: std::time::Duration::ZERO,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events dispatched so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Wall-clock time spent inside `run`/`run_while` so far.
    pub fn run_wall(&self) -> std::time::Duration {
        self.run_wall
    }

    /// Dispatch throughput: events handled per wall-clock second across all
    /// run calls so far (0.0 before the first event).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.run_wall.as_secs_f64();
        if secs > 0.0 {
            self.events_handled as f64 / secs
        } else {
            0.0
        }
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (for seeding state between phases).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an event from outside the world (e.g. workload kickoff).
    pub fn schedule(&mut self, time: SimTime, event: W::Event) {
        assert!(time >= self.sched.now, "scheduling into the past");
        self.sched.queue.push(time, event);
    }

    /// Schedule an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: W::Event) {
        let at = self.sched.now + delay;
        self.sched.queue.push(at, event);
    }

    /// Run until the queue drains.
    pub fn run_to_idle(&mut self) -> RunOutcome {
        self.run(SimTime::MAX, u64::MAX)
    }

    /// Run until the queue drains or the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run(deadline, u64::MAX)
    }

    /// Run until the queue drains, the clock passes `deadline`, or
    /// `max_events` further events have been dispatched.
    pub fn run(&mut self, deadline: SimTime, max_events: u64) -> RunOutcome {
        // simlint::allow(det-walltime, "dispatch-rate measurement of the simulator itself; never feeds simulated time")
        let started = std::time::Instant::now();
        let mut handled = 0u64;
        let outcome = loop {
            match self.sched.queue.peek_time() {
                None => break RunOutcome::Idle,
                Some(t) if t > deadline => break RunOutcome::TimeLimit,
                Some(_) => {}
            }
            if handled >= max_events {
                break RunOutcome::EventLimit;
            }
            let (time, event) = self.sched.queue.pop().expect("peeked nonempty");
            debug_assert!(time >= self.sched.now, "time went backwards");
            self.sched.now = time;
            self.world.handle(event, &mut self.sched);
            self.events_handled += 1;
            handled += 1;
        };
        let elapsed = started.elapsed();
        self.run_wall += elapsed;
        dispatch_stats::add(handled, elapsed);
        outcome
    }

    /// Run while `predicate(world)` holds (checked before each event).
    pub fn run_while(&mut self, mut predicate: impl FnMut(&W) -> bool) -> RunOutcome {
        // simlint::allow(det-walltime, "dispatch-rate measurement of the simulator itself; never feeds simulated time")
        let started = std::time::Instant::now();
        let mut handled = 0u64;
        let outcome = loop {
            if self.sched.queue.is_empty() {
                break RunOutcome::Idle;
            }
            if !predicate(&self.world) {
                break RunOutcome::EventLimit;
            }
            let (time, event) = self.sched.queue.pop().expect("nonempty");
            debug_assert!(time >= self.sched.now, "time went backwards");
            self.sched.now = time;
            self.world.handle(event, &mut self.sched);
            self.events_handled += 1;
            handled += 1;
        };
        let elapsed = started.elapsed();
        self.run_wall += elapsed;
        dispatch_stats::add(handled, elapsed);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that plays ping-pong `remaining` times, 10ns per hop.
    struct PingPong {
        remaining: u32,
        log: Vec<(u64, &'static str)>,
    }

    enum Ev {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Ev;
        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Ping => {
                    self.log.push((sched.now().as_nanos(), "ping"));
                    if self.remaining > 0 {
                        sched.after(SimDuration::from_nanos(10), Ev::Pong);
                    }
                }
                Ev::Pong => {
                    self.log.push((sched.now().as_nanos(), "pong"));
                    self.remaining -= 1;
                    if self.remaining > 0 {
                        sched.after(SimDuration::from_nanos(10), Ev::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_runs_to_idle() {
        let mut eng = Engine::new(PingPong {
            remaining: 3,
            log: vec![],
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        assert_eq!(eng.run_to_idle(), RunOutcome::Idle);
        assert_eq!(
            eng.world().log,
            vec![
                (0, "ping"),
                (10, "pong"),
                (20, "ping"),
                (30, "pong"),
                (40, "ping"),
                (50, "pong"),
            ]
        );
        assert_eq!(eng.now().as_nanos(), 50);
        assert_eq!(eng.events_handled(), 6);
    }

    #[test]
    fn deadline_stops_without_consuming_later_events() {
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        assert_eq!(
            eng.run_until(SimTime::from_nanos(25)),
            RunOutcome::TimeLimit
        );
        assert_eq!(eng.now().as_nanos(), 20);
        // Resume: remaining events still fire.
        assert_eq!(eng.run_to_idle(), RunOutcome::Idle);
        assert_eq!(eng.world().log.len(), 200);
    }

    #[test]
    fn event_limit() {
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        assert_eq!(eng.run(SimTime::MAX, 5), RunOutcome::EventLimit);
        assert_eq!(eng.world().log.len(), 5);
    }

    #[test]
    fn run_while_predicate() {
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_while(|w| w.remaining > 90);
        assert_eq!(eng.world().remaining, 90);
    }

    #[test]
    fn throughput_counter_accumulates() {
        let mut eng = Engine::new(PingPong {
            remaining: 1000,
            log: vec![],
        });
        assert_eq!(eng.events_per_sec(), 0.0);
        eng.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_to_idle();
        assert_eq!(eng.events_handled(), 2000);
        assert!(eng.run_wall() > std::time::Duration::ZERO);
        assert!(eng.events_per_sec() > 0.0);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
                sched.at(SimTime::ZERO, ());
            }
        }
        let mut eng = Engine::new(Bad);
        eng.schedule(SimTime::from_nanos(5), ());
        eng.run_to_idle();
    }
}
