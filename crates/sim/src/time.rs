//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation. Integer time keeps the engine fully deterministic: there is no
//! floating-point accumulation error, and event ordering is reproducible
//! across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time (nanoseconds since t=0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since t=0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Microseconds as a float, for reporting.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a float number of microseconds (rounded to ns).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float, for reporting.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Nanoseconds as a float, for analytic models that solve over durations.
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64
    }

    /// The time to move `bytes` bytes at `bytes_per_sec`, rounded up to 1 ns.
    ///
    /// Zero-byte transfers take zero time.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "zero bandwidth");
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        // ns = bytes * 1e9 / bw, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        assert_eq!((t - SimTime::from_nanos(100)).as_nanos(), 50);
        assert_eq!((SimDuration::from_nanos(10) * 3).as_nanos(), 30);
        assert_eq!((SimDuration::from_nanos(10) / 4).as_nanos(), 2);
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
        assert_eq!(a.saturating_since(b).as_nanos(), 0);
    }

    #[test]
    fn bandwidth_time() {
        // 250 MB/s, 4096 bytes => 16.384 us.
        let d = SimDuration::for_bytes(4096, 250_000_000);
        assert_eq!(d.as_nanos(), 16_384);
        assert_eq!(SimDuration::for_bytes(0, 1).as_nanos(), 0);
        // Rounds up: 1 byte at 1 GB/s is 1ns.
        assert_eq!(SimDuration::for_bytes(1, 1_000_000_000).as_nanos(), 1);
        // Sub-ns truncation rounds up, never to zero.
        assert_eq!(SimDuration::for_bytes(1, 2_000_000_000).as_nanos(), 1);
    }

    #[test]
    fn micros_f64_roundtrip() {
        let d = SimDuration::from_micros_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500);
        assert!((d.as_micros_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
