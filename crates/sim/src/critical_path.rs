//! `sim::critical_path` — lineage reconstruction and critical-path
//! extraction over flow-tagged probe streams.
//!
//! Every probe record may carry a [`FlowId`] (see `sim::flow`). This module
//! turns a recorded stream back into *causal* structure:
//!
//! * a [`FlowGraph`] links each flow to its **predecessor hop**: the flow
//!   that delivered the payload to the node where this flow's work began.
//!   For a NIC-forwarded multicast packet `root → A → B`, the flow
//!   `(root, tag, B)` starts at node `A`, and its predecessor is
//!   `(root, tag, A)` — the hop that brought the payload to `A`. The rule
//!   is purely temporal and needs no protocol knowledge: among flows with
//!   the same tag whose destination is the start node, pick the one whose
//!   latest record at that node is the most recent not after this flow's
//!   first record. Each link strictly decreases the first-record key, so
//!   the graph is acyclic by construction (and [`FlowGraph::validate`]
//!   proves it per run).
//! * a **lineage** is the chain anchor → … → flow, where the anchor is a
//!   flow with no predecessor — for a complete delivery it starts with the
//!   host send call at the origin.
//! * [`FlowGraph::critical_path`] extracts, for one measured window, the
//!   chain that determined completion (the lineage of the last
//!   [`FLOW_DELIVERY`] in the window) and decomposes the window into
//!   per-hop / per-resource buckets that **sum exactly** to the window
//!   length: a boundary sweep assigns every nanosecond to the innermost
//!   covering chain span, or to `wait` when no chain span covers it.

use std::collections::BTreeMap;

use crate::flow::FlowId;
use crate::probe::{Phase, ProbeEvent, ProbeId, Track};
use crate::time::{SimDuration, SimTime};

/// Delivery anchor: recorded (with a flow) when a message reaches its
/// destination application callback. Terminates the flow's lineage and
/// marks the completion candidates for critical-path extraction.
pub const FLOW_DELIVERY: ProbeId = ProbeId::new("flow_delivery", Track::App);

/// Per-flow facts extracted from the stream.
#[derive(Clone, Debug)]
struct FlowInfo {
    /// `(time, seq)` and node of the flow's first record.
    first: (SimTime, u64),
    first_node: u32,
    /// Earliest `(time, seq)` of a record of this flow per node — when the
    /// payload first became visible there (the arrival, at the hop's
    /// destination).
    node_first: Vec<(u32, SimTime, u64)>,
    /// `(time, seq)` of the flow's `FLOW_DELIVERY` record, if delivered.
    delivery: Option<(SimTime, u64)>,
    /// Whether the flow includes a host-track record (the send call) — the
    /// anchor of a complete lineage.
    has_host: bool,
    /// The causal predecessor hop (filled by the link pass).
    pred: Option<FlowId>,
}

/// The causal links between the flows of one recorded run.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    flows: BTreeMap<FlowId, FlowInfo>,
}

impl FlowGraph {
    /// Build the graph from a canonical probe stream (events in
    /// `(time, seq)` record order, e.g. `ProbeSink::to_vec`).
    pub fn build(events: &[ProbeEvent]) -> FlowGraph {
        let mut flows: BTreeMap<FlowId, FlowInfo> = BTreeMap::new();
        for e in events {
            if e.flow.is_none() {
                continue;
            }
            let key = (e.time, e.seq);
            let info = flows.entry(e.flow).or_insert_with(|| FlowInfo {
                first: key,
                first_node: e.node,
                node_first: Vec::new(),
                delivery: None,
                has_host: false,
                pred: None,
            });
            if key < info.first {
                info.first = key;
                info.first_node = e.node;
            }
            match info.node_first.iter_mut().find(|(n, _, _)| *n == e.node) {
                Some(slot) => {
                    if (slot.1, slot.2) > key {
                        (slot.1, slot.2) = key;
                    }
                }
                None => info.node_first.push((e.node, e.time, e.seq)),
            }
            if e.id.name == FLOW_DELIVERY.name {
                info.delivery = Some(info.delivery.map_or(key, |d| d.max(key)));
            }
            if e.id.track == Track::Host {
                info.has_host = true;
            }
        }

        // Link pass: index flows by (dest, tag), then find each flow's
        // predecessor hop at its start node.
        let mut by_dest_tag: BTreeMap<(u32, u64), Vec<FlowId>> = BTreeMap::new();
        for &f in flows.keys() {
            by_dest_tag.entry((f.dest(), f.tag())).or_default().push(f);
        }
        let mut preds: Vec<(FlowId, FlowId)> = Vec::new();
        for (&g, info) in &flows {
            let Some(cands) = by_dest_tag.get(&(info.first_node, g.tag())) else {
                continue;
            };
            let mut best: Option<((SimTime, u64), FlowId)> = None;
            for &p in cands {
                if p == g {
                    continue;
                }
                let pi = &flows[&p];
                let Some(&(_, t, s)) = pi
                    .node_first
                    .iter()
                    .find(|(n, _, _)| *n == info.first_node)
                else {
                    continue;
                };
                if (t, s) <= info.first && best.is_none_or(|(k, _)| (t, s) > k) {
                    best = Some(((t, s), p));
                }
            }
            if let Some((_, p)) = best {
                preds.push((g, p));
            }
        }
        for (g, p) in preds {
            flows.get_mut(&g).expect("pred source flow exists").pred = Some(p);
        }
        FlowGraph { flows }
    }

    /// All flows seen, in `FlowId` order.
    pub fn flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.flows.keys().copied()
    }

    /// Flows that reached a [`FLOW_DELIVERY`] record.
    pub fn delivered(&self) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|(_, i)| i.delivery.is_some())
            .map(|(&f, _)| f)
            .collect()
    }

    /// The causal predecessor hop of `flow`, if any.
    pub fn pred(&self, flow: FlowId) -> Option<FlowId> {
        self.flows.get(&flow).and_then(|i| i.pred)
    }

    /// Node at which `flow`'s work began (the hop's source).
    pub fn start_node(&self, flow: FlowId) -> Option<u32> {
        self.flows.get(&flow).map(|i| i.first_node)
    }

    /// The lineage of `flow`: anchor hop first, `flow` last. Stops (rather
    /// than loops) if a cycle is ever encountered — [`FlowGraph::validate`]
    /// reports such a stream as corrupt.
    pub fn lineage(&self, flow: FlowId) -> Vec<FlowId> {
        let mut chain = vec![flow];
        let mut cur = flow;
        while let Some(p) = self.pred(cur) {
            if chain.contains(&p) {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Structural checks for `--check` gates: predecessor links must be
    /// acyclic, and every delivered flow must have an unbroken lineage back
    /// to an anchor hop that contains the host send call. Returns one
    /// message per violation (empty = clean).
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for (&g, info) in &self.flows {
            if let Some(p) = info.pred {
                let pf = &self.flows[&p];
                if pf.first >= info.first {
                    errors.push(format!(
                        "flow graph not acyclic: pred {p} of {g} does not precede it"
                    ));
                }
            }
            if info.delivery.is_some() {
                let chain = self.lineage(g);
                let anchor = chain[0];
                let ai = &self.flows[&anchor];
                if ai.pred.is_some() {
                    errors.push(format!("lineage of {g} contains a cycle"));
                } else if !ai.has_host {
                    errors.push(format!(
                        "lineage of {g} is broken: anchor {anchor} has no host send record"
                    ));
                }
            }
        }
        errors
    }

    /// Extract the critical path of the measured window `[ws, we]`: the
    /// lineage of the last delivery in the window, decomposed into per-hop /
    /// per-resource buckets that sum exactly to `we - ws`. Returns `None`
    /// when the window contains no delivery.
    pub fn critical_path(
        &self,
        events: &[ProbeEvent],
        window: (SimTime, SimTime),
    ) -> Option<CriticalPath> {
        let (ws, we) = window;
        // The completion event: the last FLOW_DELIVERY inside the window.
        let terminal = events
            .iter()
            .filter(|e| {
                e.id.name == FLOW_DELIVERY.name
                    && e.flow.is_some()
                    && e.time >= ws
                    && e.time <= we
            })
            .max_by_key(|e| (e.time, e.seq))?
            .flow;
        let chain = self.lineage(terminal);
        let step_of = |f: FlowId| chain.iter().position(|&c| c == f);

        // Collect the chain's spans: Begin/End pairs per (node, track) —
        // an End record inherits the flow of the Begin that opened it —
        // plus Complete records.
        let mut spans: Vec<(u64, u64, usize, Track)> = Vec::new();
        let mut open: BTreeMap<(u32, u32), (u64, FlowId)> = BTreeMap::new();
        for e in events {
            let key = (e.node, e.id.track.tid());
            match e.phase {
                Phase::Begin => {
                    open.insert(key, (e.time.as_nanos(), e.flow));
                }
                Phase::End => {
                    if let Some((s, f)) = open.remove(&key) {
                        if let Some(i) = step_of(f) {
                            spans.push((s, e.time.as_nanos(), i, e.id.track));
                        }
                    }
                }
                Phase::Complete => {
                    if let Some(i) = step_of(e.flow) {
                        let s = e.time.as_nanos();
                        spans.push((s, s + e.dur.as_nanos(), i, e.id.track));
                    }
                }
                Phase::Mark => {}
            }
        }

        // Boundary sweep over [ws, we]: assign each segment to the
        // innermost (latest-starting; tie → latest hop) covering span.
        let (wsn, wen) = (ws.as_nanos(), we.as_nanos());
        let mut cuts: Vec<u64> = vec![wsn, wen];
        for &(s, e, _, _) in &spans {
            if e > wsn && s < wen {
                cuts.push(s.clamp(wsn, wen));
                cuts.push(e.clamp(wsn, wen));
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        let steps: Vec<PathStep> = chain
            .iter()
            .map(|&f| PathStep {
                flow: f,
                from: self.start_node(f).unwrap_or(f.origin()),
                to: f.dest(),
            })
            .collect();
        let mut buckets: BTreeMap<String, u64> = BTreeMap::new();
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b <= a {
                continue;
            }
            let winner = spans
                .iter()
                .filter(|&&(s, e, _, _)| s <= a && e >= b)
                .max_by_key(|&&(s, _, i, _)| (s, i));
            let key = match winner {
                Some(&(_, _, i, track)) => {
                    let st = &steps[i];
                    format!("h{:02} n{}>n{} {}", i, st.from, st.to, track.name())
                }
                None => "wait".to_string(),
            };
            *buckets.entry(key).or_insert(0) += b - a;
        }

        Some(CriticalPath {
            window,
            steps,
            buckets: buckets
                .into_iter()
                .map(|(k, v)| (k, SimDuration::from_nanos(v)))
                .collect(),
            total: we - ws,
        })
    }
}

/// One hop of a critical path: `flow` carried the payload `from → to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The hop's flow.
    pub flow: FlowId,
    /// Node where the hop's work began.
    pub from: u32,
    /// The hop's delivery endpoint.
    pub to: u32,
}

/// The chain of hops that determined one window's completion, with the
/// window decomposed into per-hop / per-resource time buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// The measured window this path explains.
    pub window: (SimTime, SimTime),
    /// Hops, anchor first.
    pub steps: Vec<PathStep>,
    /// `(label, time)` buckets, sorted by hop then resource; `wait` collects
    /// time covered by no chain span. Sums exactly to `total`.
    pub buckets: Vec<(String, SimDuration)>,
    /// The window length (`we - ws`).
    pub total: SimDuration,
}

impl CriticalPath {
    /// The node route of the path, e.g. `"n0>n1>n3"` — the anchor's start
    /// node followed by each hop's destination (consecutive duplicates
    /// collapsed). Two runs took the same path iff signatures match.
    pub fn signature(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut last: Option<u32> = None;
        for (i, s) in self.steps.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "n{}", s.from);
                last = Some(s.from);
            }
            if last != Some(s.to) {
                let _ = write!(out, ">n{}", s.to);
                last = Some(s.to);
            }
        }
        out
    }

    /// Sum of all buckets — equals `total` by construction; exposed so
    /// check gates can assert it.
    pub fn bucket_sum(&self) -> SimDuration {
        self.buckets
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeConfig, ProbeSink};

    const HOSTP: ProbeId = ProbeId::new("cp_host", Track::Host);
    const PCIP: ProbeId = ProbeId::new("cp_pci", Track::Pci);
    const WIREP: ProbeId = ProbeId::new("cp_wire", Track::Wire);

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Two-hop delivery 0 → 1 → 2: root flow at n0, hop flows (0,t,1) and
    /// (0,t,2) (the second starting at n1), deliveries at n1 and n2.
    fn two_hop_stream() -> Vec<ProbeEvent> {
        let mut s = ProbeSink::new(ProbeConfig::spans());
        let root = FlowId::new(0, 7, 0);
        let h1 = FlowId::new(0, 7, 1);
        let h2 = FlowId::new(0, 7, 2);
        s.complete_flow(at(0), 0, HOSTP, SimDuration::from_nanos(100), "send", root);
        s.begin_flow(at(100), 0, PCIP, "sdma", 0, 0, h1);
        s.end(at(300), 0, PCIP, "sdma");
        s.begin_flow(at(300), 0, WIREP, "tx", 1, 0, h1);
        s.end(at(600), 0, WIREP, "tx");
        // The packet's arrival at n1 is recorded before any forwarding
        // work it triggers — that mark is what the predecessor link keys on.
        s.instant_flow(at(620), 1, ProbeId::new("cp_rx", Track::Wire), "arrive", 0, h1);
        s.instant_flow(at(700), 1, FLOW_DELIVERY, "recv", 0, h1);
        // Forwarding hop starts at n1 (cut-through: before n1's delivery).
        s.begin_flow(at(650), 1, WIREP, "tx", 2, 0, h2);
        s.end(at(950), 1, WIREP, "tx");
        s.instant_flow(at(1_050), 2, FLOW_DELIVERY, "recv", 0, h2);
        let mut v = s.to_vec();
        v.sort_by_key(|e| (e.time, e.seq));
        v
    }

    #[test]
    fn lineage_chains_through_the_forwarding_node() {
        let ev = two_hop_stream();
        let g = FlowGraph::build(&ev);
        let root = FlowId::new(0, 7, 0);
        let h1 = FlowId::new(0, 7, 1);
        let h2 = FlowId::new(0, 7, 2);
        assert_eq!(g.pred(h1), Some(root));
        assert_eq!(g.pred(h2), Some(h1));
        assert_eq!(g.pred(root), None);
        assert_eq!(g.lineage(h2), vec![root, h1, h2]);
        assert!(g.validate().is_empty(), "{:?}", g.validate());
    }

    #[test]
    fn critical_path_buckets_sum_to_the_window() {
        let ev = two_hop_stream();
        let g = FlowGraph::build(&ev);
        let cp = g
            .critical_path(&ev, (at(0), at(1_050)))
            .expect("window contains a delivery");
        assert_eq!(cp.signature(), "n0>n1>n2");
        assert_eq!(cp.bucket_sum(), cp.total);
        assert_eq!(cp.total.as_nanos(), 1_050);
        // The host send, both wire hops, and the SDMA each hold a bucket.
        assert!(cp.buckets.iter().any(|(k, _)| k.ends_with("host")));
        assert!(cp.buckets.iter().any(|(k, _)| k.ends_with("wire")));
        assert!(cp.buckets.iter().any(|(k, _)| k.ends_with("pci")));
        assert!(cp.buckets.iter().any(|(k, _)| k == "wait"));
    }

    #[test]
    fn missing_host_anchor_is_reported() {
        let mut s = ProbeSink::new(ProbeConfig::spans());
        let orphan = FlowId::new(3, 1, 4);
        s.begin_flow(at(0), 3, WIREP, "tx", 4, 0, orphan);
        s.end(at(100), 3, WIREP, "tx");
        s.instant_flow(at(200), 4, FLOW_DELIVERY, "recv", 0, orphan);
        let g = FlowGraph::build(&s.to_vec());
        let errs = g.validate();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("no host send record"), "{errs:?}");
    }

    #[test]
    fn empty_window_has_no_path() {
        let ev = two_hop_stream();
        let g = FlowGraph::build(&ev);
        assert!(g.critical_path(&ev, (at(2_000), at(3_000))).is_none());
    }
}
