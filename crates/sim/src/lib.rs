//! `gm-sim` — a small, deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the Myrinet/GM-2 multicast reproduction:
//! every other crate models its hardware or protocol as a [`World`] whose
//! events the [`Engine`] dispatches in timestamp order.
//!
//! Design properties:
//!
//! * **Integer time** ([`SimTime`], nanoseconds) — no floating-point drift.
//! * **Stable ordering** — simultaneous events fire in scheduling order, so a
//!   run is a pure function of `(world, seed)`.
//! * **Labelled RNG streams** ([`DetRng`]) — stochastic components draw from
//!   independent streams, so adding randomness to one component never
//!   perturbs another.
//!
//! ```
//! use gm_sim::{Engine, Scheduler, SimDuration, SimTime, World};
//!
//! struct Counter(u32);
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
//!         self.0 += 1;
//!         if self.0 < 3 {
//!             sched.after(SimDuration::from_micros(1), ());
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(Counter(0));
//! eng.schedule(SimTime::ZERO, ());
//! eng.run_to_idle();
//! assert_eq!(eng.world().0, 3);
//! assert_eq!(eng.now(), SimTime::from_nanos(2_000));
//! ```

#![warn(missing_docs)]

mod engine;
pub mod critical_path;
pub mod flow;
pub mod parallel;
pub mod probe;
mod queue;
mod rng;
pub mod series;
mod stats;
mod time;

pub use critical_path::{CriticalPath, FlowGraph, PathStep, FLOW_DELIVERY};
pub use engine::{dispatch_stats, Engine, RunOutcome, Scheduler, World};
pub use flow::FlowId;
pub use parallel::{Outbox, ShardStats, ShardWorld, ShardedEngine};
pub use probe::{Metrics, ProbeConfig, ProbeEvent, ProbeSink};
pub use series::{GaugeSummary, SeriesConfig, SeriesPoint, SeriesSink, HIST_BINS};
pub use queue::{default_kind as default_queue_kind, EventClass, EventQueue, QueueKind};
pub use rng::{splitmix64, DetRng};
pub use stats::{BusyTracker, Counters, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
