//! `sim::flow` — causal flow identity.
//!
//! A [`FlowId`] names one end-to-end message delivery: the path of a payload
//! from the host send call at its origin, through NIC work items, PCI DMA
//! spans, wire hops and retransmissions, to the receive callback at one
//! destination. Probe records carry the flow of the message they describe
//! (`FlowId::NONE` when the record is not message-scoped), which is what
//! lets `sim::critical_path` reconstruct lineages and lets the Perfetto
//! export draw flow arrows across tracks.
//!
//! The identity is the triple `(origin, tag, dest)`:
//!
//! * `origin` — the node whose application injected the message (the
//!   multicast *root* for tree-forwarded packets, which carry the root in
//!   their header; the local sender for point-to-point sends);
//! * `tag` — the application-level tag of the message (the iteration number
//!   in the benchmark workloads). Wire-level sequence numbers are *not*
//!   part of the identity: a retransmission or a multi-packet fragment is
//!   the same flow as its first attempt.
//! * `dest` — the delivery endpoint. A multicast to N destinations is N
//!   flows sharing `(origin, tag)`; the hop `root → child` that also feeds
//!   a forwarding subtree belongs to the child's flow, and deeper
//!   deliveries link back to it causally (see `sim::critical_path`).
//!
//! The triple packs into one `u64` so probe records stay `Copy` and
//! recording stays allocation-free. This module is the only place allowed
//! to treat a flow as a raw integer — the simlint `flow-id` rule forbids
//! `u64`-typed flow identifiers (and `FlowId::from_raw`) everywhere else.

/// Packed causal identity of one message delivery. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

const VALID_BIT: u64 = 1 << 63;
const NODE_BITS: u32 = 16;
const TAG_BITS: u32 = 31;
const NODE_MASK: u64 = (1 << NODE_BITS) - 1;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;
const ORIGIN_SHIFT: u32 = TAG_BITS + NODE_BITS; // 47
const DEST_SHIFT: u32 = TAG_BITS; // 31

impl FlowId {
    /// "No flow": the default on every probe record that is not
    /// message-scoped (timers, barrier spans, engine marks).
    pub const NONE: FlowId = FlowId(0);

    /// The flow of the message `(origin, tag, dest)`. Node ids are truncated
    /// to 16 bits and the tag to its low 31 bits — ample for the simulated
    /// cluster sizes and iteration counts, and collisions would only blur
    /// telemetry, never simulation results.
    pub const fn new(origin: u32, tag: u64, dest: u32) -> FlowId {
        FlowId(
            VALID_BIT
                | ((origin as u64 & NODE_MASK) << ORIGIN_SHIFT)
                | ((dest as u64 & NODE_MASK) << DEST_SHIFT)
                | (tag & TAG_MASK),
        )
    }

    /// Whether this is [`FlowId::NONE`].
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Whether this names a real flow.
    pub const fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The injecting node (the multicast root for tree-forwarded packets).
    pub const fn origin(self) -> u32 {
        ((self.0 >> ORIGIN_SHIFT) & NODE_MASK) as u32
    }

    /// The delivery endpoint.
    pub const fn dest(self) -> u32 {
        ((self.0 >> DEST_SHIFT) & NODE_MASK) as u32
    }

    /// The application tag (low 31 bits).
    pub const fn tag(self) -> u64 {
        self.0 & TAG_MASK
    }

    /// The packed representation, for export surfaces only (Perfetto flow
    /// `id` fields, JSON artifacts). Everything else passes `FlowId` around.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a flow from its packed representation. Only this module and
    /// deserializing test code may call it — the simlint `flow-id` rule
    /// flags any other use.
    pub const fn from_raw(raw: u64) -> FlowId {
        FlowId(raw)
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "-")
        } else {
            write!(f, "n{}~{}@n{}", self.origin(), self.tag(), self.dest())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let f = FlowId::new(3, 41, 12);
        assert!(f.is_some());
        assert_eq!(f.origin(), 3);
        assert_eq!(f.tag(), 41);
        assert_eq!(f.dest(), 12);
        assert_eq!(FlowId::from_raw(f.raw()), f);
    }

    #[test]
    fn zero_triple_is_distinct_from_none() {
        let f = FlowId::new(0, 0, 0);
        assert!(f.is_some());
        assert_ne!(f, FlowId::NONE);
        assert!(FlowId::NONE.is_none());
        assert_eq!(FlowId::default(), FlowId::NONE);
    }

    #[test]
    fn identity_is_the_triple() {
        assert_eq!(FlowId::new(1, 2, 3), FlowId::new(1, 2, 3));
        assert_ne!(FlowId::new(1, 2, 3), FlowId::new(1, 2, 4));
        assert_ne!(FlowId::new(1, 2, 3), FlowId::new(1, 3, 3));
        assert_ne!(FlowId::new(1, 2, 3), FlowId::new(2, 2, 3));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FlowId::NONE.to_string(), "-");
        assert_eq!(FlowId::new(0, 7, 5).to_string(), "n0~7@n5");
    }
}
