//! `sim::probe` — the unified observability layer.
//!
//! Every layer of the stack (engine, fabric, NIC firmware, multicast
//! extension, MPI ranks) reports through this one surface:
//!
//! * a **typed event bus**: probe points are static [`ProbeId`]s (name +
//!   [`Track`]); records carry a [`Phase`] and a small `Copy` payload, land
//!   in a bounded ring-buffer [`ProbeSink`], and are totally ordered by
//!   `(SimTime, seq)` — deterministic because recording happens inside the
//!   deterministic event loop;
//! * a **counter registry**: [`Metrics`] is the per-run snapshot of every
//!   protocol counter (NIC, fabric, engine), replacing scattered bench-local
//!   tallies;
//! * **span timelines**: `Begin`/`End`/`Complete` phases model resource
//!   occupancy (host CPU, LANai, PCI, wire) and export as Chrome
//!   trace-event / Perfetto JSON ([`perfetto`]) with one track per
//!   node×resource;
//! * **latency attribution** ([`attribution`]): a sweep over the recorded
//!   spans splits measured iteration windows into host / NIC / PCI /
//!   serialization / contention / retransmission buckets that sum exactly
//!   to the measured latency.
//!
//! Disabled probes are free beyond one branch: [`ProbeSink::record`] returns
//! before touching the (never-allocated) buffer, so `// simlint::hot` paths
//! stay allocation-free.

use std::collections::BTreeMap;

use crate::flow::FlowId;
use crate::time::{SimDuration, SimTime};

/// The resource a probe point belongs to; becomes the Perfetto thread
/// (track) within the node's process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The host CPU.
    Host,
    /// The LANai NIC processor.
    Lanai,
    /// The PCI DMA engine.
    Pci,
    /// The injection link / wire.
    Wire,
    /// Application/protocol-level markers.
    App,
}

impl Track {
    /// Stable display name (Perfetto thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::Host => "host",
            Track::Lanai => "lanai",
            Track::Pci => "pci",
            Track::Wire => "wire",
            Track::App => "app",
        }
    }

    /// Stable small integer (Perfetto `tid`).
    pub fn tid(self) -> u32 {
        match self {
            Track::Host => 0,
            Track::Lanai => 1,
            Track::Pci => 2,
            Track::Wire => 3,
            Track::App => 4,
        }
    }
}

/// Static identity of one probe point. Declare these as `const`s; the
/// simlint `probe-unique` rule enforces workspace-wide name uniqueness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeId {
    /// Unique event-kind name.
    pub name: &'static str,
    /// The resource track records land on.
    pub track: Track,
}

impl ProbeId {
    /// Define a probe point.
    pub const fn new(name: &'static str, track: Track) -> Self {
        ProbeId { name, track }
    }
}

/// Contention stall reported by the fabric: time a packet spent waiting for
/// busy links along its route. Attributed to the *contention* bucket.
pub const LINK_STALL: ProbeId = ProbeId::new("link_stall", Track::Wire);

/// A packet dropped by the fabric (loss / corruption). Gap time after a drop
/// is attributed to the *retransmission* bucket.
pub const PKT_DROP: ProbeId = ProbeId::new("pkt_drop", Track::Wire);

/// How a record relates to a span on its track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span opens (matched by the next `End` on the same node+track).
    Begin,
    /// The open span on this node+track closes.
    End,
    /// A point ("instant") event.
    Mark,
    /// A self-contained span of length [`ProbeEvent::dur`].
    Complete,
}

/// One record on the bus. All fields are `Copy`; recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Simulated time of the record.
    pub time: SimTime,
    /// Global sequence number (total order among equal timestamps).
    pub seq: u64,
    /// Node the event happened on.
    pub node: u32,
    /// Which probe point fired.
    pub id: ProbeId,
    /// Span phase.
    pub phase: Phase,
    /// Span length (only for [`Phase::Complete`]).
    pub dur: SimDuration,
    /// Sub-label (e.g. the LANai work-item kind).
    pub label: &'static str,
    /// First payload word (destination node, DMA ns, ...).
    pub a: u64,
    /// Second payload word (wire bytes, ...).
    pub b: u64,
    /// Causal flow this record belongs to ([`FlowId::NONE`] when the record
    /// is not message-scoped). `End` records may leave this `NONE`: span
    /// pairing per `(node, track)` inherits the opening `Begin`'s flow.
    pub flow: FlowId,
}

/// What a run records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    enabled: bool,
    capacity: usize,
}

impl ProbeConfig {
    /// Default ring capacity of [`ProbeConfig::spans`].
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Record nothing; every probe site reduces to one branch.
    pub const fn off() -> Self {
        ProbeConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Record full span timelines into a ring of the default capacity.
    pub const fn spans() -> Self {
        ProbeConfig {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Record spans into a ring of `capacity` events (oldest evicted first).
    pub const fn spans_with_capacity(capacity: usize) -> Self {
        ProbeConfig {
            enabled: capacity > 0,
            capacity,
        }
    }

    /// Whether anything is recorded.
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig::off()
    }
}

/// The ring-buffer sink probe records land in.
///
/// The buffer is allocated once at construction (only if enabled); recording
/// is a branch plus a slot write, so instrumented hot paths never allocate.
#[derive(Clone, Debug, Default)]
pub struct ProbeSink {
    config: ProbeConfig,
    /// Ring storage; once `len == capacity`, `head` wraps and overwrites.
    events: Vec<ProbeEvent>,
    head: usize,
    seq: u64,
    evicted: u64,
}

impl ProbeSink {
    /// A sink for `config` (pre-allocates the ring iff enabled).
    pub fn new(config: ProbeConfig) -> Self {
        let events = if config.is_enabled() {
            Vec::with_capacity(config.capacity)
        } else {
            Vec::new()
        };
        ProbeSink {
            config,
            events,
            head: 0,
            seq: 0,
            evicted: 0,
        }
    }

    /// A disabled sink (the default for clusters).
    pub fn disabled() -> Self {
        ProbeSink::new(ProbeConfig::off())
    }

    /// Whether records are kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration in use.
    pub fn config(&self) -> ProbeConfig {
        self.config
    }

    /// Record one event with no flow identity. Free (one branch) when
    /// disabled; never allocates beyond the ring reserved at construction.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        time: SimTime,
        node: u32,
        id: ProbeId,
        phase: Phase,
        dur: SimDuration,
        label: &'static str,
        a: u64,
        b: u64,
    ) {
        self.record_flow(time, node, id, phase, dur, label, a, b, FlowId::NONE);
    }

    /// Record one event tagged with the causal flow it belongs to. Free (one
    /// branch) when disabled; never allocates beyond the ring reserved at
    /// construction.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record_flow(
        &mut self,
        time: SimTime,
        node: u32,
        id: ProbeId,
        phase: Phase,
        dur: SimDuration,
        label: &'static str,
        a: u64,
        b: u64,
        flow: FlowId,
    ) {
        if !self.config.enabled {
            return;
        }
        let ev = ProbeEvent {
            time,
            seq: self.seq,
            node,
            id,
            phase,
            dur,
            label,
            a,
            b,
            flow,
        };
        self.seq += 1;
        if self.events.len() < self.config.capacity {
            self.events.push(ev);
        } else {
            // Ring is full: overwrite the oldest slot.
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.config.capacity;
            self.evicted += 1;
        }
    }

    /// Open a span on `(node, id.track)`.
    #[inline]
    pub fn begin(&mut self, time: SimTime, node: u32, id: ProbeId, label: &'static str, a: u64, b: u64) {
        self.record(time, node, id, Phase::Begin, SimDuration::ZERO, label, a, b);
    }

    /// Open a span on `(node, id.track)` belonging to `flow`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn begin_flow(
        &mut self,
        time: SimTime,
        node: u32,
        id: ProbeId,
        label: &'static str,
        a: u64,
        b: u64,
        flow: FlowId,
    ) {
        self.record_flow(time, node, id, Phase::Begin, SimDuration::ZERO, label, a, b, flow);
    }

    /// Close the open span on `(node, id.track)`.
    #[inline]
    pub fn end(&mut self, time: SimTime, node: u32, id: ProbeId, label: &'static str) {
        self.record(time, node, id, Phase::End, SimDuration::ZERO, label, 0, 0);
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&mut self, time: SimTime, node: u32, id: ProbeId, label: &'static str, a: u64) {
        self.record(time, node, id, Phase::Mark, SimDuration::ZERO, label, a, 0);
    }

    /// Record a point event belonging to `flow`.
    #[inline]
    pub fn instant_flow(
        &mut self,
        time: SimTime,
        node: u32,
        id: ProbeId,
        label: &'static str,
        a: u64,
        flow: FlowId,
    ) {
        self.record_flow(time, node, id, Phase::Mark, SimDuration::ZERO, label, a, 0, flow);
    }

    /// Record a self-contained `[time, time + dur]` span.
    #[inline]
    pub fn complete(&mut self, time: SimTime, node: u32, id: ProbeId, dur: SimDuration, label: &'static str) {
        self.record(time, node, id, Phase::Complete, dur, label, 0, 0);
    }

    /// Record a self-contained `[time, time + dur]` span belonging to `flow`.
    #[inline]
    pub fn complete_flow(
        &mut self,
        time: SimTime,
        node: u32,
        id: ProbeId,
        dur: SimDuration,
        label: &'static str,
        flow: FlowId,
    ) {
        self.record_flow(time, node, id, Phase::Complete, dur, label, 0, 0, flow);
    }

    /// Recorded events, oldest first (ring rotation already applied).
    pub fn iter(&self) -> impl Iterator<Item = &ProbeEvent> + Clone + '_ {
        let (tail, front) = self.events.split_at(self.head.min(self.events.len()));
        front.iter().chain(tail.iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded (or the sink is disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring slots actually allocated (0 for a disabled sink: the
    /// zero-allocation guarantee the tests pin).
    pub fn allocated_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Events overwritten because the ring filled.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Copy the retained events out, oldest first.
    pub fn to_vec(&self) -> Vec<ProbeEvent> {
        self.iter().copied().collect()
    }

    /// Merge per-shard sinks into one canonical stream: a stable sort by
    /// `(time, node)` (preserving each sink's internal order) followed by a
    /// seq renumbering.
    ///
    /// Both the sequential and the sharded scenario paths run their streams
    /// through this, so the two modes produce byte-identical probe output:
    /// a node's records are emitted by exactly one shard in an order that
    /// does not depend on the sharding, and records of different nodes at
    /// the same instant come from commuting handlers, so `(time, node)` plus
    /// per-sink order is a total, mode-independent key. (If any ring
    /// evicted, per-shard rings evict different records than one global ring
    /// would — size the capacity to the run when exact parity matters.)
    pub fn merge_canonical(sinks: Vec<ProbeSink>) -> ProbeSink {
        let enabled = sinks.iter().any(ProbeSink::is_enabled);
        let capacity: usize = sinks.iter().map(|s| s.config.capacity).sum();
        let evicted: u64 = sinks.iter().map(|s| s.evicted).sum();
        let mut events: Vec<ProbeEvent> = Vec::with_capacity(sinks.iter().map(ProbeSink::len).sum());
        for sink in &sinks {
            events.extend(sink.iter().copied());
        }
        events.sort_by_key(|e| (e.time, e.node));
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        let seq = events.len() as u64;
        ProbeSink {
            config: ProbeConfig {
                enabled,
                capacity: capacity.max(events.len()),
            },
            events,
            head: 0,
            seq,
            evicted,
        }
    }
}

/// A per-run snapshot of every counter/gauge, keyed `"<layer>.<counter>"`.
///
/// Built once per run from the NIC, fabric, and engine counters; replaces
/// the ad-hoc per-bench tallies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    entries: BTreeMap<String, u64>,
}

impl Metrics {
    /// An empty snapshot.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `value` to `"<layer>.<name>"` (creates at zero).
    pub fn add(&mut self, layer: &str, name: &str, value: u64) {
        *self.entries.entry(format!("{layer}.{name}")).or_insert(0) += value;
    }

    /// Set `"<layer>.<name>"` to `value`.
    pub fn set(&mut self, layer: &str, name: &str, value: u64) {
        self.entries.insert(format!("{layer}.{name}"), value);
    }

    /// Value of a fully-qualified key (0 if absent).
    pub fn get(&self, key: &str) -> u64 {
        self.entries.get(key).copied().unwrap_or(0)
    }

    /// Iterate `(key, value)` in sorted key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// A copy with every `"<layer>.*"` key removed. Parity checks use this
    /// to drop execution-diagnostic layers (e.g. `parallel`) whose values
    /// legitimately depend on how a run was executed, not what it computed.
    pub fn without_layer(&self, layer: &str) -> Metrics {
        let prefix = format!("{layer}.");
        Metrics {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| !k.starts_with(&prefix))
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
        }
    }

    /// Number of counters held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another snapshot into this one (summing shared keys).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.entries {
            *self.entries.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Chrome trace-event ("Perfetto") JSON export.
///
/// The output loads directly in <https://ui.perfetto.dev> (or
/// `chrome://tracing`): one process per node, one thread per resource track,
/// `B`/`E`/`X`/`i` phases, timestamps in microseconds. Records carrying a
/// [`FlowId`](crate::flow::FlowId) additionally emit Chrome *flow events*
/// (`ph:"s"`/`"t"`/`"f"`, keyed by the packed flow id), which Perfetto
/// renders as arrows linking the spans of one delivery across tracks and
/// nodes.
pub mod perfetto {
    use super::{Phase, ProbeEvent, Track};

    /// Microseconds with nanosecond resolution, rendered as a fixed-point
    /// decimal (no float-formatting ambiguity).
    fn write_ts(out: &mut String, ns: u64) {
        use std::fmt::Write;
        let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
    }

    /// Render `events` (must be in record order) as a complete Chrome
    /// trace-event JSON document.
    pub fn chrome_trace_json<'a>(events: impl Iterator<Item = &'a ProbeEvent> + Clone) -> String {
        use std::fmt::Write;
        // Flow arrows need to know each flow's first and last anchorable
        // record (`s` opens the arrow chain, `t` continues it, `f` ends it).
        let mut flow_span: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for e in events.clone() {
            if e.flow.is_some() && e.phase != Phase::End {
                let entry = flow_span.entry(e.flow.raw()).or_insert((e.seq, e.seq));
                entry.0 = entry.0.min(e.seq);
                entry.1 = entry.1.max(e.seq);
            }
        }
        let mut out = String::with_capacity(1 << 16);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
        };

        // Metadata: name each node's process and each track's thread.
        let mut seen: Vec<(u32, Track)> = Vec::new();
        let mut seen_node: Vec<u32> = Vec::new();
        for e in events.clone() {
            if !seen_node.contains(&e.node) {
                seen_node.push(e.node);
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"node{}\"}}}}",
                    e.node, e.node
                );
            }
            if !seen.contains(&(e.node, e.id.track)) {
                seen.push((e.node, e.id.track));
                sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    e.node,
                    e.id.track.tid(),
                    e.id.track.name()
                );
            }
        }

        for e in events {
            let ph = match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Mark => "i",
                Phase::Complete => "X",
            };
            let name = if e.label.is_empty() { e.id.name } else { e.label };
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":",
                name, e.id.name, ph
            );
            write_ts(&mut out, e.time.as_nanos());
            if e.phase == Phase::Complete {
                out.push_str(",\"dur\":");
                write_ts(&mut out, e.dur.as_nanos());
            }
            let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.node, e.id.track.tid());
            if e.phase == Phase::Mark {
                out.push_str(",\"s\":\"t\"");
            }
            if e.flow.is_some() {
                let _ = write!(out, ",\"args\":{{\"a\":{},\"b\":{},\"flow\":{}}}}}", e.a, e.b, e.flow.raw());
            } else {
                let _ = write!(out, ",\"args\":{{\"a\":{},\"b\":{}}}}}", e.a, e.b);
            }
            // Flow arrow anchored to this record (same ts/pid/tid binds it
            // to the slice just emitted).
            if e.flow.is_some() && e.phase != Phase::End {
                let (first, last) = flow_span[&e.flow.raw()];
                let fph = if first == last {
                    None // single-record flow: no arrow to draw
                } else if e.seq == first {
                    Some("s")
                } else if e.seq == last {
                    Some("f")
                } else {
                    Some("t")
                };
                if let Some(fph) = fph {
                    // A slice event for this record was just emitted, so a
                    // separator is always needed.
                    out.push(',');
                    let _ = write!(
                        out,
                        "{{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"{}\",\"id\":{},\"ts\":",
                        fph,
                        e.flow.raw()
                    );
                    write_ts(&mut out, e.time.as_nanos());
                    let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.node, e.id.track.tid());
                    if fph == "f" {
                        out.push_str(",\"bp\":\"e\"");
                    }
                    out.push('}');
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Latency attribution: split measured iteration windows into exclusive
/// time buckets using the recorded span timeline.
pub mod attribution {
    use super::{Phase, ProbeEvent, Track, LINK_STALL, PKT_DROP};
    use crate::time::{SimDuration, SimTime};

    /// Exclusive per-run time buckets. Within each measured window every
    /// nanosecond lands in exactly one bucket (priority: contention stall >
    /// wire > PCI > LANai > host; un-covered gaps go to *contention*, or to
    /// *retransmission* once a drop has occurred in the window), so the
    /// buckets sum to the total measured latency by construction.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Attribution {
        /// Host CPU busy (API overhead, notice handling, forwarding copies).
        pub host: SimDuration,
        /// LANai work-item occupancy (NIC processing).
        pub nic: SimDuration,
        /// PCI DMA transfer time.
        pub pci: SimDuration,
        /// Wire time: serialization plus flight (propagation + switching).
        pub serialization: SimDuration,
        /// Waiting for busy links, plus gaps not covered by any resource.
        pub contention: SimDuration,
        /// Gap time after a packet drop (timeout + recovery).
        pub retransmission: SimDuration,
        /// Sum of all buckets == sum of window lengths.
        pub total: SimDuration,
        /// Number of windows attributed.
        pub windows: u32,
    }

    impl Attribution {
        /// Per-window (per-iteration) mean of one bucket, in microseconds.
        pub fn mean_us(&self, bucket: SimDuration) -> f64 {
            if self.windows == 0 {
                0.0
            } else {
                bucket.as_micros_f64() / self.windows as f64
            }
        }

        /// Mean attributed latency per window, in microseconds.
        pub fn mean_total_us(&self) -> f64 {
            self.mean_us(self.total)
        }

        /// `(label, mean µs)` rows for reporting, bucket order fixed.
        pub fn rows(&self) -> [(&'static str, f64); 6] {
            [
                ("host", self.mean_us(self.host)),
                ("nic", self.mean_us(self.nic)),
                ("pci", self.mean_us(self.pci)),
                ("serialization", self.mean_us(self.serialization)),
                ("contention", self.mean_us(self.contention)),
                ("retransmission", self.mean_us(self.retransmission)),
            ]
        }
    }

    // Bucket indices for the sweep's active counters.
    const HOST: usize = 0;
    const NIC: usize = 1;
    const PCI: usize = 2;
    const SER: usize = 3;
    const CONT: usize = 4;
    const N_BUCKETS: usize = 5;
    /// Priority, strongest first, for segments covered by multiple spans.
    const PRIORITY: [usize; N_BUCKETS] = [CONT, SER, PCI, NIC, HOST];

    fn bucket_of(ev: &ProbeEvent) -> usize {
        if ev.id.name == LINK_STALL.name {
            return CONT;
        }
        match ev.id.track {
            Track::Host => HOST,
            Track::Lanai => NIC,
            Track::Pci => PCI,
            Track::Wire => SER,
            Track::App => HOST,
        }
    }

    /// Attribute `events` over the measured `windows` (disjoint, ascending
    /// `[start, end]` pairs — the timed iterations of a run).
    pub fn attribute(events: &[ProbeEvent], windows: &[(SimTime, SimTime)]) -> Attribution {
        let mut out = Attribution {
            windows: windows.len() as u32,
            ..Attribution::default()
        };
        if windows.is_empty() {
            return out;
        }

        // 1. Collect closed intervals (ns) per bucket, plus drop instants.
        //    Begin/End pairs are matched per (node, track): every track is a
        //    serially-busy resource, so spans cannot nest.
        let mut intervals: Vec<(u64, u64, usize)> = Vec::new();
        let mut drops: Vec<u64> = Vec::new();
        let mut open: std::collections::BTreeMap<(u32, u32), (u64, usize)> =
            std::collections::BTreeMap::new();
        for ev in events {
            let key = (ev.node, ev.id.track.tid());
            match ev.phase {
                Phase::Begin => {
                    // A dangling open span (shouldn't happen) closes here.
                    if let Some((s, b)) = open.insert(key, (ev.time.as_nanos(), bucket_of(ev))) {
                        intervals.push((s, ev.time.as_nanos(), b));
                    }
                }
                Phase::End => {
                    if let Some((s, b)) = open.remove(&key) {
                        intervals.push((s, ev.time.as_nanos(), b));
                    }
                }
                Phase::Complete => {
                    let s = ev.time.as_nanos();
                    intervals.push((s, s + ev.dur.as_nanos(), bucket_of(ev)));
                }
                Phase::Mark => {
                    if ev.id.name == PKT_DROP.name {
                        drops.push(ev.time.as_nanos());
                    }
                }
            }
        }
        // Spans still open at the end of the run extend to the last window.
        let run_end = windows.last().map_or(0, |w| w.1.as_nanos());
        for (&_key, &(s, b)) in &open {
            if s < run_end {
                intervals.push((s, run_end, b));
            }
        }
        drops.sort_unstable();

        // 2. Boundary sweep: +1/-1 deltas per bucket at interval edges.
        let mut edges: Vec<(u64, i32, usize)> = Vec::with_capacity(intervals.len() * 2);
        for &(s, e, b) in &intervals {
            if e > s {
                edges.push((s, 1, b));
                edges.push((e, -1, b));
            }
        }
        edges.sort_unstable();

        let mut active = [0i32; N_BUCKETS];
        let mut ei = 0usize;
        let mut di = 0usize;
        let mut acc = [0u64; N_BUCKETS + 1]; // +1: retransmission gaps
        const RETX: usize = N_BUCKETS;

        for &(ws, we) in windows {
            let (ws, we) = (ws.as_nanos(), we.as_nanos());
            // Advance edges up to the window start.
            while ei < edges.len() && edges[ei].0 <= ws {
                active[edges[ei].2] += edges[ei].1;
                ei += 1;
            }
            while di < drops.len() && drops[di] < ws {
                di += 1;
            }
            let mut dropped_in_window = false;
            let mut cur = ws;
            while cur < we {
                // Next boundary: the next edge or drop inside the window.
                let mut next = we;
                if ei < edges.len() {
                    next = next.min(edges[ei].0);
                }
                if di < drops.len() {
                    next = next.min(drops[di]);
                }
                if next > cur {
                    // Attribute [cur, next) to the strongest active bucket.
                    let seg = next - cur;
                    let mut bucket = None;
                    for &b in &PRIORITY {
                        if active[b] > 0 {
                            bucket = Some(b);
                            break;
                        }
                    }
                    match bucket {
                        Some(b) => acc[b] += seg,
                        None if dropped_in_window => acc[RETX] += seg,
                        None => acc[CONT] += seg,
                    }
                    cur = next;
                }
                while ei < edges.len() && edges[ei].0 <= cur {
                    active[edges[ei].2] += edges[ei].1;
                    ei += 1;
                }
                while di < drops.len() && drops[di] <= cur {
                    dropped_in_window = true;
                    di += 1;
                }
            }
        }

        out.host = SimDuration::from_nanos(acc[HOST]);
        out.nic = SimDuration::from_nanos(acc[NIC]);
        out.pci = SimDuration::from_nanos(acc[PCI]);
        out.serialization = SimDuration::from_nanos(acc[SER]);
        out.contention = SimDuration::from_nanos(acc[CONT]);
        out.retransmission = SimDuration::from_nanos(acc[RETX]);
        out.total = SimDuration::from_nanos(acc.iter().sum());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T_A: ProbeId = ProbeId::new("test_a", Track::Lanai);
    const T_B: ProbeId = ProbeId::new("test_b", Track::Wire);

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_sink_records_nothing_and_allocates_nothing() {
        let mut s = ProbeSink::disabled();
        for i in 0..10_000 {
            s.instant(at(i), 0, T_A, "x", i);
        }
        assert!(s.is_empty());
        assert_eq!(s.allocated_capacity(), 0, "disabled sink must not allocate");
        assert!(!s.is_enabled());
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut s = ProbeSink::new(ProbeConfig::spans_with_capacity(4));
        for i in 0..10u64 {
            s.instant(at(i), 0, T_A, "x", i);
        }
        let kept: Vec<u64> = s.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(s.evicted(), 6);
        // Ordering key (time, seq) is strictly increasing.
        let seqs: Vec<u64> = s.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn capacity_is_reserved_up_front() {
        let mut s = ProbeSink::new(ProbeConfig::spans_with_capacity(64));
        let cap = s.allocated_capacity();
        assert!(cap >= 64);
        for i in 0..200u64 {
            s.instant(at(i), 0, T_A, "x", i);
        }
        assert_eq!(s.allocated_capacity(), cap, "recording must not reallocate");
    }

    #[test]
    fn metrics_snapshot_is_sorted_and_merges() {
        let mut m = Metrics::new();
        m.add("nic", "tx_data", 3);
        m.add("fabric", "delivered", 5);
        m.add("nic", "tx_data", 2);
        assert_eq!(m.get("nic.tx_data"), 5);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["fabric.delivered", "nic.tx_data"]);
        let mut other = Metrics::new();
        other.add("nic", "tx_data", 1);
        m.merge(&other);
        assert_eq!(m.get("nic.tx_data"), 6);
    }

    #[test]
    fn perfetto_export_is_well_formed() {
        let mut s = ProbeSink::new(ProbeConfig::spans());
        s.begin(at(1_000), 0, T_A, "work", 0, 0);
        s.end(at(2_500), 0, T_A, "work");
        s.instant(at(3_000), 1, T_B, "arrive", 7);
        s.complete(at(3_000), 1, T_B, SimDuration::from_nanos(500), "busy");
        let json = perfetto::chrome_trace_json(s.iter());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":0.500"));
        assert!(json.contains("node0") && json.contains("node1"));
        assert!(json.contains("\"lanai\"") && json.contains("\"wire\""));
    }

    #[test]
    fn attribution_sums_to_window_total() {
        let mut s = ProbeSink::new(ProbeConfig::spans());
        // Window [0, 1000]: host 0-100 (Complete), lanai 100-400 (B/E),
        // wire 300-700 (B/E, overlap wins over lanai), gap 700-1000.
        const H: ProbeId = ProbeId::new("test_host", Track::Host);
        const W: ProbeId = ProbeId::new("test_wire", Track::Wire);
        s.complete(at(0), 0, H, SimDuration::from_nanos(100), "api");
        s.begin(at(100), 0, T_A, "work", 0, 0);
        s.begin(at(300), 0, W, "tx", 0, 0);
        s.end(at(400), 0, T_A, "work");
        s.end(at(700), 0, W, "tx");
        let ev = s.to_vec();
        let win = [(at(0), at(1_000))];
        let a = attribution::attribute(&ev, &win);
        assert_eq!(a.host.as_nanos(), 100);
        assert_eq!(a.nic.as_nanos(), 200); // 100-300 (300-400 claimed by wire)
        assert_eq!(a.serialization.as_nanos(), 400);
        assert_eq!(a.contention.as_nanos(), 300); // the 700-1000 gap
        assert_eq!(a.retransmission.as_nanos(), 0);
        assert_eq!(a.total.as_nanos(), 1_000);
    }

    #[test]
    fn attribution_gap_after_drop_is_retransmission() {
        let mut s = ProbeSink::new(ProbeConfig::spans());
        s.begin(at(0), 0, T_B, "tx", 0, 0);
        s.end(at(200), 0, T_B, "tx");
        s.instant(at(200), 0, PKT_DROP, "", 0);
        s.begin(at(900), 0, T_B, "tx", 0, 0);
        s.end(at(1_000), 0, T_B, "tx");
        let ev = s.to_vec();
        let a = attribution::attribute(&ev, &[(at(0), at(1_000))]);
        assert_eq!(a.serialization.as_nanos(), 300);
        assert_eq!(a.retransmission.as_nanos(), 700, "post-drop gap is recovery");
        assert_eq!(a.total.as_nanos(), 1_000);
    }

    #[test]
    fn link_stall_outranks_serialization() {
        let mut s = ProbeSink::new(ProbeConfig::spans());
        s.begin(at(0), 0, T_B, "tx", 0, 0);
        s.complete(at(100), 1, LINK_STALL, SimDuration::from_nanos(200), "");
        s.end(at(500), 0, T_B, "tx");
        let ev = s.to_vec();
        let a = attribution::attribute(&ev, &[(at(0), at(500))]);
        assert_eq!(a.contention.as_nanos(), 200);
        assert_eq!(a.serialization.as_nanos(), 300);
        assert_eq!(a.total.as_nanos(), 500);
    }
}
