//! The pending-event set: a stable priority queue keyed on time.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps simulations deterministic without requiring
//! the event payload type to be `Ord`.
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * **Wheel** (default): a hierarchical queue tuned for the simulator's
//!   short-horizon traffic. A small sorted *active* vector holds only the
//!   imminent events; the near future is an array of 1 µs buckets with an
//!   occupancy bitmap; the far future overflows into a heap. Most pushes
//!   are an O(1) bucket append instead of an O(log n) sift, pops are O(1)
//!   front-pops, and sorting happens once per bucket drain.
//! * **Heap**: the classic single binary heap, kept as the reference
//!   implementation for differential tests.
//!
//! Both produce the exact same (time, insertion-seq) pop order, so simulated
//! results are bit-for-bit identical; `MYRI_SIM_QUEUE=heap` switches the
//! default for parity runs. See DESIGN.md §6.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::OnceLock;

use crate::time::SimTime;

/// Delivery class within an instant. Wire-boundary events sort before all
/// ordinary events scheduled for the same nanosecond, regardless of when
/// either was pushed. This gives cross-shard packet hand-offs a canonical
/// position in the instant that does not depend on scheduling order — the
/// property the parallel engine's deterministic merge rests on (the
/// sequential engine uses the same rule, so both modes agree bit-for-bit).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EventClass {
    /// A wire hand-off boundary (drained first at its instant).
    Wire = 0,
    /// An ordinary event (FIFO after any wire boundaries at the instant).
    Normal = 1,
}

struct Entry<E> {
    time: SimTime,
    class: EventClass,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Chronological sort key; wire boundaries first, then FIFO, within an
    /// instant.
    #[inline]
    fn key(&self) -> (SimTime, EventClass, u64) {
        (self.time, self.class, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other.key().cmp(&self.key())
    }
}

/// log2 of the bucket width: 1024 ns buckets, matching the ~0.1–16 µs grain
/// of link serialization and hop delays.
const BUCKET_SHIFT: u64 = 10;
/// Number of buckets: 2048 × 1 µs ≈ 2.1 ms of near-future coverage, beyond
/// the longest single-packet timing in the model; later events overflow to
/// the far heap.
const BUCKETS: usize = 2048;
const BUCKET_WIDTH: u64 = 1 << BUCKET_SHIFT;
const WINDOW: u64 = (BUCKETS as u64) * BUCKET_WIDTH;

/// Which queue implementation a new [`EventQueue`] uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// Hierarchical bucketed wheel (default).
    Wheel,
    /// Single binary heap (reference).
    Heap,
}

/// The implementation `EventQueue::new` selects for this process: the wheel,
/// unless the `MYRI_SIM_QUEUE=heap` environment variable picks the reference
/// heap (used for bit-for-bit parity runs).
pub fn default_kind() -> QueueKind {
    static KIND: OnceLock<QueueKind> = OnceLock::new();
    *KIND.get_or_init(|| match std::env::var("MYRI_SIM_QUEUE").as_deref() {
        Ok("heap") => QueueKind::Heap,
        _ => QueueKind::Wheel,
    })
}

/// Near-future timing wheel with a sorted-deque active tier and far-future
/// overflow.
///
/// `active` is a `VecDeque` in ascending (time, seq) order: the earliest
/// event pops from the front in O(1), an event later than everything pending
/// appends at the back in O(1) (the hot path for causal chains), and a
/// mid-span insert moves only the shorter side of the ring. A bucket drain
/// is one extend plus one small sort instead of n heap sifts — the
/// calendar-queue trick that beats a binary heap even at modest queue sizes.
///
/// Partition invariants (checked implicitly by the differential tests):
///
/// * `floor` is the time of the last popped event; the simulation never
///   schedules below it, so every pending event has `time ≥ floor`;
/// * `active` holds every pending event with `time < active_end`;
/// * `buckets[i]` holds events with `base + i·W ≤ time < base + (i+1)·W`,
///   and all bucketed events satisfy `time ≥ active_end`;
/// * `far` holds events with `time ≥ base + WINDOW`;
/// * `active` is refilled lazily: `ensure_active` (called by peek and pop)
///   drains the next occupied bucket when `active` is empty. Anchoring
///   `base` at `floor` keeps pushes out of `active` — a burst of pushes at
///   arbitrary pending times (workload prefill) lands in the buckets at
///   O(1) each instead of degenerating to sorted-insert churn.
struct Wheel<E> {
    /// Sorted ascending by (time, seq); earliest event at the front.
    active: VecDeque<Entry<E>>,
    /// Exclusive upper bound of the span `active` covers.
    active_end: SimTime,
    /// Time of the last popped event; no pending event is earlier.
    floor: u64,
    /// Wheel origin: bucket 0 spans `[base, base + W)` ns.
    base: u64,
    /// Index of the first bucket not yet drained into `active`.
    cursor: usize,
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket; lets `refill` skip empty buckets 64 at a time.
    occupied: [u64; BUCKETS / 64],
    far: BinaryHeap<Entry<E>>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            active: VecDeque::new(),
            active_end: SimTime::ZERO,
            floor: 0,
            base: 0,
            cursor: 0,
            buckets: std::iter::repeat_with(Vec::new).take(BUCKETS).collect(),
            occupied: [0; BUCKETS / 64],
            far: BinaryHeap::new(),
        }
    }

    /// Insert into `active`, preserving ascending (time, seq) order. Only
    /// events inside the already-drained span (`time < active_end`, i.e.
    /// within one bucket width of the clock) land here, so `active` stays
    /// small and the end cases dominate.
    fn insert_active(&mut self, entry: Entry<E>) {
        let k = entry.key();
        // O(1) end cases first; they dominate real schedules (an event later
        // than everything imminent, or earlier than everything pending).
        match self.active.back() {
            None => return self.active.push_back(entry),
            Some(b) if b.key() < k => return self.active.push_back(entry),
            _ => {}
        }
        if self.active.front().map(Entry::key) > Some(k) {
            return self.active.push_front(entry);
        }
        let pos = self.active.partition_point(|e| e.key() < k);
        self.active.insert(pos, entry);
    }

    // simlint::hot
    fn push(&mut self, entry: Entry<E>) {
        let t = entry.time.as_nanos();
        if entry.time < self.active_end {
            self.insert_active(entry);
        } else if t.wrapping_sub(self.base) < WINDOW {
            let idx = ((t - self.base) >> BUCKET_SHIFT) as usize;
            debug_assert!(idx >= self.cursor, "bucketed event behind the drain cursor");
            self.buckets[idx].push(entry);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        } else {
            // Beyond the window — including after a long idle gap that left
            // `base` far behind the clock; the next refill rebases.
            self.far.push(entry);
        }
    }

    /// Restore "`active` non-empty" when events are pending elsewhere.
    /// `pending` is the queue's total length.
    fn ensure_active(&mut self, pending: usize) {
        if self.active.is_empty() && pending > 0 {
            self.refill();
        }
    }

    // simlint::hot
    fn pop(&mut self, pending: usize) -> Option<Entry<E>> {
        self.ensure_active(pending);
        let entry = self.active.pop_front()?;
        self.floor = entry.time.as_nanos();
        Some(entry)
    }

    /// Move the next non-empty time span into `active`. Caller guarantees at
    /// least one event is pending in the buckets or the far heap.
    fn refill(&mut self) {
        loop {
            // Bitmap scan for the first occupied bucket at or after cursor.
            let mut word_i = self.cursor / 64;
            let mut word = match self.occupied.get(word_i) {
                Some(&w) => w & (!0u64 << (self.cursor % 64)),
                None => 0,
            };
            while word == 0 {
                word_i += 1;
                if word_i >= self.occupied.len() {
                    // Wheel exhausted: re-anchor at the earliest far event
                    // and spill the far heap's next window into the buckets.
                    let head = self.far.peek().expect("refill on empty queue");
                    debug_assert!(
                        head.time.as_nanos() >= self.floor,
                        "far event behind the simulation clock"
                    );
                    self.base = head.time.as_nanos();
                    self.active_end = SimTime::from_nanos(self.base);
                    self.cursor = 0;
                    while let Some(head) = self.far.peek() {
                        if head.time.as_nanos().wrapping_sub(self.base) >= WINDOW {
                            break;
                        }
                        let e = self.far.pop().expect("peeked");
                        let idx = ((e.time.as_nanos() - self.base) >> BUCKET_SHIFT) as usize;
                        self.buckets[idx].push(e);
                        self.occupied[idx / 64] |= 1 << (idx % 64);
                    }
                    word_i = 0;
                    // Bucket 0 now holds the far head, so this is non-zero.
                }
                word = self.occupied[word_i];
            }
            let idx = word_i * 64 + word.trailing_zeros() as usize;
            self.occupied[word_i] &= !(1 << (idx % 64));
            self.cursor = idx + 1;
            // The wheel indexes on raw bucket-shifted nanoseconds by design;
            // this is the one place it converts back to typed time.
            let end_ns = self.base.saturating_add(((idx as u64) + 1) << BUCKET_SHIFT);
            self.active_end = SimTime::from_nanos(end_ns);
            if self.buckets[idx].is_empty() {
                continue; // stale bit after clear(); keep scanning
            }
            // Move the whole bucket into the (empty, hence contiguous)
            // active deque and sort it once; subsequent pops are O(1)
            // front-pops.
            debug_assert!(self.active.is_empty());
            self.active.extend(self.buckets[idx].drain(..));
            self.active.make_contiguous().sort_unstable_by_key(Entry::key);
            return;
        }
    }

    fn clear(&mut self) {
        self.active.clear();
        self.far.clear();
        for (i, word) in self.occupied.iter_mut().enumerate() {
            if *word != 0 {
                for b in 0..64 {
                    if *word & (1 << b) != 0 {
                        self.buckets[i * 64 + b].clear();
                    }
                }
                *word = 0;
            }
        }
        self.active_end = SimTime::ZERO;
        self.floor = 0;
        self.base = 0;
        self.cursor = 0;
    }
}

enum Inner<E> {
    Wheel(Box<Wheel<E>>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A time-ordered, insertion-stable event queue.
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue of the process-default kind (the hierarchical wheel,
    /// unless `MYRI_SIM_QUEUE=heap` selects the reference heap).
    pub fn new() -> Self {
        Self::with_kind(default_kind())
    }

    /// An empty queue of an explicit kind (for differential tests/benches).
    pub fn with_kind(kind: QueueKind) -> Self {
        let inner = match kind {
            QueueKind::Wheel => Inner::Wheel(Box::new(Wheel::new())),
            QueueKind::Heap => Inner::Heap(BinaryHeap::new()),
        };
        EventQueue {
            inner,
            next_seq: 0,
            len: 0,
        }
    }

    /// An empty hierarchical-wheel queue.
    pub fn wheel() -> Self {
        Self::with_kind(QueueKind::Wheel)
    }

    /// An empty reference binary-heap queue.
    pub fn heap() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// Which implementation this queue uses.
    pub fn kind(&self) -> QueueKind {
        match self.inner {
            Inner::Wheel(_) => QueueKind::Wheel,
            Inner::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedule `event` to fire at `time`.
    // simlint::hot
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_class(time, EventClass::Normal, event);
    }

    /// Schedule a wire-boundary event at `time`: it pops before every
    /// [`EventClass::Normal`] event at the same instant, whenever it was
    /// pushed. Used for packet hand-off drains (see [`EventClass`]).
    pub fn push_wire(&mut self, time: SimTime, event: E) {
        self.push_class(time, EventClass::Wire, event);
    }

    // simlint::hot
    fn push_class(&mut self, time: SimTime, class: EventClass, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            time,
            class,
            seq,
            event,
        };
        match &mut self.inner {
            Inner::Wheel(w) => w.push(entry),
            Inner::Heap(h) => h.push(entry),
        }
        self.len += 1;
    }

    /// Remove and return the earliest event.
    // simlint::hot
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = match &mut self.inner {
            Inner::Wheel(w) => w.pop(self.len),
            Inner::Heap(h) => h.pop(),
        }?;
        self.len -= 1;
        Some((popped.time, popped.event))
    }

    /// The timestamp of the earliest pending event. Takes `&mut self`
    /// because the wheel refills its active tier lazily.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Wheel(w) => {
                w.ensure_active(self.len);
                w.active.front().map(|e| e.time)
            }
            Inner::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Wheel(w) => w.clear(),
            Inner::Heap(h) => h.clear(),
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn both() -> [EventQueue<i64>; 2] {
        [EventQueue::wheel(), EventQueue::heap()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::wheel(),
            EventQueue::heap(),
        ] {
            q.push(t(30), "c");
            q.push(t(10), "a");
            q.push(t(20), "b");
            assert_eq!(q.pop(), Some((t(10), "a")));
            assert_eq!(q.pop(), Some((t(20), "b")));
            assert_eq!(q.pop(), Some((t(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_are_fifo() {
        for mut q in both() {
            for i in 0..100 {
                q.push(t(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t(5), i)));
            }
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        for mut q in both() {
            q.push(t(10), 1);
            q.push(t(10), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            q.push(t(10), 3);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both() {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(t(7), 0);
            q.push(t(3), 0);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(t(3)));
            q.clear();
            assert!(q.is_empty());
            // The queue is reusable after clear.
            q.push(t(9), 1);
            assert_eq!(q.pop(), Some((t(9), 1)));
        }
    }

    #[test]
    fn wire_class_pops_before_normal_at_same_instant() {
        for mut q in both() {
            q.push(t(500), 1);
            q.push(t(500), 2);
            // Pushed last, but the wire class drains first at its instant.
            q.push_wire(t(500), 0);
            q.push(t(400), -1);
            assert_eq!(q.pop(), Some((t(400), -1)));
            assert_eq!(q.pop(), Some((t(500), 0)));
            assert_eq!(q.pop(), Some((t(500), 1)));
            assert_eq!(q.pop(), Some((t(500), 2)));
        }
    }

    #[test]
    fn wire_class_is_fifo_within_itself() {
        for mut q in both() {
            q.push_wire(t(9), 0);
            q.push(t(9), 2);
            q.push_wire(t(9), 1);
            let order: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![0, 1, 2]);
        }
    }

    #[test]
    fn wheel_spans_bucket_and_far_boundaries() {
        let mut q = EventQueue::wheel();
        // One imminent event anchors the wheel, then events land in every
        // tier: active, several buckets, and far overflow.
        q.push(t(100), 0);
        q.push(t(100 + WINDOW * 3), 5); // far future
        q.push(t(50), 1); // earlier than the anchor: active tier
        q.push(t(100 + BUCKET_WIDTH * 7), 3); // mid wheel
        q.push(t(100 + BUCKET_WIDTH * 2), 2); // near wheel
        q.push(t(100 + WINDOW * 3), 6); // same far instant: FIFO
        q.push(t(100 + WINDOW - 1), 4); // last bucket
        let order: Vec<i64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 0, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn wheel_rebase_after_idle_gap() {
        let mut q = EventQueue::wheel();
        q.push(t(1_000), 1);
        assert_eq!(q.pop(), Some((t(1_000), 1)));
        // Queue is empty; the next push is far beyond the previous window
        // and must re-anchor cleanly.
        q.push(t(WINDOW * 10), 2);
        q.push(t(WINDOW * 10 + BUCKET_WIDTH), 3);
        assert_eq!(q.pop(), Some((t(WINDOW * 10), 2)));
        assert_eq!(q.pop(), Some((t(WINDOW * 10 + BUCKET_WIDTH), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_matches_heap_on_dense_random_schedule() {
        // Deterministic xorshift; mixes same-instant ties, short and long
        // horizons, and interleaved pops.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut wheel = EventQueue::wheel();
        let mut heap = EventQueue::heap();
        let mut now = 0u64;
        for i in 0..50_000i64 {
            let op = rnd() % 10;
            if op < 6 {
                let dt = match rnd() % 4 {
                    0 => 0,                         // same instant
                    1 => rnd() % 1_000,             // sub-bucket
                    2 => rnd() % (WINDOW / 2),      // mid wheel
                    _ => WINDOW + rnd() % WINDOW,   // far heap
                };
                if rnd() % 8 == 0 {
                    wheel.push_wire(t(now + dt), i);
                    heap.push_wire(t(now + dt), i);
                } else {
                    wheel.push(t(now + dt), i);
                    heap.push(t(now + dt), i);
                }
            } else {
                assert_eq!(wheel.peek_time(), heap.peek_time());
                let (a, b) = (wheel.pop(), heap.pop());
                assert_eq!(a, b);
                if let Some((time, _)) = a {
                    now = time.as_nanos();
                }
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
