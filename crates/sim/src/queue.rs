//! The pending-event set: a stable priority queue keyed on time.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO), which keeps simulations deterministic without requiring
//! the event payload type to be `Ord`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earlier (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered, insertion-stable event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t(10), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        q.push(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        q.clear();
        assert!(q.is_empty());
    }
}
