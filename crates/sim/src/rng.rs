//! Deterministic random-number streams.
//!
//! Every stochastic element of a simulation (fault injection, skew draws,
//! workload generation) pulls from a [`DetRng`] derived from a master seed
//! plus a stream label, so independent components consume independent streams
//! and results never depend on event interleaving.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled deterministic RNG stream.
///
/// ```
/// use gm_sim::DetRng;
///
/// let mut a = DetRng::new(7, "faults");
/// let mut b = DetRng::new(7, "faults");
/// assert_eq!(a.next_u64(), b.next_u64()); // same (seed, label) => same stream
/// let mut c = DetRng::new(7, "skew");
/// assert_ne!(a.next_u64(), c.next_u64()); // labels separate the streams
/// ```
pub struct DetRng {
    rng: SmallRng,
}

impl DetRng {
    /// Derive a stream from `(seed, label)`. The same pair always yields the
    /// same sequence; distinct labels yield statistically independent ones.
    pub fn new(seed: u64, label: &str) -> Self {
        let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h = h.wrapping_add(b as u64);
            h = splitmix64(h);
        }
        DetRng {
            rng: SmallRng::seed_from_u64(splitmix64(h)),
        }
    }

    /// Derive a numbered substream (e.g. one per node).
    pub fn substream(seed: u64, label: &str, index: u64) -> Self {
        DetRng::new(splitmix64(seed.wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407))), label)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in [0, n). Panics if n == 0.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }

    /// Uniform integer in [lo, hi] inclusive.
    #[inline]
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        p > 0.0 && self.rng.gen::<f64>() < p
    }

    /// A raw u64 draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash step.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = DetRng::new(42, "faults");
        let mut b = DetRng::new(42, "faults");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = DetRng::new(42, "faults");
        let mut b = DetRng::new(42, "skew");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be independent");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1, "x");
        let mut b = DetRng::new(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_differ() {
        let mut a = DetRng::substream(7, "node", 0);
        let mut b = DetRng::substream(7, "node", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::new(3, "u");
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn below_bounds() {
        let mut r = DetRng::new(9, "b");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_covers_negative() {
        let mut r = DetRng::new(9, "ri");
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1000 {
            let v = r.range_inclusive(-5, 5);
            assert!((-5..=5).contains(&v));
            seen_neg |= v < 0;
            seen_pos |= v > 0;
        }
        assert!(seen_neg && seen_pos);
    }
}
