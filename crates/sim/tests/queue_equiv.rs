//! Differential property tests: the hierarchical wheel queue must produce
//! the exact same (time, FIFO-tie) pop sequence as the reference binary-heap
//! queue for any schedule — including same-instant ties, pushes interleaved
//! with pops, and events scheduled during dispatch (`immediately`-style
//! zero-delay pushes at the last popped time).

use gm_sim::{EventQueue, SimTime};
use proptest::prelude::*;

/// One step of a queue workout.
#[derive(Clone, Debug)]
enum Op {
    /// Push at `last_popped_time + delta` (clamped to be non-decreasing,
    /// like a real scheduler).
    Push { delta: u64 },
    /// Push at exactly the last popped time (an `immediately` during
    /// dispatch: same instant, later FIFO order).
    PushNow,
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Dense short-horizon traffic (sub-bucket and same-bucket).
        (0u64..2_000).prop_map(|delta| Op::Push { delta }),
        // Mid-wheel horizons around the paper's packet timescales.
        (0u64..3_000_000).prop_map(|delta| Op::Push { delta }),
        // Far-future overflow beyond the wheel window.
        (0u64..200_000_000).prop_map(|delta| Op::Push { delta }),
        Just(Op::PushNow),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn wheel_and_heap_pop_identically(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = EventQueue::wheel();
        let mut heap = EventQueue::heap();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for op in &ops {
            match op {
                Op::Push { delta } => {
                    let t = SimTime::from_nanos(now + delta);
                    wheel.push(t, next_id);
                    heap.push(t, next_id);
                    next_id += 1;
                }
                Op::PushNow => {
                    let t = SimTime::from_nanos(now);
                    wheel.push(t, next_id);
                    heap.push(t, next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let (a, b) = (wheel.pop(), heap.pop());
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        // The simulation clock only moves forward.
                        prop_assert!(t.as_nanos() >= now);
                        now = t.as_nanos();
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain both and compare the full tail.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_drains_in_nondecreasing_stable_order(
        times in proptest::collection::vec(0u64..50_000_000, 1..300),
    ) {
        // All-push-then-drain: pops must come out sorted by (time, push seq).
        let mut wheel = EventQueue::wheel();
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        for (i, &t) in times.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i);
        }
        expect.sort(); // (time, seq) — stable tie order by construction
        let mut got = Vec::new();
        while let Some((t, id)) = wheel.pop() {
            got.push((t.as_nanos(), id));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn clear_resets_wheel_for_reuse(
        first in proptest::collection::vec(0u64..100_000_000, 1..50),
        second in proptest::collection::vec(0u64..100_000_000, 1..50),
    ) {
        let mut wheel = EventQueue::wheel();
        let mut heap = EventQueue::heap();
        for (i, &t) in first.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i);
            heap.push(SimTime::from_nanos(t), i);
        }
        wheel.clear();
        heap.clear();
        prop_assert!(wheel.is_empty());
        for (i, &t) in second.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i);
            heap.push(SimTime::from_nanos(t), i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
