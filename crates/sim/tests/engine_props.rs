//! Property-based tests of the event engine: causal ordering, determinism,
//! and statistics algebra.

use gm_sim::{DetRng, Engine, EventQueue, OnlineStats, Scheduler, SimDuration, SimTime, World};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t.as_nanos(), i));
        }
        // Sorted by time...
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            // ...and FIFO among equal timestamps.
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        prop_assert_eq!(out.len(), times.len());
    }

    #[test]
    fn engine_clock_is_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        struct Recorder {
            delays: Vec<u64>,
            next: usize,
            seen: Vec<u64>,
        }
        impl World for Recorder {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
                self.seen.push(sched.now().as_nanos());
                if self.next < self.delays.len() {
                    let d = self.delays[self.next];
                    self.next += 1;
                    sched.after(SimDuration::from_nanos(d), ());
                }
            }
        }
        let n = delays.len();
        let mut eng = Engine::new(Recorder { delays, next: 0, seen: vec![] });
        eng.schedule(SimTime::ZERO, ());
        eng.run_to_idle();
        let seen = &eng.world().seen;
        prop_assert_eq!(seen.len(), n + 1);
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1], "clock went backwards");
        }
        prop_assert_eq!(eng.events_handled(), (n + 1) as u64);
    }

    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        if xs.len() >= 2 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (xs.len() - 1) as f64;
            prop_assert!((s.stddev() - var.sqrt()).abs() <= 1e-5 * (1.0 + var.sqrt()));
        }
    }

    #[test]
    fn stats_merge_is_order_insensitive(
        a in proptest::collection::vec(-1e3f64..1e3, 1..100),
        b in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let fill = |xs: &[f64]| {
            let mut s = OnlineStats::new();
            xs.iter().for_each(|&x| s.record(x));
            s
        };
        let mut ab = fill(&a);
        ab.merge(&fill(&b));
        let mut ba = fill(&b);
        ba.merge(&fill(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.stddev() - ba.stddev()).abs() < 1e-9);
    }

    #[test]
    fn rng_streams_are_stable_and_bounded(seed in any::<u64>(), n in 1u64..1_000) {
        let mut a = DetRng::new(seed, "prop");
        let mut b = DetRng::new(seed, "prop");
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = DetRng::new(seed, "bound");
        for _ in 0..200 {
            prop_assert!(r.below(n) < n);
            let u = r.unit();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }
}
