//! Fixture-corpus self-tests: every file under `tests/fixtures/bad/` must
//! fire its namesake rule, and every file under `tests/fixtures/good/` must
//! lint clean. Fixtures are linted with the strict classification (every
//! rule on), matching how unknown files are treated by the CLI. The one
//! exception is `state-pure`, which is scoped to `gm::proto` rather than
//! part of strict (ordinary simulator code legitimately uses `SimTime` and
//! probes); its fixtures are linted as if they lived in the proto module.

use std::path::{Path, PathBuf};

use simlint::{lint_source, FileClass};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

/// `(fixture_stem, source)` pairs from one corpus directory, sorted.
fn corpus(kind: &str) -> Vec<(String, String)> {
    let dir = fixture_dir(kind);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixture directory exists") {
        let path = entry.expect("readable fixture dir entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("fixture has a utf-8 stem")
            .to_string();
        let src = std::fs::read_to_string(&path).expect("fixture is readable");
        out.push((stem, src));
    }
    out.sort();
    assert!(!out.is_empty(), "no fixtures found in {}", dir.display());
    out
}

/// The rule a fixture targets: its file stem with `_` as `-`.
fn rule_for(stem: &str) -> String {
    stem.replace('_', "-")
}

/// Classification a fixture is linted under: strict, plus the proto-module
/// scope for the `state-pure` pair (the rule only applies inside
/// `gm::proto`, never under plain strict).
fn class_for(stem: &str) -> FileClass {
    FileClass {
        proto_module: stem == "state_pure",
        ..FileClass::strict()
    }
}

#[test]
fn every_rule_has_a_bad_and_a_good_fixture() {
    let bad: Vec<String> = corpus("bad").into_iter().map(|(s, _)| s).collect();
    let good: Vec<String> = corpus("good").into_iter().map(|(s, _)| s).collect();
    assert_eq!(bad, good, "bad/ and good/ corpora must mirror each other");
    for rule in simlint::rules::RULES {
        let stem = rule.name.replace('-', "_");
        assert!(
            bad.contains(&stem),
            "rule `{}` has no fixture pair",
            rule.name
        );
    }
}

#[test]
fn bad_fixtures_fire_their_namesake_rule() {
    for (stem, src) in corpus("bad") {
        let out = lint_source(&format!("bad/{stem}.rs"), &src, &class_for(&stem));
        let rule = rule_for(&stem);
        assert!(
            out.diagnostics.iter().any(|d| d.rule == rule),
            "bad fixture `{stem}` did not fire `{rule}`; got {:?}",
            out.diagnostics
        );
    }
}

#[test]
fn good_fixtures_are_silent() {
    for (stem, src) in corpus("good") {
        let out = lint_source(&format!("good/{stem}.rs"), &src, &class_for(&stem));
        assert!(
            out.diagnostics.is_empty(),
            "good fixture `{stem}` fired: {:?}",
            out.diagnostics
        );
    }
}

#[test]
fn bad_fixtures_fail_through_the_cli_entry_path() {
    // The CLI lints explicit files via the same lint_source; spot-check that
    // a bad fixture keeps a nonzero diagnostic count end-to-end.
    let path = fixture_dir("bad").join("det_hash.rs");
    let src = std::fs::read_to_string(path).expect("fixture is readable");
    let out = lint_source("det_hash.rs", &src, &FileClass::strict());
    assert!(!out.diagnostics.is_empty());
}

#[test]
fn diagnostics_render_with_file_line_and_help() {
    let src = "use std::collections::HashMap;\n";
    let out = lint_source("proto/state.rs", src, &FileClass::strict());
    let rendered = simlint::render_diagnostic(&out.diagnostics[0]);
    assert!(rendered.contains("error[det-hash]"));
    assert!(rendered.contains("proto/state.rs:1"));
    assert!(rendered.contains("help:"));
}
