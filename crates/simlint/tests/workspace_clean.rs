//! The workspace itself must pass its own lint gate: zero violations, and
//! every suppression justified. This is the same scan `scripts/ci.sh` runs
//! (via the CLI), expressed as a test so `cargo test` alone catches
//! regressions.

use simlint::{lint_workspace, workspace_root};

#[test]
fn workspace_scan_is_clean() {
    let report = lint_workspace(&workspace_root());
    assert!(
        report.files_scanned > 30,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    let rendered: String = report
        .diagnostics
        .iter()
        .map(simlint::render_diagnostic)
        .collect();
    assert!(
        report.clean(),
        "workspace has {} lint violation(s):\n{rendered}",
        report.diagnostics.len()
    );
    // Every recorded suppression carries a reason by construction; make sure
    // the tree hasn't accumulated a silent pile of them either.
    for s in &report.suppressions {
        assert!(
            !s.reason.is_empty(),
            "suppression without reason at {}:{}",
            s.file,
            s.line
        );
    }
}

#[test]
fn json_report_is_well_formed() {
    let report = lint_workspace(&workspace_root());
    let json = simlint::report::to_json(&report);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"suppressions\""));
}
