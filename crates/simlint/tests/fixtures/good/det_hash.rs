// GOOD: ordered maps iterate identically on every run.
use std::collections::{BTreeMap, BTreeSet};

pub struct ConnTable {
    conns: BTreeMap<u32, u64>,
    ready: BTreeSet<u32>,
}
