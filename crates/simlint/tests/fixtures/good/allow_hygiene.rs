// GOOD: a well-formed suppression — known rule, real reason, and it
// actually fires on the next line.
// simlint::allow(det-hash, "perf counter keyed by interned id; iteration order never observed")
pub type Counters = std::collections::HashMap<u32, u64>;
