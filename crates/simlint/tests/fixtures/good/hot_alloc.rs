// GOOD: the hot path reuses a caller-provided buffer; the cold setup path
// below may allocate freely.
// simlint::hot
pub fn dispatch(tags: &[u64], out: &mut [u64]) -> usize {
    let n = tags.len().min(out.len());
    out[..n].copy_from_slice(&tags[..n]);
    n
}

pub fn setup(capacity: usize) -> Vec<u64> {
    Vec::with_capacity(capacity)
}
