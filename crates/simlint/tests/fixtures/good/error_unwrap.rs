// GOOD: every panic names the invariant that makes it unreachable, and
// test code may unwrap freely.
pub fn take(q: &mut Vec<u64>) -> u64 {
    q.pop().expect("queue nonempty: caller checked is_empty above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
