// GOOD: pure transitions — functions of the explicit state vector alone,
// safe to run both in the simulator and under exhaustive model checking.

/// The horizon below which globally-acked sender records may be released.
pub fn release_horizon(acked_count: u64) -> u64 {
    acked_count
}

/// Go-Back-N admission: may another packet enter the window?
pub fn can_admit(outstanding: usize, window: usize) -> bool {
    outstanding < window
}
