// Every probe point carries its own name; mentioning a name in a string
// ("fixture_tx") or resolving one dynamically never counts as a definition.

pub const WIRE_TX: ProbeId = ProbeId::new("fixture_tx", Track::Wire);
pub const WIRE_RETX: ProbeId = ProbeId::new("fixture_retx", Track::Wire);
