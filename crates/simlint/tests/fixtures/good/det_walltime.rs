// GOOD: a justified suppression for a genuine measurement of the
// simulator itself (not of simulated time).
pub fn dispatch_rate_probe() -> std::time::Duration {
    // simlint::allow(det-walltime, "measures the simulator's own dispatch rate; never feeds SimTime")
    let t = std::time::Instant::now();
    t.elapsed()
}
