// Flow identity stays in the packed newtype end-to-end; `.raw()` is read
// only to serialize (Perfetto flow-event ids), never to rebuild identity.

struct PacketMeta {
    flow: FlowId,
    len: usize,
}

fn forward(meta: &PacketMeta) -> FlowId {
    meta.flow
}

fn serialize(out: &mut String, meta: &PacketMeta) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"flow\":{}}}", meta.flow.raw());
}

// An unrelated `flow::` module path is not a type ascription.
fn shaped() -> flow::Shape {
    flow::Shape::default()
}
