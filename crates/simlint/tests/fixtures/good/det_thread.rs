// GOOD: scoped fan-out over *independent* simulations is the bench
// harness's job; simulator code stays single-threaded. `thread::scope`
// still needs a justified suppression — the lint can't tell a harness
// fan-out from a simulation-internal one.
use std::thread;

pub fn fan_out_independent(seeds: &[u64]) {
    // simlint::allow(det-thread, "independent simulations per seed; no shared sim state")
    thread::scope(|s| {
        for &seed in seeds {
            s.spawn(move || run_one(seed));
        }
    });
}

fn run_one(_seed: u64) {}
