// GOOD: scoped fan-out over *independent* simulations is the bench
// harness's job; simulator code stays single-threaded.
use std::thread;

pub fn fan_out_independent(seeds: &[u64]) {
    thread::scope(|s| {
        for &seed in seeds {
            s.spawn(move || run_one(seed));
        }
    });
}

fn run_one(_seed: u64) {}
