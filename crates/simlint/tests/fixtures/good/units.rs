// GOOD: arithmetic stays in typed time; float reporting goes through the
// dedicated accessors.
pub fn report(d: SimDuration) -> f64 {
    d.as_micros_f64()
}

pub fn extend(t: SimTime, d: SimDuration) -> SimTime {
    t + d + SimDuration::from_micros(2)
}
