// BAD: the protocol core must be a pure function of its explicit state —
// clocks, randomness, probes and global state all make the simulator
// diverge from what the simcheck model checker explored.
pub fn impure_horizon(acked: u64, now: SimTime, rng: &mut DetRng) -> u64 {
    static mut CALLS: u64 = 0;
    let jitter = rng.next_u64() % 2;
    let probe = ProbeId::new("proto_horizon", Track::Nic);
    let _ = (probe, jitter);
    acked + now.as_nanos()
}
