// BAD: an ad-hoc thread makes event interleaving scheduler-dependent.
use std::thread;

pub fn fan_out() {
    thread::spawn(|| {
        // mutate shared sim state off-thread
    });
}
