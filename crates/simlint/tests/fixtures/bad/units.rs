// BAD: raw casts strip the nanosecond unit and mix typed time with
// untyped integers.
pub fn skew(t: SimTime, raw: i64) -> SimTime {
    let ns = t.as_nanos() as f64 * 1.5;
    SimTime::from_nanos(ns as u64 + raw as u64)
}
