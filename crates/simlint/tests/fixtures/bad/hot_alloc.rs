// BAD: a declared hot path that allocates on every call.
// simlint::hot
pub fn dispatch(tags: &[u64]) -> Vec<String> {
    let mut out = Vec::new();
    for t in tags {
        out.push(format!("tag {t}"));
    }
    out.clone()
}
