// BAD: wall-clock reads inside simulator code make behaviour depend on
// host speed.
pub fn stamp() -> u128 {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let _ = s;
    t.elapsed().as_nanos()
}
