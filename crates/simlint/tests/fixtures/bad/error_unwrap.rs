// BAD: anonymous panics in simulator code hide which invariant broke.
pub fn take(q: &mut Vec<u64>, msg: &str) -> u64 {
    let first = q.pop().unwrap();
    let second = q.pop().expect(msg);
    first + second
}
