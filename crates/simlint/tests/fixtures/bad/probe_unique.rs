// Two probe points with the same static name: their events merge into one
// Perfetto category and the golden traces cannot tell them apart.

pub const WIRE_TX: ProbeId = ProbeId::new("fixture_tx", Track::Wire);
pub const WIRE_RETX: ProbeId = ProbeId::new("fixture_tx", Track::Wire);
