// Flow identity smuggled around as a raw integer: a struct field typed
// `u64` and a lossy round-trip through `FlowId::from_raw` outside
// `sim::flow`. Both bypass the packed newtype's validity bit.

struct PacketMeta {
    flow: u64,
    len: usize,
}

fn stash(f: FlowId) -> PacketMeta {
    PacketMeta {
        flow: f.raw(),
        len: 0,
    }
}

fn unstash(m: &PacketMeta) -> FlowId {
    FlowId::from_raw(m.flow)
}

fn relabel(flow_id: u64) -> u64 {
    flow_id
}
