// BAD: three broken suppressions — bare (no reason), unknown rule, and
// unused (suppresses nothing).
// simlint::allow(det-hash)
use std::collections::HashMap;

// simlint::allow(no-such-rule, "typo in the rule name")
pub type Table = HashMap<u32, u64>;

// simlint::allow(det-walltime, "stale: the Instant call below was removed")
pub fn nothing_here() {}
