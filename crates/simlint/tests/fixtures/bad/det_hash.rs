// BAD: protocol state in a default-hasher map — iteration order is
// randomized per process, so replays diverge.
use std::collections::{HashMap, HashSet};

pub struct ConnTable {
    conns: HashMap<u32, u64>,
    ready: HashSet<u32>,
}
