//! `simlint` — a determinism & unit-safety static-analysis pass for the
//! simulator workspace.
//!
//! The paper's reliability argument rests on a NIC work loop whose behaviour
//! is exactly reproducible; our discrete-event substitution only holds if
//! every run is bit-for-bit deterministic. This crate machine-checks the
//! invariants that keep it so (see `rules` for the rule set and DESIGN.md
//! "Static invariants" for the rationale), with no dependencies beyond std:
//! a lightweight lexer tokenizes every `.rs` file and rules match token
//! sequences, so nothing inside strings or comments can ever fire a rule.
//!
//! Suppressions are explicit and audited: `// simlint::allow(rule, reason)`
//! silences a finding on that line or the next, but a suppression without a
//! reason, naming an unknown rule, or suppressing nothing is itself a
//! violation — the gate stays honest under refactoring.
//!
//! Run `cargo run -p simlint -- --workspace` for the blocking CI gate; it
//! writes a machine-readable report to `results/simlint_report.json`.

pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use lexer::{lex, Comment, Tok, TokKind};
use rules::{
    is_known_rule, rule_info, ALLOW_HYGIENE, DET_HASH, DET_THREAD, DET_WALLTIME, ERROR_UNWRAP,
    FLOW_ID, HOT_ALLOC, PROBE_UNIQUE, STATE_PURE, UNITS,
};

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

/// Which rule scopes apply to one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// Sim/protocol code: the `det-hash` rule applies.
    pub protocol: bool,
    /// Wall-clock measurement harness (the bench crate): `det-walltime` and
    /// `det-thread` do not apply.
    pub walltime_exempt: bool,
    /// `sim::time` itself — the one module allowed to convert between typed
    /// time and raw integers, so `units` does not apply.
    pub time_module: bool,
    /// `sim::flow` itself — the one module allowed to touch the raw packed
    /// representation of flow identity, so `flow-id` does not apply.
    pub flow_module: bool,
    /// The pure protocol core (`gm::proto`), shared between the simulator
    /// and the `simcheck` model checker: the `state-pure` rule applies.
    pub proto_module: bool,
}

impl FileClass {
    /// The strictest classification (used for explicitly-listed files and
    /// the fixture corpus): every rule on. `state-pure` is deliberately
    /// *not* part of strict — it only makes sense inside `gm::proto`
    /// (legitimate simulator code is full of `SimTime`s and probes).
    pub fn strict() -> FileClass {
        FileClass {
            protocol: true,
            walltime_exempt: false,
            time_module: false,
            flow_module: false,
            proto_module: false,
        }
    }
}

/// Map a workspace-relative path to its rule scopes. `None` means the file
/// is not linted (test code, vendored shims, fixtures, build output).
pub fn classify(rel: &str) -> Option<FileClass> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    // Vendored dependency shims and build output are not ours to lint;
    // the linter's own fixture corpus is deliberately full of violations.
    if rel.starts_with("target/") || rel.starts_with("shims/") || rel.contains("/fixtures/") {
        return None;
    }
    // Test and bench-target code is exempt end-to-end (the E-rule's "leave
    // test code untouched" applies to every rule).
    if rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/") {
        return None;
    }
    let protocol_roots = [
        "src/",
        "examples/",
        "crates/sim/",
        "crates/myrinet/",
        "crates/gm/",
        "crates/core/",
        "crates/mpi/",
    ];
    Some(FileClass {
        protocol: protocol_roots.iter().any(|p| rel.starts_with(p)),
        walltime_exempt: rel.starts_with("crates/bench/"),
        time_module: rel == "crates/sim/src/time.rs",
        flow_module: rel == "crates/sim/src/flow.rs",
        proto_module: rel == "crates/gm/src/proto.rs" || rel.starts_with("crates/gm/src/proto/"),
    })
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// One finding: a rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule key (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One *used, justified* suppression (recorded in the JSON report so the
/// audit trail survives even when the tree is clean).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuppressionRec {
    /// Rule being suppressed.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// The justification given.
    pub reason: String,
}

/// One `ProbeId::new("<name>", ...)` definition site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeDef {
    /// The probe's static name (string-literal argument).
    pub name: String,
    /// 1-based line of the definition.
    pub line: u32,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Violations found (already suppression-filtered).
    pub diagnostics: Vec<Diagnostic>,
    /// Justified suppressions that fired.
    pub suppressions: Vec<SuppressionRec>,
    /// Probe definitions seen (first occurrence per name; feeds the
    /// workspace-wide `probe-unique` pass).
    pub probe_defs: Vec<ProbeDef>,
}

/// Result of a whole-tree scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files linted.
    pub files_scanned: usize,
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// All justified suppressions that fired.
    pub suppressions: Vec<SuppressionRec>,
}

impl Report {
    /// True when the tree passes the gate.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Render one diagnostic rustc-style.
pub fn render_diagnostic(d: &Diagnostic) -> String {
    let help = rule_info(d.rule).map_or("", |r| r.help);
    format!(
        "error[{rule}]: {msg}\n  --> {file}:{line}\n   |\n   | {snippet}\n   |\n   = help: {help}\n",
        rule = d.rule,
        msg = d.message,
        file = d.file,
        line = d.line,
        snippet = d.snippet,
    )
}

// ---------------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct AllowDirective {
    line: u32,
    rule: String,
    reason: Option<String>,
    used: bool,
}

#[derive(Debug)]
struct Directives {
    allows: Vec<AllowDirective>,
    /// Lines bearing a `// simlint::hot` marker.
    hot_lines: Vec<u32>,
}

/// Parse `simlint::allow(rule, reason)` / `simlint::hot` out of comments.
///
/// A directive must start the comment (after whitespace) — prose that merely
/// *mentions* a directive, like this doc comment, is not one.
fn parse_directives(comments: &[Comment]) -> Directives {
    let mut allows = Vec::new();
    let mut hot_lines = Vec::new();
    for c in comments {
        let text = c.text.trim_start();
        if let Some(after) = text.strip_prefix("simlint::allow(") {
            let close = after.find(')').unwrap_or(after.len());
            let inner = &after[..close];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => {
                    let why = why.trim().trim_matches('"').trim();
                    (
                        r.trim().to_string(),
                        if why.is_empty() {
                            None
                        } else {
                            Some(why.to_string())
                        },
                    )
                }
                None => (inner.trim().to_string(), None),
            };
            allows.push(AllowDirective {
                line: c.line,
                rule,
                reason,
                used: false,
            });
        } else if text.starts_with("simlint::hot") {
            hot_lines.push(c.line);
        }
    }
    Directives { allows, hot_lines }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn ident_at(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

/// Index of the punct matching `open` at `start` (which must hold `open`),
/// or `None` if unbalanced.
fn matching(toks: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        if t.text.starts_with(open) && t.text.len() == 1 {
            depth += 1;
        } else if t.text.starts_with(close) && t.text.len() == 1 {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (inclusive).
fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(punct_at(toks, i, '#') && punct_at(toks, i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(toks, i + 1, '[', ']') else {
            break;
        };
        let inner = &toks[i + 2..close];
        let is_test_attr = (inner.len() == 1 && inner[0].text == "test")
            || (inner.len() == 4
                && inner[0].text == "cfg"
                && inner[2].text == "test");
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut j = close + 1;
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            match matching(toks, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item body is either brace-delimited or ends at a semicolon
        // (e.g. `#[cfg(test)] use proptest::...;`).
        let mut k = j;
        while k < toks.len() && !punct_at(toks, k, '{') && !punct_at(toks, k, ';') {
            k += 1;
        }
        if k >= toks.len() {
            ranges.push((start_line, u32::MAX));
            break;
        }
        if punct_at(toks, k, ';') {
            ranges.push((start_line, toks[k].line));
            i = k + 1;
            continue;
        }
        match matching(toks, k, '{', '}') {
            Some(end) => {
                ranges.push((start_line, toks[end].line));
                i = end + 1;
            }
            None => {
                ranges.push((start_line, u32::MAX));
                break;
            }
        }
    }
    ranges
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

// ---------------------------------------------------------------------------
// Hot-function spans
// ---------------------------------------------------------------------------

struct HotSpan {
    /// Token index range of the function body (inclusive braces).
    start: usize,
    end: usize,
    name: String,
}

/// Resolve each `// simlint::hot` marker to the body of the next `fn`.
/// Markers that do not precede a function within a few lines are reported.
fn hot_spans(toks: &[Tok], hot_lines: &[u32], diags: &mut Vec<RawDiag>) -> Vec<HotSpan> {
    let mut spans = Vec::new();
    for &line in hot_lines {
        let fn_idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text == "fn" && t.line >= line);
        let resolved = fn_idx.and_then(|fi| {
            if toks[fi].line.saturating_sub(line) > 4 {
                return None;
            }
            let name = toks
                .get(fi + 1)
                .map_or_else(String::new, |t| t.text.clone());
            let mut k = fi;
            while k < toks.len() && !punct_at(toks, k, '{') {
                k += 1;
            }
            matching(toks, k, '{', '}').map(|end| HotSpan {
                start: k,
                end,
                name,
            })
        });
        match resolved {
            Some(span) => spans.push(span),
            None => diags.push(RawDiag {
                rule: ALLOW_HYGIENE,
                line,
                message: "`simlint::hot` marker does not precede a function".to_string(),
            }),
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// Probe definitions
// ---------------------------------------------------------------------------

/// Collect `ProbeId::new("<name>", ...)` definition sites outside test
/// regions. Duplicates *within* the file are reported here; the first
/// occurrence of each name is returned for the workspace-wide pass.
fn collect_probe_defs(
    toks: &[Tok],
    test_ranges: &[(u32, u32)],
    diags: &mut Vec<RawDiag>,
) -> Vec<ProbeDef> {
    let mut defs: Vec<ProbeDef> = Vec::new();
    for i in 0..toks.len() {
        if !(ident_at(toks, i, "ProbeId")
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && ident_at(toks, i + 3, "new")
            && punct_at(toks, i + 4, '('))
        {
            continue;
        }
        let Some(arg) = toks.get(i + 5).filter(|a| a.kind == TokKind::Str) else {
            continue;
        };
        if in_ranges(test_ranges, toks[i].line) {
            continue;
        }
        let name = arg.text.clone();
        match defs.iter().find(|d| d.name == name) {
            Some(first) => diags.push(RawDiag {
                rule: PROBE_UNIQUE,
                line: toks[i].line,
                message: format!(
                    "ProbeId name \"{name}\" already defined on line {}",
                    first.line
                ),
            }),
            None => defs.push(ProbeDef {
                name,
                line: toks[i].line,
            }),
        }
    }
    defs
}

// ---------------------------------------------------------------------------
// Rule scanning
// ---------------------------------------------------------------------------

struct RawDiag {
    rule: &'static str,
    line: u32,
    message: String,
}

fn scan_rules(
    toks: &[Tok],
    class: &FileClass,
    test_ranges: &[(u32, u32)],
    hot: &[HotSpan],
    diags: &mut Vec<RawDiag>,
) {
    let in_hot = |i: usize| hot.iter().find(|s| i >= s.start && i <= s.end);
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_ranges(test_ranges, t.line) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {}
            _ => {
                // Hot-alloc patterns that start on punctuation: `.clone(`,
                // `.to_string(`, `.to_owned(`, `.to_vec(`.
                if let Some(span) = in_hot(i) {
                    if punct_at(toks, i, '.') {
                        for m in ["clone", "to_string", "to_owned", "to_vec"] {
                            if ident_at(toks, i + 1, m) && punct_at(toks, i + 2, '(') {
                                diags.push(RawDiag {
                                    rule: HOT_ALLOC,
                                    line: t.line,
                                    message: format!(
                                        "`.{m}()` allocates inside hot function `{}`",
                                        span.name
                                    ),
                                });
                            }
                        }
                    }
                }
                // error-unwrap: `.unwrap()` / `.expect(<non-literal>)`.
                if punct_at(toks, i, '.') {
                    if ident_at(toks, i + 1, "unwrap") && punct_at(toks, i + 2, '(') {
                        diags.push(RawDiag {
                            rule: ERROR_UNWRAP,
                            line: t.line,
                            message: "`unwrap()` in non-test simulator code".to_string(),
                        });
                    }
                    if ident_at(toks, i + 1, "expect") && punct_at(toks, i + 2, '(') {
                        let arg_ok = toks.get(i + 3).is_some_and(|a| {
                            a.kind == TokKind::Str && !a.text.trim().is_empty()
                        });
                        if !arg_ok {
                            diags.push(RawDiag {
                                rule: ERROR_UNWRAP,
                                line: t.line,
                                message:
                                    "`expect` without a literal message naming the invariant"
                                        .to_string(),
                            });
                        }
                    }
                }
                continue;
            }
        }
        // --- Ident-rooted patterns from here on. ---
        // det-hash.
        if class.protocol && (t.text == "HashMap" || t.text == "HashSet") {
            diags.push(RawDiag {
                rule: DET_HASH,
                line: t.line,
                message: format!(
                    "`{}` uses the default RandomState hasher (randomized iteration order)",
                    t.text
                ),
            });
        }
        // det-walltime.
        if !class.walltime_exempt && (t.text == "Instant" || t.text == "SystemTime") {
            diags.push(RawDiag {
                rule: DET_WALLTIME,
                line: t.line,
                message: format!("`{}` reads the wall clock inside simulator code", t.text),
            });
        }
        // det-thread: `thread::spawn` / `thread::scope` (scoped workers can
        // leak nondeterminism just as easily as detached ones).
        if !class.walltime_exempt
            && t.text == "thread"
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && (ident_at(toks, i + 3, "spawn") || ident_at(toks, i + 3, "scope"))
        {
            diags.push(RawDiag {
                rule: DET_THREAD,
                line: t.line,
                message: format!(
                    "`thread::{}` inside simulator code",
                    toks[i + 3].text
                ),
            });
        }
        // state-pure: the protocol core must stay a pure function of its
        // explicit state — no clocks, randomness, probes, or global state —
        // so the simcheck model checker explores exactly the code the
        // simulator runs.
        if class.proto_module {
            let impure: Option<&str> = if matches!(
                t.text.as_str(),
                "SimTime" | "SimDuration" | "Instant" | "SystemTime"
            ) {
                Some("clock/time type")
            } else if matches!(
                t.text.as_str(),
                "Rng" | "DetRng" | "splitmix64" | "thread_rng" | "random"
            ) || (t.text == "rand" && punct_at(toks, i + 1, ':'))
            {
                Some("randomness")
            } else if matches!(
                t.text.as_str(),
                "ProbeId" | "ProbeSink" | "ProbeEvent" | "Counters"
            ) {
                Some("observability hook")
            } else if t.text == "thread_local"
                || (t.text == "static" && ident_at(toks, i + 1, "mut"))
                || t.text.starts_with("Atomic")
                || (t.text == "env" && (punct_at(toks, i + 1, ':') || punct_at(toks, i + 1, '!')))
            {
                Some("global state")
            } else {
                None
            };
            if let Some(what) = impure {
                diags.push(RawDiag {
                    rule: STATE_PURE,
                    line: t.line,
                    message: format!(
                        "{what} `{}` inside the pure protocol core",
                        t.text
                    ),
                });
            }
        }
        // units: `as_nanos() as ...` / `as_micros_f64() as ...`.
        if !class.time_module
            && (t.text == "as_nanos" || t.text == "as_micros_f64")
            && punct_at(toks, i + 1, '(')
            && punct_at(toks, i + 2, ')')
            && ident_at(toks, i + 3, "as")
        {
            diags.push(RawDiag {
                rule: UNITS,
                line: t.line,
                message: format!(
                    "`{}() as {}` strips the time unit for raw arithmetic",
                    t.text,
                    toks.get(i + 4).map_or("_", |t| t.text.as_str()),
                ),
            });
        }
        // units: `SimTime::from_nanos(<expr with `as` cast>)`.
        if !class.time_module
            && t.text == "from_nanos"
            && i >= 3
            && punct_at(toks, i - 1, ':')
            && punct_at(toks, i - 2, ':')
            && (ident_at(toks, i - 3, "SimTime") || ident_at(toks, i - 3, "SimDuration"))
            && punct_at(toks, i + 1, '(')
        {
            if let Some(close) = matching(toks, i + 1, '(', ')') {
                if toks[i + 2..close]
                    .iter()
                    .any(|a| a.kind == TokKind::Ident && a.text == "as")
                {
                    diags.push(RawDiag {
                        rule: UNITS,
                        line: t.line,
                        message: format!(
                            "`{}::from_nanos` built from a raw `as` cast",
                            toks[i - 3].text
                        ),
                    });
                }
            }
        }
        // flow-id: rebuilding flow identity from a raw integer
        // (`FlowId::from_raw(...)`) outside `sim::flow`.
        if !class.flow_module
            && t.text == "FlowId"
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && ident_at(toks, i + 3, "from_raw")
            && punct_at(toks, i + 4, '(')
        {
            diags.push(RawDiag {
                rule: FLOW_ID,
                line: t.line,
                message: "`FlowId::from_raw` rebuilds flow identity from a raw integer"
                    .to_string(),
            });
        }
        // flow-id: a flow-named binding, field, or parameter typed as a bare
        // `u64` (`flow: u64`, `flow_id: u64`) — flow identity must stay in
        // the packed newtype. A double colon (`flow::`) is a module path,
        // not a type ascription.
        if !class.flow_module
            && (t.text == "flow" || t.text == "flow_id")
            && punct_at(toks, i + 1, ':')
            && !punct_at(toks, i + 2, ':')
            && ident_at(toks, i + 2, "u64")
        {
            diags.push(RawDiag {
                rule: FLOW_ID,
                line: t.line,
                message: format!("`{}: u64` stores flow identity as a raw integer", t.text),
            });
        }
        // hot-alloc patterns rooted on identifiers.
        if let Some(span) = in_hot(i) {
            let path2 = |a: &str, b: &str| {
                t.text == a
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3, b)
            };
            let mac = |name: &str| t.text == name && punct_at(toks, i + 1, '!');
            let hit = if path2("Vec", "new") {
                Some("`Vec::new` allocates")
            } else if path2("String", "new") {
                Some("`String::new` allocates")
            } else if path2("Box", "new") {
                Some("`Box::new` heap-allocates")
            } else if mac("vec") {
                Some("`vec!` allocates")
            } else if mac("format") {
                Some("`format!` allocates")
            } else {
                None
            };
            if let Some(what) = hit {
                diags.push(RawDiag {
                    rule: HOT_ALLOC,
                    line: t.line,
                    message: format!("{what} inside hot function `{}`", span.name),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------------

/// Lint one file's source under the given classification.
pub fn lint_source(file: &str, src: &str, class: &FileClass) -> FileLint {
    let lexed = lex(src);
    let mut dirs = parse_directives(&lexed.comments);
    let test_ranges = test_line_ranges(&lexed.tokens);

    let mut raw: Vec<RawDiag> = Vec::new();
    let hot = {
        // Markers inside test regions are ignored wholesale.
        let hot_lines: Vec<u32> = dirs
            .hot_lines
            .iter()
            .copied()
            .filter(|&l| !in_ranges(&test_ranges, l))
            .collect();
        hot_spans(&lexed.tokens, &hot_lines, &mut raw)
    };
    scan_rules(&lexed.tokens, class, &test_ranges, &hot, &mut raw);
    let probe_defs = collect_probe_defs(&lexed.tokens, &test_ranges, &mut raw);

    // Apply suppressions: a directive covers its own line and the next one.
    let mut kept: Vec<RawDiag> = Vec::new();
    for d in raw {
        let allow = dirs.allows.iter_mut().find(|a| {
            a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line)
        });
        match allow {
            Some(a) if d.rule != ALLOW_HYGIENE => a.used = true,
            _ => kept.push(d),
        }
    }

    // Suppression hygiene (not itself suppressible).
    for a in &dirs.allows {
        if in_ranges(&test_ranges, a.line) {
            continue;
        }
        if !is_known_rule(&a.rule) {
            kept.push(RawDiag {
                rule: ALLOW_HYGIENE,
                line: a.line,
                message: format!("suppression names unknown rule `{}`", a.rule),
            });
        } else if a.reason.is_none() {
            kept.push(RawDiag {
                rule: ALLOW_HYGIENE,
                line: a.line,
                message: format!(
                    "bare `simlint::allow({})` without a reason — justify the suppression",
                    a.rule
                ),
            });
        } else if !a.used {
            kept.push(RawDiag {
                rule: ALLOW_HYGIENE,
                line: a.line,
                message: format!(
                    "unused suppression for `{}` — nothing fires here any more; delete it",
                    a.rule
                ),
            });
        }
    }

    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| {
        lines
            .get(line.saturating_sub(1) as usize)
            .map_or_else(String::new, |s| s.trim().to_string())
    };
    let mut diagnostics: Vec<Diagnostic> = kept
        .into_iter()
        .map(|d| Diagnostic {
            rule: d.rule,
            file: file.to_string(),
            line: d.line,
            message: d.message,
            snippet: snippet(d.line),
        })
        .collect();
    diagnostics.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let suppressions = dirs
        .allows
        .iter()
        .filter(|a| a.used && a.reason.is_some() && is_known_rule(&a.rule))
        .map(|a| SuppressionRec {
            rule: a.rule.clone(),
            file: file.to_string(),
            line: a.line,
            reason: a.reason.clone().unwrap_or_default(),
        })
        .collect();

    FileLint {
        diagnostics,
        suppressions,
        probe_defs,
    }
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

/// The workspace root this binary was compiled inside.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Recursively collect `.rs` files under `root`, in sorted (deterministic)
/// order, skipping obvious non-source directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if matches!(name, "target" | ".git" | "results") {
                continue;
            }
            collect_rs_files(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Scan the whole workspace tree under `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    let mut report = Report::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    // First definition site of each probe name across the tree, for the
    // workspace-wide `probe-unique` pass (cross-file duplicates cannot be
    // caught per-file and are not suppressible).
    let mut probe_names: Vec<(String, String, u32)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel) else {
            continue;
        };
        if !seen.insert(rel.clone()) {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned += 1;
        let mut fl = lint_source(&rel, &src, &class);
        report.diagnostics.append(&mut fl.diagnostics);
        report.suppressions.append(&mut fl.suppressions);
        for def in fl.probe_defs {
            match probe_names.iter().find(|(n, _, _)| *n == def.name) {
                Some((_, first_file, first_line)) => report.diagnostics.push(Diagnostic {
                    rule: PROBE_UNIQUE,
                    file: rel.clone(),
                    line: def.line,
                    message: format!(
                        "ProbeId name \"{}\" already defined at {first_file}:{first_line}",
                        def.name
                    ),
                    snippet: src
                        .lines()
                        .nth(def.line.saturating_sub(1) as usize)
                        .map_or_else(String::new, |s| s.trim().to_string()),
                }),
                None => probe_names.push((def.name, rel.clone(), def.line)),
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .suppressions
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(src: &str) -> Vec<Diagnostic> {
        lint_source("t.rs", src, &FileClass::strict()).diagnostics
    }

    #[test]
    fn hashmap_fires_in_protocol_code_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(strict(src).len(), 1);
        assert_eq!(strict(src)[0].rule, "det-hash");
        let class = FileClass {
            protocol: false,
            ..FileClass::strict()
        };
        assert!(lint_source("t.rs", src, &class).diagnostics.is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap Instant unwrap()\nlet s = \"HashMap\";\n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn f() { x.unwrap(); }
}
";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn code_after_test_region_still_fires() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() { x.unwrap(); }
}
fn g() { y.unwrap(); }
";
        let d = strict(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_recorded() {
        let src = "\
// simlint::allow(det-walltime, \"wall-clock dispatch-rate stat\")
let t = std::time::Instant::now();
";
        let out = lint_source("t.rs", src, &FileClass::strict());
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].rule, "det-walltime");
    }

    #[test]
    fn bare_allow_is_a_violation() {
        let src = "// simlint::allow(det-hash)\nuse std::collections::HashMap;\n";
        let d = strict(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "allow-hygiene");
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "// simlint::allow(det-hash, \"historical\")\nlet x = 1;\n";
        let d = strict(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "allow-hygiene");
        assert!(d[0].message.contains("unused"));
    }

    #[test]
    fn unknown_rule_allow_is_a_violation() {
        let src = "// simlint::allow(no-such-rule, \"x\")\nlet x = 1;\n";
        let d = strict(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn expect_requires_literal_message() {
        assert!(strict("let x = o.expect(\"queue nonempty after peek\");\n").is_empty());
        assert_eq!(strict("let x = o.expect(msg);\n")[0].rule, "error-unwrap");
        assert_eq!(strict("let x = o.unwrap();\n")[0].rule, "error-unwrap");
        assert!(strict("let x = o.unwrap_or(4);\n").is_empty());
    }

    #[test]
    fn units_patterns() {
        assert_eq!(strict("let x = t.as_nanos() as f64;\n")[0].rule, "units");
        assert_eq!(
            strict("let t = SimTime::from_nanos(x as u64);\n")[0].rule,
            "units"
        );
        assert!(strict("let t = SimTime::from_nanos(x);\n").is_empty());
        // Unrelated from_nanos (std Duration) is not flagged.
        assert!(strict("let d = Duration::from_nanos(x as u64);\n").is_empty());
    }

    #[test]
    fn hot_function_rejects_allocation() {
        let src = "\
// simlint::hot
fn hot(xs: &[u32]) -> Vec<u32> {
    let mut v = Vec::new();
    let s = format!(\"{}\", xs.len());
    let c = xs.to_vec();
    v
}
fn cold() -> Vec<u32> { Vec::new() }
";
        let d = strict(src);
        let rules: Vec<&str> = d.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["hot-alloc"; 3], "{d:?}");
    }

    #[test]
    fn hot_marker_without_fn_is_flagged() {
        let src = "// simlint::hot\nconst X: u32 = 1;\n";
        let d = strict(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "allow-hygiene");
    }

    #[test]
    fn duplicate_probe_name_in_one_file_fires() {
        let src = "\
const A: ProbeId = ProbeId::new(\"wire_tx\", Track::Wire);
const B: ProbeId = ProbeId::new(\"wire_tx\", Track::Host);
";
        let d = strict(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "probe-unique");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unique_probe_names_are_collected_not_flagged() {
        let src = "\
const A: ProbeId = ProbeId::new(\"wire_tx\", Track::Wire);
const B: ProbeId = ProbeId::new(\"pci_dma\", Track::Pci);
";
        let out = lint_source("t.rs", src, &FileClass::strict());
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        let names: Vec<&str> = out.probe_defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["wire_tx", "pci_dma"]);
    }

    #[test]
    fn probe_defs_in_test_regions_are_ignored() {
        let src = "\
#[cfg(test)]
mod tests {
    const A: ProbeId = ProbeId::new(\"wire_tx\", Track::Wire);
    const B: ProbeId = ProbeId::new(\"wire_tx\", Track::Host);
}
";
        let out = lint_source("t.rs", src, &FileClass::strict());
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert!(out.probe_defs.is_empty());
    }

    #[test]
    fn state_pure_scoped_to_proto_module() {
        let src = "pub fn f(t: SimTime, r: &mut DetRng) -> u64 { t.raw() }\n";
        // Plain strict (any ordinary simulator file): SimTime is fine.
        assert!(strict(src).is_empty());
        // Inside gm::proto, both the clock type and the RNG fire.
        let class = FileClass {
            proto_module: true,
            ..FileClass::strict()
        };
        let d = lint_source("crates/gm/src/proto.rs", src, &class).diagnostics;
        let rules: Vec<&str> = d.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["state-pure"; 2], "{d:?}");
    }

    #[test]
    fn state_pure_catches_global_state() {
        let class = FileClass {
            proto_module: true,
            ..FileClass::strict()
        };
        for src in [
            "static mut COUNT: u64 = 0;\n",
            "use std::sync::atomic::AtomicU64;\n",
            "thread_local! { static X: u64 = 0; }\n",
            "let home = std::env::var(\"HOME\");\n",
        ] {
            let d = lint_source("crates/gm/src/proto.rs", src, &class).diagnostics;
            assert!(
                d.iter().any(|x| x.rule == "state-pure"),
                "expected state-pure for {src:?}, got {d:?}"
            );
        }
        // Immutable statics (lookup tables) are pure and allowed.
        let d = lint_source(
            "crates/gm/src/proto.rs",
            "static TABLE: [u8; 2] = [0, 1];\n",
            &class,
        )
        .diagnostics;
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn thread_spawn_and_scope_flagged() {
        assert_eq!(strict("thread::spawn(|| {});\n")[0].rule, "det-thread");
        assert_eq!(strict("thread::scope(|s| {});\n")[0].rule, "det-thread");
    }
}
