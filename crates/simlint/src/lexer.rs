//! A minimal Rust lexer: just enough structure to drive lexical lint rules.
//!
//! The goal is *not* a faithful Rust grammar — it is to split source into
//! identifiers, punctuation, literals, and comments with accurate line
//! numbers, so rules can match token sequences (`Instant :: now`,
//! `. unwrap (`) without ever firing inside a string literal or a comment.
//! The tricky cases that matter for that guarantee are all handled: nested
//! block comments, raw strings (`r#"..."#`), byte strings, raw identifiers,
//! and the char-literal/lifetime ambiguity after `'`.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, `r#type`).
    Ident,
    /// Numeric literal (suffixes included, exponent split is tolerated).
    Number,
    /// String literal of any flavour; `text` holds the *inner* contents.
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One code token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (inner contents for strings, the char for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with the line it starts on. Doc comments are
/// ordinary comments here.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the `//` / `/* */` markers.
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separated.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unterminated constructs run to end of file.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: b[start..end].iter().collect(),
            });
            i = j;
            continue;
        }
        // Raw strings / byte strings / raw identifiers.
        if c == 'r' || c == 'b' {
            // br"..." / br#"..."# / rb is not valid Rust, so only br.
            let (prefix_len, rest) = if c == 'b' && i + 1 < n && b[i + 1] == 'r' {
                (2, i + 2)
            } else if c == 'r' || c == 'b' {
                (1, i + 1)
            } else {
                (0, i)
            };
            // Count hashes after the prefix.
            let mut h = rest;
            while h < n && b[h] == '#' {
                h += 1;
            }
            let hashes = h - rest;
            let raw_marker = c == 'r' || (c == 'b' && prefix_len == 2);
            if raw_marker && h < n && b[h] == '"' {
                // Raw (byte) string: scan for `"` followed by `hashes` '#'.
                let start_line = line;
                let body_start = h + 1;
                let mut j = body_start;
                let end = loop {
                    if j >= n {
                        break n;
                    }
                    if b[j] == '"'
                        && j + 1 + hashes <= n
                        && b[j + 1..j + 1 + hashes].iter().all(|&x| x == '#')
                    {
                        break j;
                    }
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                };
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: b[body_start..end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = (end + 1 + hashes).min(n);
                continue;
            }
            if c == 'r' && hashes > 0 && h < n && is_ident_start(b[h]) {
                // Raw identifier r#type.
                let mut j = h;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: b[h..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            if c == 'b' && i + 1 < n && b[i + 1] == '"' {
                // Byte string: fall through to quoted-string scanning below
                // by synthesizing the scan from the quote.
                let (tok, next, lines) = scan_quoted(&b, i + 1, line);
                line += lines;
                out.tokens.push(tok);
                i = next;
                continue;
            }
            if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
                // Byte char literal b'x'.
                let (next, lines) = scan_char(&b, i + 1);
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line += lines;
                i = next;
                continue;
            }
            // Plain identifier starting with r/b.
        }
        // String literal.
        if c == '"' {
            let (tok, next, lines) = scan_quoted(&b, i, line);
            out.tokens.push(tok);
            line += lines;
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let one = i + 1;
            let two = i + 2;
            let is_char = one < n
                && (b[one] == '\\'
                    || (two < n && b[two] == '\'' && b[one] != '\'')
                    || !is_ident_start(b[one]));
            if is_char {
                let (next, lines) = scan_char(&b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                line += lines;
                i = next;
                continue;
            }
            // Lifetime / label.
            let mut j = one;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Lifetime,
                text: b[one..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut seen_dot = false;
            while j < n {
                let d = b[j];
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else if d == '.'
                    && !seen_dot
                    && j + 1 < n
                    && b[j + 1].is_ascii_digit()
                {
                    seen_dot = true;
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Number,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Single punctuation char.
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Scan a `"..."` literal starting at the opening quote. Returns the token,
/// the index just past the closing quote, and the number of newlines inside.
fn scan_quoted(b: &[char], quote: usize, line: u32) -> (Tok, usize, u32) {
    let n = b.len();
    let mut j = quote + 1;
    let mut lines = 0u32;
    let mut text = String::new();
    while j < n {
        match b[j] {
            '\\' if j + 1 < n => {
                text.push(b[j]);
                text.push(b[j + 1]);
                if b[j + 1] == '\n' {
                    lines += 1;
                }
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            ch => {
                if ch == '\n' {
                    lines += 1;
                }
                text.push(ch);
                j += 1;
            }
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text,
            line,
        },
        j,
        lines,
    )
}

/// Scan a `'x'` / `'\n'` literal starting at the opening quote. Returns the
/// index just past the closing quote and the newline count (escapes only).
fn scan_char(b: &[char], quote: usize) -> (usize, u32) {
    let n = b.len();
    let mut j = quote + 1;
    let lines = 0u32;
    if j < n && b[j] == '\\' {
        j += 2;
    } else if j < n {
        j += 1;
    }
    if j < n && b[j] == '\'' {
        j += 1;
    }
    (j, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts_split() {
        let l = lex("let x: HashMap<u64, Foo> = HashMap::new();");
        let ids = idents("let x: HashMap<u64, Foo> = HashMap::new();");
        assert_eq!(ids, vec!["let", "x", "HashMap", "u64", "Foo", "HashMap", "new"]);
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Punct && t.text == "<"));
    }

    #[test]
    fn strings_hide_their_contents() {
        assert!(idents("let s = \"HashMap::new()\";").iter().all(|i| i != "HashMap"));
        assert!(idents("let s = r#\"Instant::now()\"#;").iter().all(|i| i != "Instant"));
        assert!(idents("let s = b\"unwrap()\";").iter().all(|i| i != "unwrap"));
    }

    #[test]
    fn comments_are_separated_and_hide_code() {
        let l = lex("// HashMap here\nlet x = 1; /* Instant::now */\n");
        assert!(l.tokens.iter().all(|t| t.text != "HashMap" && t.text != "Instant"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("HashMap"));
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comment_terminates() {
        let l = lex("/* a /* b */ c */ fn f() {}\n");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}\n"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("let c = 'a'; fn f<'a>(x: &'a str) { loop { break 'a; } }");
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        let lifetimes = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(chars, 1);
        assert!(lifetimes >= 2);
    }

    #[test]
    fn escaped_quote_in_char() {
        let ids = idents(r"let c = '\''; let d = unwrap;");
        assert_eq!(ids, vec!["let", "c", "let", "d", "unwrap"]);
    }

    #[test]
    fn line_numbers_track_strings_and_comments() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 2;\n";
        let l = lex(src);
        let b_tok = l.tokens.iter().find(|t| t.text == "b").expect("b token present");
        assert_eq!(b_tok.line, 5);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5; }");
        let dots = l.tokens.iter().filter(|t| t.kind == TokKind::Punct && t.text == ".").count();
        assert_eq!(dots, 2, "range dots survive");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Number && t.text == "1.5"));
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }
}
