//! `simlint` CLI — the blocking lint gate run by `scripts/ci.sh`.
//!
//! Usage:
//!   cargo run -p simlint -- --workspace            # scan the whole tree
//!   cargo run -p simlint -- --workspace --json P   # also write report to P
//!   cargo run -p simlint -- FILE...                # scan specific files
//!                                                  #   (strict classification)
//!
//! Exit code 0 when clean, 1 when any violation fires, 2 on usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{
    classify, lint_source, render_diagnostic, report::to_json, rules::RULES, workspace_root,
    FileClass, Report,
};

fn usage() -> ExitCode {
    eprintln!("usage: simlint --workspace [--root DIR] [--json PATH] | simlint FILE...");
    eprintln!("rules:");
    for r in RULES {
        eprintln!("  {:14} {}", r.name, r.summary);
    }
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            _ => return usage(),
        }
    }
    // Exactly one mode must be selected: --workspace, or explicit files.
    if workspace != files.is_empty() {
        return usage();
    }

    let report = if workspace {
        let root = root.unwrap_or_else(workspace_root);
        let report = simlint::lint_workspace(&root);
        let json = json_path.unwrap_or_else(|| root.join("results/simlint_report.json"));
        if let Some(dir) = json.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&json, to_json(&report)) {
            eprintln!("simlint: cannot write {}: {e}", json.display());
        }
        report
    } else {
        lint_files(&files)
    };

    for d in &report.diagnostics {
        eprint!("{}", render_diagnostic(d));
    }
    if report.clean() {
        eprintln!(
            "simlint: {} file(s) clean, {} justified suppression(s)",
            report.files_scanned,
            report.suppressions.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} violation(s) in {} file(s) scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Lint explicitly-listed files. Paths inside the workspace get their normal
/// classification; anything else is linted strictly (every rule on).
fn lint_files(files: &[PathBuf]) -> Report {
    let root = workspace_root();
    let root = root.canonicalize().unwrap_or(root);
    let mut report = Report::default();
    for f in files {
        let canon = f.canonicalize().unwrap_or_else(|_| f.clone());
        let rel = canon
            .strip_prefix(&root)
            .map(Path::to_path_buf)
            .unwrap_or_else(|_| f.clone());
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let class = classify(&rel_str).unwrap_or_else(FileClass::strict);
        match std::fs::read_to_string(f) {
            Ok(src) => {
                report.files_scanned += 1;
                let mut fl = lint_source(&rel_str, &src, &class);
                report.diagnostics.append(&mut fl.diagnostics);
                report.suppressions.append(&mut fl.suppressions);
            }
            Err(e) => eprintln!("simlint: cannot read {}: {e}", f.display()),
        }
    }
    report
}
