//! The rule set: what `simlint` enforces and why.
//!
//! Four rule families guard the properties the simulator's reliability
//! argument rests on (see DESIGN.md "Static invariants"):
//!
//! * **D — determinism**: [`DET_HASH`], [`DET_WALLTIME`], [`DET_THREAD`].
//!   Every run must be bit-for-bit reproducible; randomized hash iteration,
//!   wall-clock reads, and ad-hoc threads all break that silently.
//! * **U — unit safety**: [`UNITS`]. `SimTime`/`SimDuration` arithmetic must
//!   stay typed; raw `as u64`/`as f64` casts on nanosecond values reintroduce
//!   the unit bugs the newtypes exist to prevent.
//! * **H — hot-path hygiene**: [`HOT_ALLOC`]. Functions annotated
//!   `// simlint::hot` must stay allocation-free (locks in PR 1's perf work).
//! * **E — error discipline**: [`ERROR_UNWRAP`]. Simulator code panics only
//!   through `expect("<named invariant>")`, never bare `unwrap()`.
//! * **O — observability**: [`PROBE_UNIQUE`]. `ProbeId` names key Perfetto
//!   categories, golden traces, and latency attribution; a duplicate name
//!   silently merges two probe points into one timeline. [`FLOW_ID`]: flow
//!   identity is the packed `gm_sim::FlowId` newtype; a raw `u64` copy of
//!   it bypasses the validity bit and field packing that causal lineage
//!   reconstruction depends on.
//!
//! Plus [`ALLOW_HYGIENE`], which polices the suppression mechanism itself.

/// Name, one-line summary, and help text for one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule key, used in diagnostics and `simlint::allow(...)`.
    pub name: &'static str,
    /// One-line summary of what the rule forbids.
    pub summary: &'static str,
    /// Remediation hint appended to each diagnostic.
    pub help: &'static str,
}

/// D: no default-hasher `HashMap`/`HashSet` in sim/protocol crates.
pub const DET_HASH: &str = "det-hash";
/// D: no `Instant`/`SystemTime` wall-clock reads in simulator code.
pub const DET_WALLTIME: &str = "det-walltime";
/// D: no `thread::spawn` in simulator code.
pub const DET_THREAD: &str = "det-thread";
/// U: no raw `as` casts on `SimTime`/`SimDuration` nanosecond values.
pub const UNITS: &str = "units";
/// H: no allocation in `// simlint::hot` functions.
pub const HOT_ALLOC: &str = "hot-alloc";
/// E: no `unwrap()`; `expect` must name its invariant in a string literal.
pub const ERROR_UNWRAP: &str = "error-unwrap";
/// O: `ProbeId::new("<name>", ...)` names must be unique workspace-wide.
pub const PROBE_UNIQUE: &str = "probe-unique";
/// O: no raw `u64` flow identifiers outside `sim::flow`.
pub const FLOW_ID: &str = "flow-id";
/// P: no clock/RNG/probe/global-state access inside `gm::proto`.
pub const STATE_PURE: &str = "state-pure";
/// Suppressions must name a known rule, carry a reason, and actually fire.
pub const ALLOW_HYGIENE: &str = "allow-hygiene";

/// The full rule table, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: DET_HASH,
        summary: "default-hasher HashMap/HashSet keeps protocol state in randomized iteration order",
        help: "use BTreeMap/BTreeSet (or a seeded hasher built on gm_sim::splitmix64) so identical runs iterate identically",
    },
    RuleInfo {
        name: DET_WALLTIME,
        summary: "wall-clock read in simulator code breaks run-to-run reproducibility",
        help: "use SimTime from the engine; for genuine wall-clock *measurement* of the simulator itself, suppress with a reason",
    },
    RuleInfo {
        name: DET_THREAD,
        summary: "thread::spawn in simulator code makes event interleaving scheduler-dependent",
        help: "simulation state must be single-threaded; only the bench harness fans out (independent sims per thread)",
    },
    RuleInfo {
        name: UNITS,
        summary: "raw `as` cast mixes SimTime/SimDuration nanoseconds with untyped numbers",
        help: "stay in typed time (as_micros_f64/as_nanos_f64, SimDuration ops); conversions belong in sim::time only",
    },
    RuleInfo {
        name: HOT_ALLOC,
        summary: "allocation in a `// simlint::hot` function",
        help: "hot paths are allocation-free by design (DESIGN.md \u{a7}6); hoist the allocation out or drop the annotation deliberately",
    },
    RuleInfo {
        name: ERROR_UNWRAP,
        summary: "unwrap()/anonymous expect in non-test simulator code",
        help: "return a typed error, or use expect(\"<invariant>\") with a message naming the invariant that makes the panic unreachable",
    },
    RuleInfo {
        name: PROBE_UNIQUE,
        summary: "duplicate ProbeId name — probe identities must be unique workspace-wide",
        help: "probe events are keyed by their static name (Perfetto categories, golden traces, attribution); pick a name no other ProbeId::new(...) uses",
    },
    RuleInfo {
        name: FLOW_ID,
        summary: "raw u64 flow identifier outside sim::flow loses the packed-FlowId type safety",
        help: "pass and store gm_sim::FlowId; only crates/sim/src/flow.rs may touch the raw representation (from_raw), reading .raw() for serialization is fine",
    },
    RuleInfo {
        name: STATE_PURE,
        summary: "impure construct (clock/RNG/probe/global state) inside the pure protocol core",
        help: "gm::proto holds side-effect-free transition functions shared with the simcheck model checker; keep time, randomness, probes and statics in the layers that call it",
    },
    RuleInfo {
        name: ALLOW_HYGIENE,
        summary: "malformed, unjustified, or unused simlint suppression",
        help: "write `// simlint::allow(<rule>, <reason>)` with a real reason, and delete suppressions that no longer fire",
    },
];

/// Look up a rule by key.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// True if `name` is a known rule key.
pub fn is_known_rule(name: &str) -> bool {
    rule_info(name).is_some()
}
