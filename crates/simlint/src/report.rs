//! Machine-readable report output (`results/simlint_report.json`).
//!
//! Hand-rolled JSON writer so the linter stays dependency-free; the schema
//! is flat and the escaping is the standard six + control codes.

use crate::Report;

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a [`Report`] as pretty-printed JSON.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!(
        "  \"violations\": {},\n",
        report.diagnostics.len()
    ));
    s.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            esc(d.rule),
            esc(&d.file),
            d.line,
            esc(&d.message),
            esc(&d.snippet),
            if i + 1 == report.diagnostics.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"suppressions\": [\n");
    for (i, a) in report.suppressions.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            esc(&a.rule),
            esc(&a.file),
            a.line,
            esc(&a.reason),
            if i + 1 == report.suppressions.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, SuppressionRec};

    #[test]
    fn escapes_and_structure() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.diagnostics.push(Diagnostic {
            rule: "det-hash",
            file: "a.rs".to_string(),
            line: 3,
            message: "has \"quotes\"".to_string(),
            snippet: "let m: HashMap<u8, u8>;".to_string(),
        });
        r.suppressions.push(SuppressionRec {
            rule: "units".to_string(),
            file: "b.rs".to_string(),
            line: 9,
            reason: "raw ns\tby design".to_string(),
        });
        let j = to_json(&r);
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("raw ns\\tby design"));
        // Trailing-comma-free and balanced.
        assert!(!j.contains(",\n  ]"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn empty_report_is_valid() {
        let j = to_json(&Report::default());
        assert!(j.contains("\"diagnostics\": [\n  ]"));
    }
}
