//! Cluster-level behaviours: host-CPU serialization of notice delivery,
//! client-side send parking under token exhaustion, and protocol tracing.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{probes, Cluster, GmParams, HostApp, HostCtx, Never, NoExt, Notice};
use gm_sim::probe::{Phase, ProbeConfig, ProbeEvent, ProbeId};
use gm_sim::{SimDuration, SimTime};
use myrinet::{Fabric, NodeId, PortId, Topology};

const P0: PortId = PortId(0);

#[test]
fn notices_wait_for_a_busy_host() {
    // The receiver computes for 500us immediately; a message arriving at
    // ~6us must only be delivered when the CPU frees up.
    struct BusyReceiver {
        delivered_at: Arc<Mutex<SimTime>>,
    }
    impl HostApp<NoExt> for BusyReceiver {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.provide_recv(P0, 1);
            ctx.compute(SimDuration::from_micros(500), 1);
        }
        fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
            if let Notice::Recv { .. } = n {
                *self.delivered_at.lock().unwrap() = ctx.now();
            }
        }
    }
    struct Sender;
    impl HostApp<NoExt> for Sender {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.send(NodeId(1), P0, P0, Bytes::from_static(b"hi"), 0);
        }
        fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
    }
    let delivered_at = Arc::new(Mutex::new(SimTime::ZERO));
    let mut c = Cluster::new(GmParams::default(), Fabric::new(Topology::for_nodes(2), 1), |_| NoExt);
    c.set_app(NodeId(0), Box::new(Sender));
    c.set_app(
        NodeId(1),
        Box::new(BusyReceiver {
            delivered_at: delivered_at.clone(),
        }),
    );
    c.into_engine().run_to_idle();
    let at = *delivered_at.lock().unwrap();
    assert!(
        at >= SimTime::ZERO + SimDuration::from_micros(500),
        "notice delivered at {at} while the host was computing"
    );
    // ...but immediately after, not much later.
    assert!(at < SimTime::ZERO + SimDuration::from_micros(510));
}

#[test]
fn sends_park_when_tokens_run_out_and_replay_in_order() {
    // A sender bursts far more messages than it has send tokens while the
    // receiver acks slowly enough that tokens cannot recycle instantly.
    let params = GmParams {
        send_tokens: 3,
        ..GmParams::default()
    };
    const MSGS: u64 = 20;

    struct Burst;
    impl HostApp<NoExt> for Burst {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            for i in 0..MSGS {
                ctx.send(NodeId(1), P0, P0, Bytes::from(vec![i as u8; 2000]), i);
            }
        }
        fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
    }
    struct Sink {
        got: Arc<Mutex<Vec<u64>>>,
    }
    impl HostApp<NoExt> for Sink {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.provide_recv(P0, MSGS as usize);
        }
        fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
            if let Notice::Recv { tag, .. } = n {
                ctx.provide_recv(P0, 1);
                self.got.lock().unwrap().push(tag);
            }
        }
    }
    let got = Arc::new(Mutex::new(Vec::new()));
    let mut c = Cluster::new(params, Fabric::new(Topology::for_nodes(2), 2), |_| NoExt);
    c.set_app(NodeId(0), Box::new(Burst));
    c.set_app(NodeId(1), Box::new(Sink { got: got.clone() }));
    let mut eng = c.into_engine();
    eng.run_to_idle();
    assert_eq!(
        *got.lock().unwrap(),
        (0..MSGS).collect::<Vec<u64>>(),
        "parked sends must replay in post order"
    );
    // The pool really was exhausted at some point.
    assert!(eng.world().nic(NodeId(0)).counters.get("acked_packets") >= MSGS);
}

#[test]
fn trace_captures_the_full_protocol_pipeline() {
    struct Sender;
    impl HostApp<NoExt> for Sender {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.send(NodeId(1), P0, P0, Bytes::from_static(b"traced"), 0);
        }
        fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
    }
    struct Receiver;
    impl HostApp<NoExt> for Receiver {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.provide_recv(P0, 1);
        }
        fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
    }
    let mut c = Cluster::new(GmParams::default(), Fabric::new(Topology::for_nodes(2), 3), |_| NoExt);
    c.set_app(NodeId(0), Box::new(Sender));
    c.set_app(NodeId(1), Box::new(Receiver));
    c.set_probes(ProbeConfig::spans());
    let mut eng = c.into_engine();
    eng.run_to_idle();
    let events: Vec<ProbeEvent> = eng.world().probe.iter().copied().collect();
    // The pipeline appears in causal order on the sender...
    let idx = |node: u32, pred: &dyn Fn(&ProbeEvent) -> bool| {
        events.iter().position(|e| e.node == node && pred(e))
    };
    let span_begin = |id: ProbeId, label: &'static str| {
        move |e: &ProbeEvent| e.id == id && e.phase == Phase::Begin && e.label == label
    };
    let host_call = idx(0, &|e| {
        e.id == probes::HOST_CALL && e.phase == Phase::Mark && e.label == "send"
    })
    .expect("host call");
    let lanai = idx(0, &span_begin(probes::LANAI, "send_token")).expect("lanai");
    let dma = idx(0, &span_begin(probes::PCI_DMA, "dma")).expect("sdma");
    let tx = idx(0, &span_begin(probes::WIRE_TX, "tx")).expect("tx");
    assert!(host_call < lanai && lanai < dma && dma < tx);
    // ...and the receiver sees arrival, then its own notice.
    let rx = idx(1, &|e| e.id == probes::RX_ARRIVE && e.phase == Phase::Mark).expect("rx");
    let notice = idx(1, &|e| {
        e.id == probes::NOTICE && e.phase == Phase::Mark && e.label == "recv"
    })
    .expect("notice");
    assert!(rx < notice);
    // Sequence numbers never regress (Complete spans open in the past, so
    // `time` alone is not monotone — `seq` is the deterministic order).
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

#[test]
fn staggered_app_starts_are_honoured() {
    struct Stamp {
        at: Arc<Mutex<SimTime>>,
    }
    impl HostApp<NoExt> for Stamp {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            *self.at.lock().unwrap() = ctx.now();
        }
        fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
    }
    let stamps: Vec<Arc<Mutex<SimTime>>> = (0..3).map(|_| Arc::default()).collect();
    let mut c = Cluster::new(GmParams::default(), Fabric::new(Topology::for_nodes(3), 4), |_| NoExt);
    for (i, s) in stamps.iter().enumerate() {
        c.set_app(NodeId(i as u32), Box::new(Stamp { at: s.clone() }));
        c.set_start(NodeId(i as u32), SimTime::from_nanos(1_000 * i as u64));
    }
    c.into_engine().run_to_idle();
    for (i, s) in stamps.iter().enumerate() {
        assert_eq!(s.lock().unwrap().as_nanos(), 1_000 * i as u64);
    }
}
