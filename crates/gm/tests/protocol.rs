//! End-to-end tests of the base GM protocol: reliable ordered delivery over
//! the simulated fabric, with and without injected faults.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Never, NoExt, Notice};
use gm_sim::{SimDuration, SimTime};
use myrinet::{DropRule, Fabric, FaultPlan, NetParams, NodeId, PortId, Topology};

const P0: PortId = PortId(0);

/// Messages observed by a receiver: (src, tag, data).
type RecvLog = Arc<Mutex<Vec<(NodeId, u64, Bytes)>>>;
/// Completion tags observed by a sender.
type DoneLog = Arc<Mutex<Vec<u64>>>;

/// Sends a scripted list of messages back to back (next send posted when the
/// previous completes if `serial`, or all at once).
struct ScriptedSender {
    msgs: Vec<(NodeId, Bytes, u64)>,
    serial: bool,
    next: usize,
    done: DoneLog,
    done_at: Arc<Mutex<SimTime>>,
}

impl ScriptedSender {
    fn new(msgs: Vec<(NodeId, Bytes, u64)>, serial: bool, done: DoneLog) -> Self {
        ScriptedSender {
            msgs,
            serial,
            next: 0,
            done,
            done_at: Arc::new(Mutex::new(SimTime::ZERO)),
        }
    }
}

impl HostApp<NoExt> for ScriptedSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        if self.serial {
            if let Some((dst, data, tag)) = self.msgs.first().cloned() {
                self.next = 1;
                ctx.send(dst, P0, P0, data, tag);
            }
        } else {
            for (dst, data, tag) in self.msgs.clone() {
                ctx.send(dst, P0, P0, data, tag);
            }
            self.next = self.msgs.len();
        }
    }

    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::SendComplete { tag, .. } = n {
            self.done.lock().unwrap().push(tag);
            *self.done_at.lock().unwrap() = ctx.now();
            if self.serial && self.next < self.msgs.len() {
                let (dst, data, tag) = self.msgs[self.next].clone();
                self.next += 1;
                ctx.send(dst, P0, P0, data, tag);
            }
        }
    }
}

/// Provides `credits` receive buffers and records everything received.
struct Sink {
    credits: usize,
    log: RecvLog,
    last_at: Arc<Mutex<SimTime>>,
}

impl Sink {
    fn new(credits: usize, log: RecvLog) -> Self {
        Sink {
            credits,
            log,
            last_at: Arc::new(Mutex::new(SimTime::ZERO)),
        }
    }
}

impl HostApp<NoExt> for Sink {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        ctx.provide_recv(P0, self.credits);
    }

    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::Recv { src, tag, data, .. } = n {
            self.log.lock().unwrap().push((src, tag, data));
            *self.last_at.lock().unwrap() = ctx.now();
        }
    }
}

fn cluster(n: u32, faults: FaultPlan, seed: u64) -> Cluster<NoExt> {
    let fabric = Fabric::with_config(Topology::for_nodes(n), NetParams::default(), faults, seed);
    Cluster::new(GmParams::default(), fabric, |_| NoExt)
}

fn payload(len: usize, fill: u8) -> Bytes {
    Bytes::from(vec![fill; len])
}

#[test]
fn single_small_message_latency_is_era_plausible() {
    let mut c = cluster(2, FaultPlan::none(), 1);
    let recv: RecvLog = Arc::default();
    let done: DoneLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(
            vec![(NodeId(1), payload(8, 0xAB), 1)],
            true,
            done,
        )),
    );
    let sink = Sink::new(1, recv.clone());
    let recv_at = sink.last_at.clone();
    c.set_app(NodeId(1), Box::new(sink));
    let mut eng = c.into_engine();
    eng.run_to_idle();
    let log = recv.lock().unwrap();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].2, payload(8, 0xAB));
    // One-way latency must land in GM-2's era ballpark: 4..12 us.
    let us = recv_at.lock().unwrap().as_micros_f64();
    assert!((4.0..12.0).contains(&us), "one-way latency was {us} us");
}

#[test]
fn multi_packet_message_reassembles() {
    // 3.5 packets worth of data with distinguishable content.
    let data: Vec<u8> = (0..14_336u32).map(|i| (i % 251) as u8).collect();
    let data = Bytes::from(data);
    let mut c = cluster(2, FaultPlan::none(), 2);
    let recv: RecvLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(
            vec![(NodeId(1), data.clone(), 9)],
            true,
            Arc::default(),
        )),
    );
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(1, recv.clone())),
    );
    c.into_engine().run_to_idle();
    let log = recv.lock().unwrap();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, 9);
    assert_eq!(log[0].2, data, "reassembled payload must match exactly");
}

#[test]
fn zero_length_message_is_delivered() {
    let mut c = cluster(2, FaultPlan::none(), 3);
    let recv: RecvLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(
            vec![(NodeId(1), Bytes::new(), 4)],
            true,
            Arc::default(),
        )),
    );
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(1, recv.clone())),
    );
    c.into_engine().run_to_idle();
    let log = recv.lock().unwrap();
    assert_eq!(log.len(), 1);
    assert!(log[0].2.is_empty());
}

#[test]
fn messages_on_one_connection_arrive_in_order() {
    let msgs: Vec<(NodeId, Bytes, u64)> = (0..20)
        .map(|i| (NodeId(1), payload(100 + i as usize * 37, i as u8), i))
        .collect();
    let mut c = cluster(2, FaultPlan::none(), 4);
    let recv: RecvLog = Arc::default();
    let done: DoneLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(msgs, false, done.clone())),
    );
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(20, recv.clone())),
    );
    c.into_engine().run_to_idle();
    let log = recv.lock().unwrap();
    assert_eq!(log.len(), 20);
    for (i, (_, tag, data)) in log.iter().enumerate() {
        assert_eq!(*tag, i as u64, "messages must arrive in post order");
        assert_eq!(data.len(), 100 + i * 37);
    }
    assert_eq!(done.lock().unwrap().len(), 20);
}

#[test]
fn lost_data_packet_is_retransmitted() {
    let faults = FaultPlan {
        rules: vec![DropRule::data_between(NodeId(0), NodeId(1), 1)],
        ..FaultPlan::default()
    };
    let mut c = cluster(2, faults, 5);
    let recv: RecvLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(
            vec![(NodeId(1), payload(64, 1), 1)],
            true,
            Arc::default(),
        )),
    );
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(1, recv.clone())),
    );
    let mut eng = c.into_engine();
    eng.run_to_idle();
    assert_eq!(recv.lock().unwrap().len(), 1, "message survives the drop");
    // Recovery needed at least one timeout period.
    assert!(eng.now() > SimTime::ZERO + GmParams::default().timeout);
    assert!(eng.world().nic(NodeId(0)).counters.get("retransmissions") >= 1);
}

#[test]
fn lost_ack_is_recovered_without_duplicate_delivery() {
    let faults = FaultPlan {
        rules: vec![myrinet::DropRule {
            src: Some(NodeId(1)),
            dst: Some(NodeId(0)),
            data: Some(false),
            count: 1,
            ..myrinet::DropRule::default()
        }],
        ..FaultPlan::default()
    };
    let mut c = cluster(2, faults, 6);
    let recv: RecvLog = Arc::default();
    let done: DoneLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(
            vec![(NodeId(1), payload(64, 2), 3)],
            true,
            done.clone(),
        )),
    );
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(2, recv.clone())),
    );
    c.into_engine().run_to_idle();
    assert_eq!(recv.lock().unwrap().len(), 1, "no duplicate delivery on ack loss");
    assert_eq!(done.lock().unwrap().as_slice(), &[3], "sender still completes");
}

#[test]
fn heavy_random_loss_still_delivers_everything() {
    let msgs: Vec<(NodeId, Bytes, u64)> = (0..30)
        .map(|i| (NodeId(1), payload(777, i as u8), i))
        .collect();
    let mut c = cluster(2, FaultPlan::with_loss(0.15), 7);
    let recv: RecvLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(msgs, false, Arc::default())),
    );
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(30, recv.clone())),
    );
    c.into_engine().run_to_idle();
    let log = recv.lock().unwrap();
    assert_eq!(log.len(), 30);
    for (i, (_, tag, data)) in log.iter().enumerate() {
        assert_eq!(*tag, i as u64, "in-order despite loss");
        assert_eq!(data.len(), 777);
        assert!(data.iter().all(|&b| b == i as u8), "payload integrity");
    }
}

#[test]
fn missing_receive_token_stalls_until_recovered_by_retransmit() {
    // Receiver preposts only 1 credit but two messages arrive; the second
    // is dropped at the NIC until the app (on first recv) posts another.
    struct LazySink {
        log: RecvLog,
    }
    impl HostApp<NoExt> for LazySink {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.provide_recv(P0, 1);
        }
        fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
            if let Notice::Recv { src, tag, data, .. } = n {
                self.log.lock().unwrap().push((src, tag, data));
                // Dawdle before reposting a credit, guaranteeing the second
                // message's packet finds the token pool empty.
                ctx.compute(SimDuration::from_micros(50), 0);
                ctx.provide_recv(P0, 1);
            }
        }
    }
    let msgs = vec![
        (NodeId(1), payload(8, 1), 0),
        (NodeId(1), payload(8, 2), 1),
    ];
    let mut c = cluster(2, FaultPlan::none(), 8);
    let recv: RecvLog = Arc::default();
    c.set_app(
        NodeId(0),
        Box::new(ScriptedSender::new(msgs, false, Arc::default())),
    );
    c.set_app(NodeId(1), Box::new(LazySink { log: recv.clone() }));
    let mut eng = c.into_engine();
    eng.run_to_idle();
    assert_eq!(recv.lock().unwrap().len(), 2);
    let drops = eng.world().nic(NodeId(1)).counters.get("rx_drop_no_token");
    assert!(drops >= 1, "second message must have hit the token wall");
}

#[test]
fn bidirectional_traffic_does_not_interfere() {
    let mut c = cluster(2, FaultPlan::none(), 9);
    let recv0: RecvLog = Arc::default();
    let recv1: RecvLog = Arc::default();

    /// Sends and receives simultaneously.
    struct Both {
        peer: NodeId,
        n: u64,
        log: RecvLog,
    }
    impl HostApp<NoExt> for Both {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.provide_recv(P0, self.n as usize);
            for i in 0..self.n {
                ctx.send(self.peer, P0, P0, Bytes::from(vec![i as u8; 256]), i);
            }
        }
        fn on_notice(&mut self, n: Notice<Never>, _ctx: &mut HostCtx<'_, NoExt>) {
            if let Notice::Recv { src, tag, data, .. } = n {
                self.log.lock().unwrap().push((src, tag, data));
            }
        }
    }
    c.set_app(
        NodeId(0),
        Box::new(Both {
            peer: NodeId(1),
            n: 10,
            log: recv0.clone(),
        }),
    );
    c.set_app(
        NodeId(1),
        Box::new(Both {
            peer: NodeId(0),
            n: 10,
            log: recv1.clone(),
        }),
    );
    c.into_engine().run_to_idle();
    assert_eq!(recv0.lock().unwrap().len(), 10);
    assert_eq!(recv1.lock().unwrap().len(), 10);
}

#[test]
fn fan_in_many_senders_one_receiver() {
    let n = 8u32;
    let mut c = cluster(n, FaultPlan::none(), 10);
    let recv: RecvLog = Arc::default();
    for s in 1..n {
        c.set_app(
            NodeId(s),
            Box::new(ScriptedSender::new(
                vec![(NodeId(0), payload(1024, s as u8), s as u64)],
                true,
                Arc::default(),
            )),
        );
    }
    c.set_app(
        NodeId(0),
        Box::new(Sink::new((n - 1) as usize, recv.clone())),
    );
    c.into_engine().run_to_idle();
    let log = recv.lock().unwrap();
    assert_eq!(log.len(), (n - 1) as usize);
    let mut srcs: Vec<u32> = log.iter().map(|(s, ..)| s.0).collect();
    srcs.sort_unstable();
    assert_eq!(srcs, (1..n).collect::<Vec<_>>());
}

#[test]
fn larger_messages_take_longer() {
    let mut lat = Vec::new();
    for len in [64usize, 4096, 16384] {
        let mut c = cluster(2, FaultPlan::none(), 11);
        let recv: RecvLog = Arc::default();
        c.set_app(
            NodeId(0),
            Box::new(ScriptedSender::new(
                vec![(NodeId(1), payload(len, 0), 0)],
                true,
                Arc::default(),
            )),
        );
        let sink = Sink::new(1, recv.clone());
        let recv_at = sink.last_at.clone();
        c.set_app(NodeId(1), Box::new(sink));
        let mut eng = c.into_engine();
        eng.run_to_idle();
        assert_eq!(recv.lock().unwrap().len(), 1);
        lat.push(recv_at.lock().unwrap().as_micros_f64());
    }
    assert!(lat[0] < lat[1] && lat[1] < lat[2], "latency ordering: {lat:?}");
    // 16 KB spans 4 packets; wire time alone is ~66 us.
    assert!(lat[2] > 60.0, "16 KB exchange too fast: {} us", lat[2]);
}

#[test]
fn determinism_same_seed_same_timeline() {
    let run = || {
        let msgs: Vec<(NodeId, Bytes, u64)> = (0..10)
            .map(|i| (NodeId(1), payload(500, i as u8), i))
            .collect();
        let mut c = cluster(2, FaultPlan::with_loss(0.1), 99);
        let recv: RecvLog = Arc::default();
        c.set_app(
            NodeId(0),
            Box::new(ScriptedSender::new(msgs, false, Arc::default())),
        );
        c.set_app(
            NodeId(1),
            Box::new(Sink::new(10, recv.clone())),
        );
        let mut eng = c.into_engine();
        eng.run_to_idle();
        let received = recv.lock().unwrap().len();
        (eng.now(), eng.events_handled(), received)
    };
    assert_eq!(run(), run());
}

#[test]
fn host_cpu_time_accounts_compute_and_overhead() {
    struct Computer;
    impl HostApp<NoExt> for Computer {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.compute(SimDuration::from_micros(100), 1);
        }
        fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
            if matches!(n, Notice::ComputeDone { tag: 1 }) {
                ctx.send(NodeId(1), P0, P0, Bytes::from_static(b"x"), 2);
            }
        }
    }
    let mut c = cluster(2, FaultPlan::none(), 12);
    let recv: RecvLog = Arc::default();
    c.set_app(NodeId(0), Box::new(Computer));
    c.set_app(
        NodeId(1),
        Box::new(Sink::new(1, recv.clone())),
    );
    let mut eng = c.into_engine();
    eng.run_to_idle();
    assert_eq!(recv.lock().unwrap().len(), 1);
    let busy = eng.world().host(NodeId(0)).busy_total();
    // 100us compute + sub-us send post.
    assert!(busy >= SimDuration::from_micros(100));
    assert!(busy < SimDuration::from_micros(102));
    // The message could only have been sent after the compute block.
    assert!(eng.now() > SimTime::ZERO + SimDuration::from_micros(100));
}

#[test]
fn ack_coalescing_cuts_control_traffic_without_losing_anything() {
    let run_with = |coalesce_us: u64| {
        let params = GmParams {
            ack_coalesce: SimDuration::from_micros(coalesce_us),
            ..GmParams::default()
        };
        let fabric = Fabric::with_config(
            Topology::for_nodes(2),
            NetParams::default(),
            FaultPlan::none(),
            13,
        );
        let mut c = Cluster::new(params, fabric, |_| NoExt);
        let msgs: Vec<(NodeId, Bytes, u64)> = (0..10)
            .map(|i| (NodeId(1), payload(12_000, i as u8), i)) // 3 packets each
            .collect();
        let recv: RecvLog = Arc::default();
        let done: DoneLog = Arc::default();
        c.set_app(
            NodeId(0),
            Box::new(ScriptedSender::new(msgs, false, done.clone())),
        );
        c.set_app(NodeId(1), Box::new(Sink::new(10, recv.clone())));
        let mut eng = c.into_engine();
        eng.run_to_idle();
        assert_eq!(recv.lock().unwrap().len(), 10, "all messages delivered");
        assert_eq!(done.lock().unwrap().len(), 10, "all sends completed");
        let acks = eng.world().nic(NodeId(1)).counters.get("tx_acks");
        let retx = eng.world().nic(NodeId(0)).counters.get("retransmissions");
        assert_eq!(retx, 0, "coalescing must not trigger timeouts");
        acks
    };
    let per_packet = run_with(0);
    let coalesced = run_with(30);
    assert_eq!(per_packet, 30, "one ack per packet (10 msgs x 3 pkts)");
    assert!(
        coalesced <= per_packet / 2,
        "coalescing should slash ack count: {coalesced} vs {per_packet}"
    );
}
