//! Protection: one of the paper's Figure 1 axes. GM gives each process its
//! own port with private receive credits; traffic addressed to one port can
//! never consume another port's resources or be delivered to it.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Never, NoExt, Notice};
use myrinet::{Fabric, NodeId, PortId, Topology};

const PA: PortId = PortId(0);
const PB: PortId = PortId(1);

type Log = Arc<Mutex<Vec<(PortId, u64)>>>;

/// Hosts two logical endpoints: credits only on port A.
struct TwoPortHost {
    log: Log,
}

impl HostApp<NoExt> for TwoPortHost {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        ctx.provide_recv(PA, 8);
        // Port B gets nothing: its traffic must not steal A's credits.
    }
    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::Recv { port, tag, .. } = n {
            ctx.provide_recv(port, 1);
            self.log.lock().unwrap().push((port, tag));
        }
    }
}

struct DualSender;

impl HostApp<NoExt> for DualSender {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        // Interleave traffic to both ports.
        for i in 0..6u64 {
            let port = if i % 2 == 0 { PA } else { PB };
            ctx.send(NodeId(1), port, port, Bytes::from(vec![i as u8; 100]), i);
        }
    }
    fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
}

#[test]
fn credits_are_per_port_and_traffic_never_crosses() {
    let log: Log = Arc::default();
    let mut c = Cluster::new(
        GmParams::default(),
        Fabric::new(Topology::for_nodes(2), 1),
        |_| NoExt,
    );
    c.set_app(NodeId(0), Box::new(DualSender));
    c.set_app(NodeId(1), Box::new(TwoPortHost { log: log.clone() }));
    let mut eng = c.into_engine();
    // Port B's messages will retry forever (no credits ever posted), so run
    // bounded and check what got through.
    eng.run_until(gm_sim::SimTime::from_nanos(100_000_000));
    let got = log.lock().unwrap();
    // All three port-A messages arrived, in order, despite interleaved
    // port-B traffic stalling.
    let a_tags: Vec<u64> = got.iter().filter(|(p, _)| *p == PA).map(|(_, t)| *t).collect();
    assert_eq!(a_tags, vec![0, 2, 4]);
    // Nothing was ever delivered on port B...
    assert!(got.iter().all(|(p, _)| *p == PA));
    // ...because its packets hit the per-port credit wall, not port A's.
    let drops = eng.world().nic(NodeId(1)).counters.get("rx_drop_no_token");
    assert!(drops > 0, "port B traffic must be refused, not delivered");
}

#[test]
fn connections_are_independent_per_port_pair() {
    // Sequence numbers on (port A) and (port B) connections are separate:
    // heavy traffic on one does not reorder or block the other.
    struct BothPorts {
        log: Log,
    }
    impl HostApp<NoExt> for BothPorts {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            ctx.provide_recv(PA, 32);
            ctx.provide_recv(PB, 32);
        }
        fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
            if let Notice::Recv { port, tag, .. } = n {
                ctx.provide_recv(port, 1);
                self.log.lock().unwrap().push((port, tag));
            }
        }
    }
    struct Mixed;
    impl HostApp<NoExt> for Mixed {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
            // A large message on port A, then small ones on port B: the B
            // messages overtake A's completion (ports do not serialize).
            ctx.send(NodeId(1), PA, PA, Bytes::from(vec![1u8; 60_000]), 100);
            for i in 0..4u64 {
                ctx.send(NodeId(1), PB, PB, Bytes::from(vec![2u8; 16]), i);
            }
        }
        fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
    }
    let log: Log = Arc::default();
    let mut c = Cluster::new(
        GmParams::default(),
        Fabric::new(Topology::for_nodes(2), 2),
        |_| NoExt,
    );
    c.set_app(NodeId(0), Box::new(Mixed));
    c.set_app(NodeId(1), Box::new(BothPorts { log: log.clone() }));
    c.into_engine().run_to_idle();
    let got = log.lock().unwrap();
    assert_eq!(got.len(), 5);
    let b_tags: Vec<u64> = got.iter().filter(|(p, _)| *p == PB).map(|(_, t)| *t).collect();
    assert_eq!(b_tags, vec![0, 1, 2, 3], "port B in order");
    // The port-B messages all landed before the 60 KB port-A message
    // finished (wire-interleaved packets, independent reassembly).
    let a_pos = got.iter().position(|(p, _)| *p == PA).expect("A arrived");
    assert!(a_pos >= 1, "some B message should beat the bulk A message");
}
