//! Property-based tests of GM's reliable ordered delivery: arbitrary
//! message schedules under arbitrary loss rates must arrive exactly once,
//! in order, bit-for-bit intact.

use std::sync::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use gm::{Cluster, GmParams, HostApp, HostCtx, Never, NoExt, Notice};
use myrinet::{Fabric, FaultPlan, NetParams, NodeId, PortId, Topology};
use proptest::prelude::*;

const P0: PortId = PortId(0);

#[derive(Clone, Debug)]
struct Msg {
    dst: u32,
    len: usize,
    fill: u8,
}

fn msgs_strategy() -> impl Strategy<Value = Vec<Msg>> {
    proptest::collection::vec(
        (1u32..4, 0usize..10_000, any::<u8>()).prop_map(|(dst, len, fill)| Msg { dst, len, fill }),
        1..25,
    )
}

struct Blaster {
    msgs: Vec<Msg>,
}

impl HostApp<NoExt> for Blaster {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        for (i, m) in self.msgs.iter().enumerate() {
            ctx.send(
                NodeId(m.dst),
                P0,
                P0,
                Bytes::from(vec![m.fill; m.len]),
                i as u64,
            );
        }
    }
    fn on_notice(&mut self, _: Notice<Never>, _: &mut HostCtx<'_, NoExt>) {}
}

type Log = Arc<Mutex<Vec<(u64, Bytes)>>>;

struct Sink {
    log: Log,
}

impl HostApp<NoExt> for Sink {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
        ctx.provide_recv(P0, 64);
    }
    fn on_notice(&mut self, n: Notice<Never>, ctx: &mut HostCtx<'_, NoExt>) {
        if let Notice::Recv { tag, data, .. } = n {
            ctx.provide_recv(P0, 1);
            self.log.lock().unwrap().push((tag, data));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_schedules_survive_arbitrary_loss(
        msgs in msgs_strategy(),
        loss in 0.0f64..0.25,
        seed in any::<u64>(),
    ) {
        let fabric = Fabric::with_config(
            Topology::for_nodes(4),
            NetParams::default(),
            FaultPlan::with_loss(loss),
            seed,
        );
        let mut cluster = Cluster::new(GmParams::default(), fabric, |_| NoExt);
        cluster.set_app(NodeId(0), Box::new(Blaster { msgs: msgs.clone() }));
        let mut logs: Vec<Log> = Vec::new();
        for d in 1..4u32 {
            let log: Log = Arc::default();
            logs.push(log.clone());
            cluster.set_app(NodeId(d), Box::new(Sink { log }));
        }
        let mut eng = cluster.into_engine();
        let outcome = eng.run(gm_sim::SimTime::MAX, 50_000_000);
        prop_assert_eq!(outcome, gm_sim::RunOutcome::Idle, "stuck under loss");

        // Per destination: exactly the messages addressed to it, in post
        // order, with intact payloads.
        for (di, log) in logs.iter().enumerate() {
            let dst = di as u32 + 1;
            let expect: Vec<(u64, &Msg)> = msgs
                .iter()
                .enumerate()
                .filter(|(_, m)| m.dst == dst)
                .map(|(i, m)| (i as u64, m))
                .collect();
            let got = log.lock().unwrap();
            prop_assert_eq!(got.len(), expect.len(), "count at dst {}", dst);
            for ((tag, data), (etag, em)) in got.iter().zip(&expect) {
                prop_assert_eq!(tag, etag, "order at dst {}", dst);
                prop_assert_eq!(data.len(), em.len);
                prop_assert!(data.iter().all(|&b| b == em.fill), "payload integrity");
            }
        }
    }

    #[test]
    fn delivery_time_is_deterministic_in_the_seed(
        msgs in msgs_strategy(),
        loss in 0.0f64..0.1,
        seed in any::<u64>(),
    ) {
        let run = || {
            let fabric = Fabric::with_config(
                Topology::for_nodes(4),
                NetParams::default(),
                FaultPlan::with_loss(loss),
                seed,
            );
            let mut cluster = Cluster::new(GmParams::default(), fabric, |_| NoExt);
            cluster.set_app(NodeId(0), Box::new(Blaster { msgs: msgs.clone() }));
            for d in 1..4u32 {
                cluster.set_app(NodeId(d), Box::new(Sink { log: Arc::default() }));
            }
            let mut eng = cluster.into_engine();
            eng.run_to_idle();
            (eng.now(), eng.events_handled())
        };
        prop_assert_eq!(run(), run());
    }
}
