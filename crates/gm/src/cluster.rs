//! The composed world: N hosts, N NICs, one fabric.
//!
//! `Cluster<X>` implements [`gm_sim::World`]; its event alphabet [`Ev`]
//! covers every hand-off in the system (host call arrival, LANai work
//! completion, DMA completion, wire drain, packet arrival, timers, notice
//! delivery). All protocol logic lives in [`NicCore`] and the installed
//! extension; this module only routes events and converts NIC intents into
//! scheduled events.

use std::sync::Arc;

use gm_sim::parallel::OutMsg;
use gm_sim::probe::{ProbeConfig, ProbeSink};
use gm_sim::{
    Engine, FlowId, Outbox, Scheduler, SeriesConfig, SeriesSink, ShardWorld, ShardedEngine,
    SimDuration, SimTime, World, FLOW_DELIVERY,
};
use myrinet::{Fabric, NodeId, Packet, RxOutcome, WireHandoff};

use crate::ext::NicExtension;
use crate::host::{Host, HostApp, HostCall, HostCtx};
use crate::nic::{flow_of_packet, Cb, NicCore, Notice, PciJob, TimerTag, TxJob, Work};
use crate::params::GmParams;

/// The probe points the cluster records (see `gm_sim::probe`). Every
/// hand-off the old `gm::trace` captured maps onto one of these, plus host
/// busy intervals, wire flight, link stalls, drops and timer fires.
pub mod probes {
    use gm_sim::probe::{ProbeId, Track};

    /// A host call reached the NIC (doorbell). Label: `"send"` / `"ext"`.
    pub const HOST_CALL: ProbeId = ProbeId::new("host_call", Track::Host);
    /// Host CPU busy interval (API overhead, notice handling, compute).
    pub const HOST_BUSY: ProbeId = ProbeId::new("host_busy", Track::Host);
    /// A notice was delivered to the host application. Label: notice kind.
    pub const NOTICE: ProbeId = ProbeId::new("notice", Track::Host);
    /// LANai work-item span. Label: work kind (`"send_token"`, ...).
    pub const LANAI: ProbeId = ProbeId::new("lanai", Track::Lanai);
    /// PCI DMA transfer span. Payload `a`: transfer nanoseconds.
    pub const PCI_DMA: ProbeId = ProbeId::new("pci_dma", Track::Pci);
    /// Wire serialization span on the injection link. Payload: `a` =
    /// destination node, `b` = wire bytes.
    pub const WIRE_TX: ProbeId = ProbeId::new("wire_tx", Track::Wire);
    /// Flight of a packet to its destination (propagation + switching +
    /// eject serialization), recorded on the destination's wire track.
    pub const WIRE_FLIGHT: ProbeId = ProbeId::new("wire_flight", Track::Wire);
    /// A packet's tail arrived from the wire. Payload `a`: source node.
    pub const RX_ARRIVE: ProbeId = ProbeId::new("rx_arrive", Track::Wire);
    /// A NIC timer fired. Label: `"conn"` / `"ack_flush"` / `"ext"`.
    pub const NIC_TIMER: ProbeId = ProbeId::new("nic_timer", Track::Lanai);

    pub use gm_sim::probe::{LINK_STALL, PKT_DROP};
}

/// The cluster's event alphabet.
#[derive(Debug)]
pub enum Ev<X: NicExtension> {
    /// Kick a node's application.
    AppStart(NodeId),
    /// A host call (post-overhead) arrives at the NIC.
    HostCall(NodeId, HostCall<X::Request>),
    /// A notice reaches the host (delivered when the CPU is free).
    NoticeArrive(NodeId, Notice<X::Notice>),
    /// The host CPU freed up; deliver pending notices.
    HostWake(NodeId),
    /// A LANai work item's processing time elapsed.
    LanaiDone(NodeId, Work<X>),
    /// A PCI DMA transfer completed.
    PciDone(NodeId, PciJob<X>),
    /// The transmit engine finished serializing a packet.
    TxDrained(NodeId, Cb<X::Tag>),
    /// A packet's tail arrived at a NIC.
    PacketArrive(NodeId, Packet),
    /// A timer fired.
    Timer(NodeId, TimerTag<X::Tag>),
    /// Wire-boundary sentinel: drain every buffered [`WireHandoff`] whose
    /// head reaches destination-owned links at this instant. Scheduled with
    /// [`Scheduler::at_wire`], so it runs before any normal event of the
    /// same instant — the canonical position that makes sequential and
    /// sharded runs identical.
    WireRx,
}

/// Packets in flight across the route's ownership boundary, ordered by the
/// canonical `(head_at, src, wire_seq)` key in which the receive stages
/// must run. One [`Ev::WireRx`] sentinel is scheduled per insertion; the
/// first sentinel of an instant drains every hand-off due at it, later ones
/// find nothing (keeping event counts identical across modes). A min-heap
/// on the (unique) canonical key: this sits on every packet's hot path, and
/// a heap push/pop beats B-tree rebalancing for the shallow occupancy the
/// wire keeps (packets in flight for one lookahead at most).
struct WireBuffer {
    heap: std::collections::BinaryHeap<WireEntry>,
}

/// Heap entry ordered as a *min*-heap on the canonical key (reversed
/// comparisons; `BinaryHeap` is a max-heap).
struct WireEntry {
    key: (SimTime, u32, u64),
    handoff: WireHandoff,
}

impl PartialEq for WireEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for WireEntry {}
impl PartialOrd for WireEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WireEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

impl WireBuffer {
    fn new() -> Self {
        WireBuffer {
            heap: std::collections::BinaryHeap::new(),
        }
    }

    fn insert(&mut self, h: WireHandoff) {
        let key = (h.head_at, h.pkt.src.0, h.wire_seq);
        debug_assert!(
            !self.heap.iter().any(|e| e.key == key),
            "duplicate wire hand-off key"
        );
        self.heap.push(WireEntry { key, handoff: h });
    }

    fn pop_due(&mut self, now: SimTime) -> Option<WireHandoff> {
        let t = self.heap.peek()?.key.0;
        if t == now {
            self.heap.pop().map(|e| e.handoff)
        } else {
            debug_assert!(t > now, "missed a wire hand-off at {t} (now {now})");
            None
        }
    }
}

struct Slot<X: NicExtension> {
    host: Host<X>,
    nic: NicCore<X>,
    ext: X,
    app: Option<Box<dyn HostApp<X> + Send>>,
    /// Sends the GM library parked while the NIC was out of send tokens
    /// (a blocking `gm_send` queues client-side; replayed as tokens free).
    parked_sends: std::collections::VecDeque<crate::nic::SendArgs>,
}

/// N nodes plus the fabric — or, after [`split`](Cluster::split), one
/// shard's contiguous slice of them (plus that shard's fabric clone).
pub struct Cluster<X: NicExtension> {
    params: GmParams,
    fabric: Fabric,
    slots: Vec<Slot<X>>,
    start_times: Vec<SimTime>,
    /// Observability sink (disabled by default; see [`set_probes`](Self::set_probes)).
    pub probe: ProbeSink,
    /// Time-series gauge sink (disabled by default; see
    /// [`set_series`](Self::set_series)).
    pub series: SeriesSink,
    /// Events handled (drives subsampling of execution gauges).
    events_handled: u64,
    /// Owning shard of every node (all zero in an unsplit cluster).
    shard_of: Arc<Vec<u32>>,
    /// This cluster's shard index (0 in an unsplit cluster).
    my_shard: u32,
    /// Global node id of `slots[0]` (shards own contiguous node ranges).
    node_base: u32,
    /// Hand-offs whose receive stage is due here, in canonical order.
    wire: WireBuffer,
    /// Cross-shard hand-offs emitted by the event being handled; drained
    /// into the engine's [`Outbox`] after each event (empty when unsplit).
    pending_out: Vec<OutMsg<WireHandoff>>,
}

impl<X: NicExtension> Cluster<X> {
    /// Build a cluster of `fabric.topology().n_nodes()` nodes. Extensions
    /// are produced per node by `mk_ext`; applications default to idle and
    /// are installed with [`set_app`](Self::set_app).
    pub fn new(params: GmParams, fabric: Fabric, mut mk_ext: impl FnMut(NodeId) -> X) -> Self {
        let n = fabric.topology().n_nodes();
        let slots = (0..n)
            .map(|i| {
                let node = NodeId(i);
                Slot {
                    host: Host::new(node),
                    nic: NicCore::new(node, params.clone()),
                    ext: mk_ext(node),
                    app: Some(Box::new(crate::host::IdleApp)),
                    parked_sends: std::collections::VecDeque::new(),
                }
            })
            .collect();
        Cluster {
            params,
            fabric,
            slots,
            start_times: vec![SimTime::ZERO; n as usize],
            probe: ProbeSink::disabled(),
            series: SeriesSink::disabled(),
            events_handled: 0,
            shard_of: Arc::new(vec![0; n as usize]),
            my_shard: 0,
            node_base: 0,
            wire: WireBuffer::new(),
            pending_out: Vec::new(),
        }
    }

    /// Install an observability configuration. With [`ProbeConfig::off`]
    /// (the default) no events are recorded and nothing is allocated.
    pub fn set_probes(&mut self, config: ProbeConfig) {
        self.probe = ProbeSink::new(config);
    }

    /// Install a time-series telemetry configuration. With
    /// [`SeriesConfig::off`] (the default) no gauges are sampled and
    /// nothing is allocated.
    pub fn set_series(&mut self, config: SeriesConfig) {
        self.series = SeriesSink::new(config);
    }

    /// Number of nodes in the whole cluster (not just this shard's slice).
    pub fn n_nodes(&self) -> u32 {
        self.fabric.topology().n_nodes()
    }

    /// The global node ids this cluster (shard) owns.
    pub fn local_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len() as u32).map(|i| NodeId(self.node_base + i))
    }

    /// This cluster's shard index (0 when unsplit).
    pub fn shard_id(&self) -> u32 {
        self.my_shard
    }

    /// Index of `node` into this cluster's slot slice.
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        debug_assert_eq!(
            self.shard_of[node.idx()], self.my_shard,
            "{node} is not owned by shard {}",
            self.my_shard
        );
        node.idx() - self.node_base as usize
    }

    /// The parameter set.
    pub fn params(&self) -> &GmParams {
        &self.params
    }

    /// The fabric (for fault injection and counters).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The fabric, shared.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Install `app` on `node`.
    pub fn set_app(&mut self, node: NodeId, app: Box<dyn HostApp<X> + Send>) {
        let li = self.local(node);
        self.slots[li].app = Some(app);
    }

    /// Set the time `node`'s application starts.
    pub fn set_start(&mut self, node: NodeId, at: SimTime) {
        self.start_times[node.idx()] = at;
    }

    /// A node's NIC (counters, token state).
    pub fn nic(&self, node: NodeId) -> &NicCore<X> {
        &self.slots[self.local(node)].nic
    }

    /// A node's host (CPU accounting).
    pub fn host(&self, node: NodeId) -> &Host<X> {
        &self.slots[self.local(node)].host
    }

    /// A node's extension state.
    pub fn ext(&self, node: NodeId) -> &X {
        &self.slots[self.local(node)].ext
    }

    /// Wrap in an engine with every node's `AppStart` scheduled.
    pub fn into_engine(self) -> Engine<Cluster<X>> {
        assert_eq!(self.node_base, 0, "into_engine on a shard slice");
        let starts: Vec<(NodeId, SimTime)> = self
            .start_times
            .iter()
            .enumerate()
            .map(|(i, &t)| (NodeId(i as u32), t))
            .collect();
        let mut eng = Engine::new(self);
        for (node, at) in starts {
            eng.schedule(at, Ev::AppStart(node));
        }
        eng
    }

    /// Why this cluster cannot be split `n_shards` ways (`None` = it can).
    /// Infeasible configurations run sequentially instead.
    pub fn shard_infeasible(&self, n_shards: u32) -> Option<&'static str> {
        if n_shards <= 1 {
            return Some("a single shard was requested");
        }
        if !self.fabric.faults().rules.is_empty() {
            // Rule counters decrement on match; with shards deciding fates
            // independently the count-down order would be racy.
            return Some("targeted drop rules carry shared count-down state");
        }
        let part = self.fabric.topology().partition(n_shards);
        if part.iter().max().copied().unwrap_or(0) == 0 {
            return Some("the topology has a single indivisible placement unit");
        }
        None
    }

    /// Split into per-shard clusters plus the window lookahead. Each shard
    /// owns a contiguous, fabric-partition-aligned range of nodes and a
    /// clone of the (still pristine) fabric; disjoint link ownership under
    /// the two-stage wire protocol keeps the clones consistent.
    ///
    /// Panics when [`shard_infeasible`](Self::shard_infeasible) — check (or
    /// use [`into_sharded_engine`](Self::into_sharded_engine)) first.
    pub fn split(self, n_shards: u32) -> (Vec<Cluster<X>>, SimDuration) {
        if let Some(why) = self.shard_infeasible(n_shards) {
            panic!("cannot shard this cluster: {why}");
        }
        let shard_of = Arc::new(self.fabric.topology().partition(n_shards));
        let lookahead = self
            .fabric
            .cross_lookahead(&shard_of)
            .expect("feasible partitions have cross-shard pairs");
        let actual = shard_of.iter().max().copied().unwrap_or(0) + 1;
        let config = self.probe.config();
        let series_config = self.series.config();
        let mut shards = Vec::with_capacity(actual as usize);
        let mut slots = self.slots.into_iter();
        let mut node_base = 0u32;
        for s in 0..actual {
            let count = shard_of.iter().filter(|&&x| x == s).count();
            shards.push(Cluster {
                params: self.params.clone(),
                fabric: self.fabric.clone(),
                slots: slots.by_ref().take(count).collect(),
                start_times: self.start_times.clone(),
                probe: ProbeSink::new(config),
                series: SeriesSink::new(series_config),
                events_handled: 0,
                shard_of: Arc::clone(&shard_of),
                my_shard: s,
                node_base,
                wire: WireBuffer::new(),
                pending_out: Vec::new(),
            });
            node_base += count as u32;
        }
        (shards, lookahead)
    }

    /// Wrap in a [`ShardedEngine`] of (at most) `n_shards` shards with every
    /// node's `AppStart` scheduled on its owning shard. The run is
    /// bit-for-bit identical to [`into_engine`](Self::into_engine) +
    /// `run_to_idle` — the engines differ only in wall-clock parallelism.
    ///
    /// Panics when [`shard_infeasible`](Self::shard_infeasible).
    pub fn into_sharded_engine(self, n_shards: u32) -> ShardedEngine<Cluster<X>> {
        let starts: Vec<(NodeId, SimTime)> = self
            .start_times
            .iter()
            .enumerate()
            .map(|(i, &t)| (NodeId(i as u32), t))
            .collect();
        let (shards, lookahead) = self.split(n_shards);
        let shard_of = Arc::clone(&shards[0].shard_of);
        let mut eng = ShardedEngine::new(shards, lookahead);
        for (node, at) in starts {
            eng.schedule(shard_of[node.idx()] as usize, at, Ev::AppStart(node));
        }
        eng
    }

    // -- internals -----------------------------------------------------------

    /// Run an app callback on `node` and pump the fallout.
    fn with_app(
        &mut self,
        node: NodeId,
        sched: &mut Scheduler<Ev<X>>,
        f: impl FnOnce(&mut dyn HostApp<X>, &mut HostCtx<'_, X>),
    ) {
        self.with_app_from(node, sched, None, f);
    }

    /// Like [`with_app`](Self::with_app), but the host-busy span opens at
    /// `busy_from` if given (used when cost was charged before the callback,
    /// e.g. notice handling overhead).
    fn with_app_from(
        &mut self,
        node: NodeId,
        sched: &mut Scheduler<Ev<X>>,
        busy_from: Option<SimTime>,
        f: impl FnOnce(&mut dyn HostApp<X>, &mut HostCtx<'_, X>),
    ) {
        let now = sched.now();
        let li = self.local(node);
        let slot = &mut self.slots[li];
        let busy_from = busy_from.unwrap_or_else(|| slot.host.free_at().max(now));
        let mut app = slot.app.take().expect("app re-entry");
        {
            let mut ctx = HostCtx::new(&mut slot.host, &self.params, &mut self.probe, now);
            f(app.as_mut(), &mut ctx);
        }
        slot.app = Some(app);
        let free_after = slot.host.free_at();
        if free_after > busy_from {
            let dur = free_after.saturating_since(busy_from);
            self.probe
                .complete(busy_from, node.0, probes::HOST_BUSY, dur, "");
        }
        self.pump_host(node, sched);
        self.pump_nic(node, sched);
    }

    /// Schedule the host calls an app produced.
    fn pump_host(&mut self, node: NodeId, sched: &mut Scheduler<Ev<X>>) {
        let li = self.local(node);
        let calls = std::mem::take(&mut self.slots[li].host.calls);
        for (at, call) in calls {
            sched.at(at, Ev::HostCall(node, call));
        }
    }

    /// Convert NIC intents into scheduled events.
    fn pump_nic(&mut self, node: NodeId, sched: &mut Scheduler<Ev<X>>) {
        let now = sched.now();
        let li = self.local(node);
        let slot = &mut self.slots[li];
        slot.nic.set_now(now);
        // Replay parked sends as tokens free up.
        while slot.nic.send_tokens_free() > 0 {
            let Some(args) = slot.parked_sends.pop_front() else {
                break;
            };
            let accepted = slot.nic.host_send(args);
            debug_assert!(accepted, "token accounting out of sync");
        }
        if let Some((cost, work)) = slot.nic.lanai_start() {
            let flow = slot.nic.flow_of_work(&work, &slot.ext);
            self.probe
                .begin_flow(now, node.0, probes::LANAI, work_name(&work), 0, 0, flow);
            sched.after(cost, Ev::LanaiDone(node, work));
        }
        if let Some((dur, job)) = slot.nic.pci_start() {
            let flow = slot.nic.flow_of_pci(&job, &slot.ext);
            self.probe
                .begin_flow(now, node.0, probes::PCI_DMA, "dma", dur.as_nanos(), 0, flow);
            sched.after(dur, Ev::PciDone(node, job));
        }
        if let Some(TxJob { pkt, cb }) = slot.nic.tx_start() {
            self.probe.begin_flow(
                now,
                node.0,
                probes::WIRE_TX,
                "tx",
                u64::from(pkt.dst.0),
                pkt.wire_bytes(),
                flow_of_packet(&pkt),
            );
            let flow = flow_of_packet(&pkt);
            let tx = self.fabric.tx_stage(now, pkt);
            let stall = self.fabric.last_inject_stall();
            if stall > SimDuration::ZERO {
                self.probe
                    .complete_flow(now, node.0, probes::LINK_STALL, stall, "", flow);
            }
            sched.at(tx.src_free, Ev::TxDrained(node, cb));
            let h = tx.handoff;
            let dst_shard = self.shard_of[h.pkt.dst.idx()];
            if dst_shard == self.my_shard {
                // Local receive: buffer and drain via a wire-class sentinel,
                // the same canonical position a cross-shard hand-off gets.
                sched.at_wire(h.head_at, Ev::WireRx);
                self.wire.insert(h);
            } else {
                self.pending_out.push(OutMsg {
                    dst_shard,
                    time: h.head_at,
                    src: u64::from(h.pkt.src.0),
                    seq: h.wire_seq,
                    payload: h,
                });
            }
        }
        let li = self.local(node);
        let slot = &mut self.slots[li];
        if slot.nic.take_resource_signal() {
            slot.ext.resources_available(&mut slot.nic);
        }
        for (delay, tag) in slot.nic.drain_timer_reqs() {
            sched.after(delay, Ev::Timer(node, tag));
        }
        for notice in slot.nic.drain_notices() {
            sched.immediately(Ev::NoticeArrive(node, notice));
        }
        // A pump step may have freed a resource another intent was waiting
        // on (e.g. tx_drained freeing a send buffer enqueues a new DMA), so
        // iterate until quiescent. Each pass schedules at least one
        // completion event, so this terminates.
        if self.slots[self.local(node)].nic.wants_pump() {
            self.pump_nic(node, sched);
        }
        self.sample_nic_gauges(node, now);
    }

    /// Sample this node's resource gauges into the series sink. Gauges are
    /// step functions of NIC state only, so the stream is identical whether
    /// the node runs on one shard or many; consecutive equal samples
    /// deduplicate inside the sink.
    fn sample_nic_gauges(&mut self, node: NodeId, now: SimTime) {
        if !self.series.is_enabled() {
            return;
        }
        let li = self.local(node);
        let nic = &self.slots[li].nic;
        let n = node.0;
        self.series
            .record(now, n, "send_tokens_used", nic.send_tokens_used() as u64);
        self.series
            .record(now, n, "recv_tokens_avail", nic.recv_tokens_avail() as u64);
        self.series
            .record(now, n, "sram_used", nic.sram_buffers_used() as u64);
        self.series
            .record(now, n, "lanai_queue", nic.lanai_queue_len() as u64);
        self.series
            .record(now, n, "pci_queue", nic.pci_queue_len() as u64);
        self.series
            .record(now, n, "tx_queue", nic.tx_queue_len() as u64);
    }

    /// Run the receive stage of one boundary hand-off: reserve the
    /// destination-owned links, decide the packet's fate, and schedule the
    /// tail arrival. `now` must equal `h.head_at`.
    fn rx_deliver(&mut self, h: WireHandoff, sched: &mut Scheduler<Ev<X>>) {
        let now = sched.now();
        debug_assert_eq!(now, h.head_at, "receive stage off its boundary instant");
        let dst = h.pkt.dst;
        let flow = flow_of_packet(&h.pkt);
        match self.fabric.rx_stage(&h) {
            RxOutcome::Delivered { at } => {
                let stall = self.fabric.last_inject_stall();
                if stall > SimDuration::ZERO {
                    self.probe
                        .complete_flow(now, dst.0, probes::LINK_STALL, stall, "", flow);
                }
                self.probe.complete_flow(
                    now,
                    dst.0,
                    probes::WIRE_FLIGHT,
                    at.saturating_since(now),
                    "flight",
                    flow,
                );
                sched.at(at, Ev::PacketArrive(dst, h.pkt));
            }
            RxOutcome::Dropped { .. } => {
                self.probe
                    .instant_flow(now, dst.0, probes::PKT_DROP, "", 0, flow);
            }
        }
    }

    /// Deliver a notice now if the host is free; otherwise queue it.
    fn deliver_or_queue(
        &mut self,
        node: NodeId,
        notice: Notice<X::Notice>,
        sched: &mut Scheduler<Ev<X>>,
    ) {
        let li = self.local(node);
        let slot = &mut self.slots[li];
        let free_at = slot.host.free_at();
        if sched.now() < free_at {
            slot.host.pending.push_back(notice);
            if !slot.host.wake_scheduled {
                slot.host.wake_scheduled = true;
                sched.at(free_at, Ev::HostWake(node));
            }
            return;
        }
        self.deliver(node, notice, sched);
    }

    /// Deliver one notice: charge the host's handling cost, then run the app.
    fn deliver(&mut self, node: NodeId, notice: Notice<X::Notice>, sched: &mut Scheduler<Ev<X>>) {
        let (cost, name) = match &notice {
            Notice::Recv { .. } => (self.params.host_recv_event, "recv"),
            Notice::SendComplete { .. } => (self.params.host_send_complete, "send_complete"),
            Notice::ComputeDone { .. } => (gm_sim::SimDuration::ZERO, "compute_done"),
            Notice::Ext(_) => (self.params.host_send_complete, "ext"),
        };
        let now = sched.now();
        let li = self.local(node);
        let flow = {
            let slot = &self.slots[li];
            slot.nic.flow_of_notice(&notice, &slot.ext)
        };
        self.probe
            .instant_flow(now, node.0, probes::NOTICE, name, 0, flow);
        if flow.is_some() {
            // The lineage terminal: this message reached its destination
            // application (see `gm_sim::critical_path`).
            self.probe
                .instant_flow(now, node.0, FLOW_DELIVERY, name, 0, flow);
        }
        let slot = &mut self.slots[li];
        let busy_from = slot.host.free_at().max(now);
        slot.host.charge(now, cost);
        self.with_app_from(node, sched, Some(busy_from), |app, ctx| {
            app.on_notice(notice, ctx);
        });
    }

    /// The host CPU freed up: deliver as many pending notices as possible.
    fn host_wake(&mut self, node: NodeId, sched: &mut Scheduler<Ev<X>>) {
        let li = self.local(node);
        self.slots[li].host.wake_scheduled = false;
        loop {
            let li = self.local(node);
            let slot = &mut self.slots[li];
            if slot.host.pending.is_empty() {
                return;
            }
            let free_at = slot.host.free_at();
            if sched.now() < free_at {
                if !slot.host.wake_scheduled {
                    slot.host.wake_scheduled = true;
                    sched.at(free_at, Ev::HostWake(node));
                }
                return;
            }
            let notice = slot.host.pending.pop_front().expect("nonempty");
            self.deliver(node, notice, sched);
        }
    }
}

impl<X: NicExtension> World for Cluster<X> {
    type Event = Ev<X>;

    fn handle(&mut self, event: Ev<X>, sched: &mut Scheduler<Ev<X>>) {
        self.events_handled += 1;
        if self.series.is_enabled() && self.events_handled.is_multiple_of(64) {
            // Execution diagnostic (hence the `exec_` prefix): the event
            // queue is per-engine, so sequential and sharded runs sample
            // different depths. Parity checks ignore `exec_*` gauges.
            self.series.record(
                sched.now(),
                self.my_shard,
                "exec_queue_depth",
                sched.pending() as u64,
            );
        }
        match event {
            Ev::AppStart(n) => {
                self.with_app(n, sched, |app, ctx| app.on_start(ctx));
            }
            Ev::HostCall(n, call) => {
                let now = sched.now();
                let li = self.local(n);
                let slot = &mut self.slots[li];
                slot.nic.set_now(now);
                match call {
                    HostCall::Send(args) => {
                        let flow = FlowId::new(n.0, crate::nic::flow_tag(args.tag), args.dst.0);
                        self.probe
                            .instant_flow(now, n.0, probes::HOST_CALL, "send", 0, flow);
                        if slot.nic.send_tokens_free() == 0 || !slot.parked_sends.is_empty() {
                            // Out of tokens (or behind earlier parked
                            // sends): queue client-side, replay in order
                            // once acknowledgments return tokens.
                            slot.parked_sends.push_back(args);
                        } else {
                            let accepted = slot.nic.host_send(args);
                            assert!(accepted, "{n}: token accounting out of sync");
                        }
                    }
                    HostCall::ProvideRecv { port, n: count } => {
                        slot.nic.host_provide_recv(port, count);
                    }
                    HostCall::Ext(req) => {
                        let flow = slot.ext.flow_of_request(n.0, &req);
                        self.probe
                            .instant_flow(now, n.0, probes::HOST_CALL, "ext", 0, flow);
                        let cost = slot.ext.request_cost(&req, &self.params);
                        slot.nic.host_ext_request(cost, req);
                    }
                    HostCall::ComputeDone { tag } => {
                        self.deliver_or_queue(n, Notice::ComputeDone { tag }, sched);
                        return;
                    }
                }
                self.pump_nic(n, sched);
            }
            Ev::NoticeArrive(n, notice) => {
                self.deliver_or_queue(n, notice, sched);
            }
            Ev::HostWake(n) => {
                self.host_wake(n, sched);
            }
            Ev::LanaiDone(n, work) => {
                self.probe
                    .end(sched.now(), n.0, probes::LANAI, work_name(&work));
                let li = self.local(n);
                let slot = &mut self.slots[li];
                slot.nic.set_now(sched.now());
                slot.nic.lanai_finish(work, &mut slot.ext);
                self.pump_nic(n, sched);
            }
            Ev::PciDone(n, job) => {
                self.probe.end(sched.now(), n.0, probes::PCI_DMA, "dma");
                let li = self.local(n);
                let slot = &mut self.slots[li];
                slot.nic.set_now(sched.now());
                slot.nic.pci_finish(job, &mut slot.ext);
                self.pump_nic(n, sched);
            }
            Ev::TxDrained(n, cb) => {
                self.probe.end(sched.now(), n.0, probes::WIRE_TX, "tx");
                let li = self.local(n);
                let slot = &mut self.slots[li];
                slot.nic.set_now(sched.now());
                slot.nic.tx_drained(cb);
                self.pump_nic(n, sched);
            }
            Ev::PacketArrive(n, pkt) => {
                self.probe.instant_flow(
                    sched.now(),
                    n.0,
                    probes::RX_ARRIVE,
                    "",
                    u64::from(pkt.src.0),
                    flow_of_packet(&pkt),
                );
                let li = self.local(n);
                let slot = &mut self.slots[li];
                slot.nic.set_now(sched.now());
                slot.nic.packet_arrived(pkt);
                self.pump_nic(n, sched);
            }
            Ev::Timer(n, tag) => {
                let label = match &tag {
                    TimerTag::Conn { .. } => "conn",
                    TimerTag::AckFlush { .. } => "ack_flush",
                    TimerTag::Ext(_) => "ext",
                };
                self.probe
                    .instant(sched.now(), n.0, probes::NIC_TIMER, label, 0);
                let li = self.local(n);
                let slot = &mut self.slots[li];
                slot.nic.set_now(sched.now());
                slot.nic.timer_fired(tag, &mut slot.ext);
                self.pump_nic(n, sched);
            }
            Ev::WireRx => {
                while let Some(h) = self.wire.pop_due(sched.now()) {
                    self.rx_deliver(h, sched);
                }
            }
        }
    }
}

impl<X: NicExtension> ShardWorld for Cluster<X> {
    type Event = Ev<X>;
    type Handoff = WireHandoff;

    fn handle(
        &mut self,
        event: Ev<X>,
        sched: &mut Scheduler<Ev<X>>,
        outbox: &mut Outbox<WireHandoff>,
    ) {
        World::handle(self, event, sched);
        for m in self.pending_out.drain(..) {
            outbox.send(m.dst_shard, m.time, m.src, m.seq, m.payload);
        }
    }

    fn absorb(&mut self, m: OutMsg<WireHandoff>, sched: &mut Scheduler<Ev<X>>) {
        sched.at_wire(m.time, Ev::WireRx);
        self.wire.insert(m.payload);
    }
}

fn work_name<X: NicExtension>(w: &Work<X>) -> &'static str {
    match w {
        Work::SendToken { .. } => "send_token",
        Work::RxData(_) => "rx_data",
        Work::RxAck(_) => "rx_ack",
        Work::RxExt(_) => "rx_ext",
        Work::HostReq(_) => "host_req",
        Work::Callback(_) => "callback",
        Work::ExtWork(_) => "ext_work",
    }
}

