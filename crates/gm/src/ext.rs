//! The NIC firmware extension surface.
//!
//! GM-2.0 alpha introduced *myrinet packet descriptors* with per-packet
//! *callback handlers*, which is what made the paper's firmware modification
//! practical: "Using the descriptor and its callback handler, one can easily
//! have a packet queued again for transmission before it is freed."
//!
//! This trait is our model of that surface. The base GM firmware
//! ([`crate::cluster::Cluster`]) handles all unicast traffic itself and
//! delegates to the installed extension for:
//!
//! * host requests it does not recognise (multicast group management, send),
//! * multicast-typed packets ([`PacketKind::Mcast`]/[`McastAck`]),
//! * transmit-complete descriptor callbacks carrying an extension tag,
//! * extension-armed timers, DMA completions and deferred work items.
//!
//! The NIC-based multicast scheme in the `nic-mcast` crate is the one real
//! implementation; [`NoExt`] is the unmodified firmware used for baselines.
//!
//! [`PacketKind::Mcast`]: myrinet::PacketKind::Mcast
//! [`McastAck`]: myrinet::PacketKind::McastAck

use std::fmt::Debug;

use gm_sim::{FlowId, SimDuration};
use myrinet::Packet;

use crate::nic::NicCore;
use crate::params::GmParams;

/// Firmware extension installed into each NIC.
///
/// All hooks run on the (serial) LANai processor: the cluster charges the
/// configured processing cost *before* invoking a hook, so hook bodies apply
/// their effects instantaneously at cost-completion time.
pub trait NicExtension: Sized + Send {
    /// Host-to-NIC request type (e.g. create-group, multicast-send).
    type Request: Debug + Send;
    /// NIC-to-host notification payload (e.g. multicast-complete).
    type Notice: Debug + Clone + Send;
    /// Opaque tag threaded through callbacks, timers, DMA jobs and work
    /// items back to the extension.
    type Tag: Debug + Clone + Send;

    /// LANai cost of processing `req` (charged before [`host_request`]).
    ///
    /// [`host_request`]: NicExtension::host_request
    fn request_cost(&self, req: &Self::Request, params: &GmParams) -> SimDuration {
        let _ = req;
        params.ext_req_proc
    }

    /// A host request arrived at the NIC.
    fn host_request(&mut self, core: &mut NicCore<Self>, req: Self::Request);

    /// A multicast-typed packet arrived from the wire (already charged
    /// `recv_proc`). The base firmware never sees these.
    fn packet(&mut self, core: &mut NicCore<Self>, pkt: Packet);

    /// The transmit DMA engine finished serializing a packet whose
    /// descriptor carried this extension tag (the GM-2 callback mechanism).
    fn tx_callback(&mut self, core: &mut NicCore<Self>, tag: Self::Tag);

    /// A deferred LANai work item the extension enqueued completed.
    fn work(&mut self, core: &mut NicCore<Self>, tag: Self::Tag);

    /// An extension DMA transfer (host<->NIC) completed.
    fn dma_done(&mut self, core: &mut NicCore<Self>, tag: Self::Tag);

    /// An extension timer fired.
    fn timer(&mut self, core: &mut NicCore<Self>, tag: Self::Tag);

    /// Called when NIC resources (SRAM buffers, tokens) were freed while
    /// the extension had signalled it was waiting for some
    /// (see [`NicCore::signal_resource_wait`]). Default: nothing.
    fn resources_available(&mut self, core: &mut NicCore<Self>) {
        let _ = core;
    }

    /// The causal flow a host request belongs to (`node` is the NIC's node).
    /// Extensions with message-scoped requests override this so the LANai
    /// span of request processing joins the message's lineage. Default:
    /// [`FlowId::NONE`].
    fn flow_of_request(&self, node: u32, req: &Self::Request) -> FlowId {
        let _ = (node, req);
        FlowId::NONE
    }

    /// The causal flow an extension tag (work item, DMA job, tx callback)
    /// belongs to. Default: [`FlowId::NONE`].
    fn flow_of_tag(&self, node: u32, tag: &Self::Tag) -> FlowId {
        let _ = (node, tag);
        FlowId::NONE
    }

    /// The causal flow an extension notice delivers (`node` is the
    /// receiving node). A delivery notice returning a real flow is what
    /// anchors the flow's lineage end (see `sim::critical_path`). Default:
    /// [`FlowId::NONE`].
    fn flow_of_notice(&self, node: u32, notice: &Self::Notice) -> FlowId {
        let _ = (node, notice);
        FlowId::NONE
    }
}

/// The unmodified GM firmware: no multicast support.
///
/// Receiving a multicast packet with `NoExt` installed is a protocol error
/// and panics — the host-based baselines must never generate one.
#[derive(Debug, Default, Clone)]
pub struct NoExt;

/// Uninhabited request/notice/tag for [`NoExt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Never {}

impl NicExtension for NoExt {
    type Request = Never;
    type Notice = Never;
    type Tag = Never;

    fn host_request(&mut self, _core: &mut NicCore<Self>, req: Never) {
        match req {}
    }

    fn packet(&mut self, core: &mut NicCore<Self>, pkt: Packet) {
        panic!(
            "unmodified GM firmware on {} received a multicast packet: {:?}",
            core.node(),
            pkt.kind
        );
    }

    fn tx_callback(&mut self, _core: &mut NicCore<Self>, tag: Never) {
        match tag {}
    }

    fn work(&mut self, _core: &mut NicCore<Self>, tag: Never) {
        match tag {}
    }

    fn dma_done(&mut self, _core: &mut NicCore<Self>, tag: Never) {
        match tag {}
    }

    fn timer(&mut self, _core: &mut NicCore<Self>, tag: Never) {
        match tag {}
    }
}
