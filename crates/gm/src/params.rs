//! Calibration constants for the node model.
//!
//! Values are chosen to reproduce the published behaviour of the paper's
//! testbed (16 quad-SMP 700 MHz PIII nodes, 66 MHz/64-bit PCI, LANai 9.1 at
//! 133 MHz, Myrinet-2000): GM short-message one-way latency around 7 µs and
//! host overhead under 1 µs. Every constant can be overridden; the benchmark
//! harness uses the defaults. See DESIGN.md §4 for the rationale table.

use crate::proto::ProtoMutation;
use gm_sim::SimDuration;

/// All timing and resource parameters of a GM node (host + NIC + PCI).
#[derive(Clone, Debug)]
pub struct GmParams {
    // --- PCI bus (shared by SDMA and RDMA engines) ---
    /// Effective PCI bandwidth in bytes/second.
    pub pci_bandwidth: u64,
    /// Fixed startup cost per DMA transfer.
    pub dma_startup: SimDuration,

    // --- LANai processor (serial work loop) ---
    /// Processing a host send request into a send token and per-packet
    /// bookkeeping (the cost the NIC-based multisend avoids repeating).
    pub send_token_proc: SimDuration,
    /// Handling one received data packet (seq check, token match, ack gen).
    pub recv_proc: SimDuration,
    /// Handling one received ack packet.
    pub ack_proc: SimDuration,
    /// A packet-descriptor callback: rewrite the header and requeue the
    /// packet for transmission (the GM-2 mechanism the multisend uses).
    pub callback_proc: SimDuration,
    /// Processing a host extension request (e.g. posting a multicast send).
    pub ext_req_proc: SimDuration,
    /// Per-child cost of installing group-membership entries in the NIC
    /// group table (paid once per group, on creation).
    pub group_install_per_child: SimDuration,
    /// Fixed cost of a group-table update.
    pub group_install_base: SimDuration,

    // --- Host processor ---
    /// Posting a send event to the NIC ("host overhead over GM is < 1 µs").
    pub host_send_post: SimDuration,
    /// Handling a receive-event notification (not counting data copy).
    pub host_recv_event: SimDuration,
    /// Handling a send-completion notification.
    pub host_send_complete: SimDuration,
    /// Posting a receive buffer.
    pub host_provide_recv: SimDuration,
    /// Posting an extension request.
    pub host_ext_post: SimDuration,

    // --- Protocol ---
    /// Go-Back-N retransmission timeout. GM's firmware used resend timers
    /// in the tens of milliseconds; anything tighter than the worst
    /// congested round-trip causes spurious Go-Back-N storms (each timer
    /// also backs off exponentially with the retry count).
    pub timeout: SimDuration,
    /// Maximum unacked packets per unicast connection.
    pub send_window: usize,
    /// Send tokens per port (outstanding host send requests).
    pub send_tokens: usize,
    /// Unicast ack coalescing window: instead of acking every data packet,
    /// the receiving NIC sends one cumulative ack this long after the first
    /// unacknowledged packet (ZERO = ack per packet, GM-2-alpha behaviour).
    /// Multicast acks are never coalesced — they gate the root's completion
    /// notice and the forwarding pipeline's record cleanup.
    pub ack_coalesce: SimDuration,

    // --- NIC SRAM ---
    /// Packet-sized send buffers (gates SDMA-ahead).
    pub send_buffers: usize,
    /// Packet-sized receive buffers (a packet with no free buffer is
    /// dropped, as in GM, and recovered by retransmission).
    pub recv_buffers: usize,

    // --- Verification ---
    /// Deliberately seeded protocol bug for model↔implementation conformance
    /// tests (see `gm::proto` and `crates/simcheck`). Always
    /// [`ProtoMutation::None`] outside those tests.
    pub mutation: ProtoMutation,
}

impl Default for GmParams {
    fn default() -> Self {
        GmParams {
            pci_bandwidth: 450_000_000,
            dma_startup: SimDuration::from_nanos(600),
            send_token_proc: SimDuration::from_nanos(3_200),
            recv_proc: SimDuration::from_nanos(1_000),
            ack_proc: SimDuration::from_nanos(450),
            callback_proc: SimDuration::from_nanos(450),
            ext_req_proc: SimDuration::from_nanos(3_200),
            group_install_per_child: SimDuration::from_nanos(250),
            group_install_base: SimDuration::from_nanos(2_000),
            host_send_post: SimDuration::from_nanos(500),
            host_recv_event: SimDuration::from_nanos(650),
            host_send_complete: SimDuration::from_nanos(300),
            host_provide_recv: SimDuration::from_nanos(150),
            host_ext_post: SimDuration::from_nanos(400),
            timeout: SimDuration::from_millis(20),
            send_window: 64,
            send_tokens: 64,
            ack_coalesce: SimDuration::ZERO,
            send_buffers: 4,
            recv_buffers: 64,
            mutation: ProtoMutation::None,
        }
    }
}

impl GmParams {
    /// DMA duration for `bytes` over the PCI bus, including startup.
    pub fn dma_time(&self, bytes: u64) -> SimDuration {
        self.dma_startup + SimDuration::for_bytes(bytes, self.pci_bandwidth)
    }
}

/// MPICH-GM's largest eager-mode message; broadcasts above this fall back to
/// the host-based path (paper §6.2).
pub const EAGER_LIMIT: usize = 16_287;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = GmParams::default();
        assert!(p.host_send_post < SimDuration::from_micros(1), "host overhead must be sub-microsecond");
        assert!(p.send_token_proc > p.callback_proc, "multisend must save processing");
        assert!(p.send_buffers >= 1 && p.recv_buffers >= 1);
    }

    #[test]
    fn dma_time_scales() {
        let p = GmParams::default();
        let small = p.dma_time(8);
        let large = p.dma_time(4096);
        assert!(large > small);
        assert!(small >= p.dma_startup);
        // 4096B at 450MB/s is ~9.1us plus startup.
        let expect_ns = 600 + (4096f64 * 1e9 / 450e6).ceil() as u64;
        assert_eq!(large.as_nanos(), expect_ns);
    }
}
