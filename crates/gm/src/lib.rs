//! `gm` — a GM-2-like user-level protocol over the simulated Myrinet fabric.
//!
//! This crate models the node: a host processor running applications against
//! the GM library API, and a LANai-like NIC running the GM firmware —
//! send/receive tokens, registered-memory DMA, per-connection Go-Back-N
//! reliability with acks and timeout/retransmission, and GM-2's packet
//! descriptors with callback handlers.
//!
//! The NIC-based multicast of the paper is *not* here: it is an extension
//! (see [`NicExtension`]) implemented in the `nic-mcast` crate, exactly as
//! the original work was a modification layered on GM-2.0 alpha1's
//! descriptor/callback mechanism.
//!
//! # Quick start
//!
//! ```
//! use bytes::Bytes;
//! use gm::{Cluster, GmParams, HostApp, HostCtx, NoExt, Notice};
//! use gm_sim::SimTime;
//! use myrinet::{Fabric, NodeId, PortId, Topology};
//!
//! // A sender app and an echoing receiver app.
//! struct Sender;
//! impl HostApp<NoExt> for Sender {
//!     fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
//!         ctx.send(NodeId(1), PortId(0), PortId(0), Bytes::from_static(b"hi"), 7);
//!     }
//!     fn on_notice(&mut self, n: Notice<gm::Never>, _ctx: &mut HostCtx<'_, NoExt>) {
//!         if let Notice::SendComplete { tag, .. } = n {
//!             assert_eq!(tag, 7);
//!         }
//!     }
//! }
//! struct Receiver;
//! impl HostApp<NoExt> for Receiver {
//!     fn on_start(&mut self, ctx: &mut HostCtx<'_, NoExt>) {
//!         ctx.provide_recv(PortId(0), 1);
//!     }
//!     fn on_notice(&mut self, n: Notice<gm::Never>, _ctx: &mut HostCtx<'_, NoExt>) {
//!         if let Notice::Recv { data, .. } = n {
//!             assert_eq!(&data[..], b"hi");
//!         }
//!     }
//! }
//!
//! let fabric = Fabric::new(Topology::for_nodes(2), 1);
//! let mut cluster = Cluster::new(GmParams::default(), fabric, |_| NoExt);
//! cluster.set_app(NodeId(0), Box::new(Sender));
//! cluster.set_app(NodeId(1), Box::new(Receiver));
//! let mut eng = cluster.into_engine();
//! eng.run_to_idle();
//! assert!(eng.now() > SimTime::ZERO);
//! ```

#![warn(missing_docs)]

mod cluster;
mod ext;
mod host;
mod nic;
mod params;
pub mod proto;

pub use cluster::{probes, Cluster, Ev};
pub use ext::{Never, NicExtension, NoExt};
pub use host::{Host, HostApp, HostCall, HostCtx, IdleApp};
pub use nic::{
    flow_of_packet, flow_tag, Cb, ConnKey, NicCore, Notice, PciJob, SendArgs, TimerTag, TxJob,
    Work,
};
pub use params::{GmParams, EAGER_LIMIT};
pub use proto::ProtoMutation;
