//! The host-processor model and the application interface.
//!
//! A host is a serially-busy CPU: every GM library call charges overhead, a
//! `compute` block occupies it for a stretch, and NIC notices are only
//! delivered when it is free. Applications drive workloads by implementing
//! [`HostApp`]: a state machine poked by notices, issuing calls through
//! [`HostCtx`].

use std::collections::VecDeque;

use bytes::Bytes;
use gm_sim::probe::{ProbeId, ProbeSink};
use gm_sim::{FlowId, SimDuration, SimTime};
use myrinet::{NodeId, PortId};

use crate::ext::NicExtension;
use crate::nic::{Notice, SendArgs};
use crate::params::GmParams;

/// Host-to-NIC calls produced by applications (scheduled to arrive at the
/// NIC once the host overhead has been paid).
#[derive(Debug)]
pub enum HostCall<R> {
    /// A unicast send request.
    Send(SendArgs),
    /// Prepost `1` receive buffer(s) on a port.
    ProvideRecv {
        /// The port to credit.
        port: PortId,
        /// Number of buffers.
        n: usize,
    },
    /// An extension request (multicast operations).
    Ext(R),
    /// Host-internal: a compute block finished.
    ComputeDone {
        /// Tag passed to `compute`.
        tag: u64,
    },
}

/// Per-node host state.
pub struct Host<X: NicExtension> {
    node: NodeId,
    /// The host CPU is occupied until this instant.
    free_at: SimTime,
    /// Notices waiting for the CPU to free up.
    pub(crate) pending: VecDeque<Notice<X::Notice>>,
    /// Whether a wake event is already scheduled.
    pub(crate) wake_scheduled: bool,
    /// Calls produced by the app, to be scheduled by the cluster.
    pub(crate) calls: Vec<(SimTime, HostCall<X::Request>)>,
    /// Total CPU time charged (API overheads + compute).
    busy_total: SimDuration,
}

impl<X: NicExtension> Host<X> {
    /// A fresh, idle host.
    pub fn new(node: NodeId) -> Self {
        Host {
            node,
            free_at: SimTime::ZERO,
            pending: VecDeque::new(),
            wake_scheduled: false,
            calls: Vec::new(),
            busy_total: SimDuration::ZERO,
        }
    }

    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The instant the CPU becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total CPU time charged so far.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Charge the CPU for `cost` starting no earlier than `now`; returns the
    /// completion instant.
    pub(crate) fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.free_at.max(now);
        self.free_at = start + cost;
        self.busy_total += cost;
        self.free_at
    }
}

/// The application interface handed to [`HostApp`] callbacks.
pub struct HostCtx<'a, X: NicExtension> {
    host: &'a mut Host<X>,
    params: &'a GmParams,
    probe: &'a mut ProbeSink,
    now: SimTime,
}

impl<'a, X: NicExtension> HostCtx<'a, X> {
    /// Internal constructor used by the cluster.
    pub(crate) fn new(
        host: &'a mut Host<X>,
        params: &'a GmParams,
        probe: &'a mut ProbeSink,
        now: SimTime,
    ) -> Self {
        HostCtx {
            host,
            params,
            probe,
            now,
        }
    }

    /// Record an instant probe event on this node's timeline. Applications
    /// use this to mark their own milestones (e.g. MPI operations) on the
    /// `App` track; a no-op when probes are disabled.
    pub fn mark(&mut self, id: ProbeId, label: &'static str, a: u64) {
        let node = self.host.node().0;
        self.probe.instant(self.now, node, id, label, a);
    }

    /// Like [`HostCtx::mark`], but tagging the record with the causal flow
    /// of the message the milestone concerns (see `sim::flow`).
    pub fn mark_flow(&mut self, id: ProbeId, label: &'static str, a: u64, flow: FlowId) {
        let node = self.host.node().0;
        self.probe.instant_flow(self.now, node, id, label, a, flow);
    }

    /// The event time this callback was invoked at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host CPU's current horizon: when all charges issued so far (in
    /// this and earlier callbacks) will have retired. MPI-level CPU-time
    /// accounting uses this as "the time at which the call returns".
    pub fn cpu_now(&self) -> SimTime {
        self.host.free_at.max(self.now)
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.host.node
    }

    /// Post a unicast send of `data` to `(dst, dst_port)` from `src_port`.
    /// Completion arrives as [`Notice::SendComplete`] carrying `tag`.
    pub fn send(&mut self, dst: NodeId, dst_port: PortId, src_port: PortId, data: Bytes, tag: u64) {
        let at = self.host.charge(self.now, self.params.host_send_post);
        self.host.calls.push((
            at,
            HostCall::Send(SendArgs {
                dst,
                dst_port,
                src_port,
                data,
                tag,
            }),
        ));
    }

    /// Prepost `n` receive buffers on `port`.
    pub fn provide_recv(&mut self, port: PortId, n: usize) {
        let at = self.host.charge(self.now, self.params.host_provide_recv);
        self.host.calls.push((at, HostCall::ProvideRecv { port, n }));
    }

    /// Post an extension request (multicast group create / send ...).
    pub fn ext(&mut self, req: X::Request) {
        let at = self.host.charge(self.now, self.params.host_ext_post);
        self.host.calls.push((at, HostCall::Ext(req)));
    }

    /// Occupy the CPU for `dur`; [`Notice::ComputeDone`] with `tag` is
    /// delivered when it ends.
    pub fn compute(&mut self, dur: SimDuration, tag: u64) {
        let at = self.host.charge(self.now, dur);
        self.host.calls.push((at, HostCall::ComputeDone { tag }));
    }
}

/// An event-driven host application (workload driver).
///
/// Apps must prepost receive buffers before peers send to them, exactly as
/// GM clients must: "The responsibility of making receive tokens available
/// ... is left to client programs."
pub trait HostApp<X: NicExtension> {
    /// Called once at the node's start time.
    fn on_start(&mut self, ctx: &mut HostCtx<'_, X>);

    /// Called for every notice delivered to this host.
    fn on_notice(&mut self, notice: Notice<X::Notice>, ctx: &mut HostCtx<'_, X>);
}

/// A do-nothing application (passive nodes).
pub struct IdleApp;

impl<X: NicExtension> HostApp<X> for IdleApp {
    fn on_start(&mut self, _ctx: &mut HostCtx<'_, X>) {}
    fn on_notice(&mut self, _notice: Notice<X::Notice>, _ctx: &mut HostCtx<'_, X>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::NoExt;

    #[test]
    fn charge_serializes_and_accumulates() {
        let mut h: Host<NoExt> = Host::new(NodeId(0));
        let t1 = h.charge(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        assert_eq!(t1.as_nanos(), 150);
        // Second charge at an earlier `now` still queues behind the first.
        let t2 = h.charge(SimTime::from_nanos(120), SimDuration::from_nanos(30));
        assert_eq!(t2.as_nanos(), 180);
        assert_eq!(h.busy_total().as_nanos(), 80);
    }

    #[test]
    fn ctx_calls_emit_in_charge_order() {
        let params = GmParams::default();
        let mut h: Host<NoExt> = Host::new(NodeId(0));
        let mut probe = ProbeSink::disabled();
        let mut ctx = HostCtx::new(&mut h, &params, &mut probe, SimTime::ZERO);
        ctx.provide_recv(PortId(0), 2);
        ctx.send(NodeId(1), PortId(0), PortId(0), Bytes::from_static(b"x"), 7);
        assert_eq!(h.calls.len(), 2);
        assert!(h.calls[0].0 < h.calls[1].0, "calls pay serial host overhead");
        assert!(matches!(h.calls[0].1, HostCall::ProvideRecv { .. }));
        assert!(matches!(h.calls[1].1, HostCall::Send(_)));
    }

    #[test]
    fn compute_blocks_cpu() {
        let params = GmParams::default();
        let mut h: Host<NoExt> = Host::new(NodeId(0));
        let mut probe = ProbeSink::disabled();
        let mut ctx = HostCtx::new(&mut h, &params, &mut probe, SimTime::ZERO);
        ctx.compute(SimDuration::from_micros(10), 1);
        ctx.send(NodeId(1), PortId(0), PortId(0), Bytes::new(), 2);
        // The send's arrival time is after the compute block.
        assert!(h.calls[1].0 > SimTime::from_nanos(10_000));
    }
}
