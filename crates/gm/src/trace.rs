//! Event tracing, used to regenerate the paper's Figure 2 timing diagrams
//! (host-based unicasts vs NIC-based multisend vs NIC-based forwarding).

use gm_sim::SimTime;
use myrinet::NodeId;

/// One recorded protocol step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which node it happened on.
    pub node: NodeId,
    /// What happened.
    pub what: TraceKind,
}

/// The protocol steps worth plotting on a timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A host call reached the NIC (doorbell).
    HostCall(&'static str),
    /// The LANai started a work item.
    LanaiStart(&'static str),
    /// The LANai finished a work item.
    LanaiEnd(&'static str),
    /// A packet started serializing onto the wire.
    TxStart {
        /// Destination node.
        dst: NodeId,
        /// Wire bytes.
        bytes: u64,
    },
    /// The transmit engine drained (wire free).
    TxEnd,
    /// A packet's tail arrived from the wire.
    RxArrive {
        /// Source node.
        src: NodeId,
    },
    /// A PCI DMA transfer started.
    DmaStart {
        /// Transfer duration in nanoseconds (startup + bytes/bandwidth).
        ns: u64,
    },
    /// A PCI DMA transfer completed.
    DmaEnd,
    /// A notice was delivered to the host application.
    Notice(&'static str),
}

/// A bounded in-memory trace (disabled by default: zero overhead beyond a
/// branch).
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stop recording (events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event if enabled.
    #[inline]
    pub fn record(&mut self, time: SimTime, node: NodeId, what: TraceKind) {
        if self.enabled {
            self.events.push(TraceEvent { time, node, what });
        }
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, NodeId(0), TraceKind::TxEnd);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.record(SimTime::from_nanos(1), NodeId(0), TraceKind::TxEnd);
        t.record(
            SimTime::from_nanos(2),
            NodeId(1),
            TraceKind::RxArrive { src: NodeId(0) },
        );
        assert_eq!(t.events().len(), 2);
        assert!(t.events()[0].time < t.events()[1].time);
        t.disable();
        t.record(SimTime::from_nanos(3), NodeId(0), TraceKind::TxEnd);
        assert_eq!(t.events().len(), 2);
        t.clear();
        assert!(t.events().is_empty());
    }
}
