//! `gm::proto` — the pure protocol core, shared by the simulator and the
//! `simcheck` model checker.
//!
//! Everything in this module is a side-effect-free state machine fragment:
//! plain data plus transition functions over it. No clocks, no RNG, no
//! probes, no global state — the `simlint` rule `state-pure` enforces that
//! mechanically. The payoff is that `gm::nic` and the multicast firmware in
//! `nic-mcast` execute *these exact functions* inside the discrete-event
//! simulator, while `crates/simcheck` explores the same functions
//! exhaustively over all interleavings of small configurations. A checker
//! counterexample is therefore always a real trace of the shipped code, not
//! of a hand-maintained re-model.
//!
//! The pieces, mapped to the paper's protocol (§5):
//!
//! * [`Pool`] — counted NIC resources: send tokens and SRAM packet buffers.
//!   Conservation (`free + in_use == capacity`, no double-free) is both a
//!   checker invariant and a `debug_assert!` at every grant/release site.
//! * [`Credits`] — host-granted receive tokens (grow-only grants, bounded
//!   consumption).
//! * [`GbnTx`] / [`GbnRx`] — the Go-Back-N sender/receiver window: sequence
//!   assignment, window admission, in-order acceptance, and the
//!   cumulative-ack release horizon.
//! * [`ChildAcks`] — the one-to-many generalization: the per-child array of
//!   acknowledged sequence numbers whose minimum gates record release.
//! * [`next_replica`] / [`fwd_buf_refs`] — the tree-forwarding step: replica
//!   chain advancement and receive-buffer reference accounting.
//! * [`ProtoMutation`] — deliberately seeded bugs for model↔implementation
//!   conformance tests. A mutation changes the shared transition function,
//!   so enabling one breaks the checker *and* the simulator identically.

/// A deliberately seeded protocol bug, threaded through [`release_horizon`]
/// so the checker and the simulator misbehave the same way. `None` in all
/// production configurations; conformance tests enable a specific mutation,
/// let `simcheck` find the counterexample, and replay it through the real
/// simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoMutation {
    /// The correct protocol.
    #[default]
    None,
    /// Cumulative-ack release slides one record too far: a packet is freed
    /// before every receiver acknowledged it, so a loss of that packet can
    /// never be repaired by retransmission.
    SenderWindowOffByOne,
}

impl ProtoMutation {
    /// Parse a CLI spelling (`none`, `sender-window-off-by-one`).
    pub fn parse(s: &str) -> Option<ProtoMutation> {
        match s {
            "none" => Some(ProtoMutation::None),
            "sender-window-off-by-one" => Some(ProtoMutation::SenderWindowOffByOne),
            _ => None,
        }
    }

    /// The CLI spelling accepted by [`ProtoMutation::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ProtoMutation::None => "none",
            ProtoMutation::SenderWindowOffByOne => "sender-window-off-by-one",
        }
    }
}

/// A counted pool of identical NIC resources (send tokens, SRAM send
/// buffers, SRAM receive buffers).
///
/// The conservation invariant — a resource is never freed that was not
/// taken, so `free <= capacity` and `free + in_use == capacity` always —
/// is asserted on every release in debug builds and checked globally by
/// `simcheck`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pool {
    capacity: usize,
    free: usize,
}

impl Pool {
    /// A full pool of `capacity` resources.
    pub fn new(capacity: usize) -> Pool {
        Pool {
            capacity,
            free: capacity,
        }
    }

    /// Claim one resource. Returns `false` (without changing state) when
    /// the pool is exhausted.
    pub fn try_take(&mut self) -> bool {
        if self.free > 0 {
            self.free -= 1;
            true
        } else {
            false
        }
    }

    /// Release one resource back to the pool.
    ///
    /// Releasing more than were taken is a protocol bug (a double-free of a
    /// token or buffer); debug builds abort on it, and the `simcheck`
    /// token-conservation invariant reports it as a violation.
    pub fn put(&mut self) {
        debug_assert!(
            self.free < self.capacity,
            "token conservation: released a resource that was never taken \
             (free={} capacity={})",
            self.free,
            self.capacity
        );
        self.free = (self.free + 1).min(self.capacity);
    }

    /// Resources currently available.
    pub fn free(&self) -> usize {
        self.free
    }

    /// Resources currently claimed.
    pub fn in_use(&self) -> usize {
        self.capacity - self.free
    }

    /// Total pool size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The conservation invariant: never more free than the capacity.
    pub fn is_conserved(&self) -> bool {
        self.free <= self.capacity
    }
}

/// Host-granted receive credits for one port.
///
/// Unlike a [`Pool`], grants arrive over time (`gm_provide_receive_buffer`),
/// so the bound is the grant count, not a fixed capacity: conservation means
/// `consumed <= granted`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Credits {
    granted: u64,
    consumed: u64,
}

impl Credits {
    /// A counter with `n` initial credits.
    pub fn new(n: u64) -> Credits {
        Credits {
            granted: n,
            consumed: 0,
        }
    }

    /// The host posted `n` more receive buffers.
    pub fn grant(&mut self, n: u64) {
        self.granted += n;
    }

    /// Consume one credit; `false` (and no state change) when none remain.
    pub fn try_consume(&mut self) -> bool {
        if self.consumed < self.granted {
            self.consumed += 1;
            true
        } else {
            false
        }
    }

    /// Credits currently available.
    pub fn available(&self) -> u64 {
        self.granted - self.consumed
    }

    /// Total credits ever granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Total credits ever consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The conservation invariant: consumption never exceeds grants.
    pub fn is_conserved(&self) -> bool {
        self.consumed <= self.granted
    }
}

/// Go-Back-N sender state: the next sequence number to assign, plus the
/// window-admission and release-horizon decision functions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GbnTx {
    next_seq: u64,
}

impl GbnTx {
    /// Window admission: may another packet record be created while
    /// `outstanding` records are unacknowledged?
    pub fn can_admit(&self, outstanding: usize, window: usize) -> bool {
        outstanding < window
    }

    /// Assign the next sequence number.
    pub fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// The next sequence number that would be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// The exclusive upper bound of sequence numbers a cumulative acknowledgment
/// releases: given that packets `0..acked_count` are acknowledged by every
/// receiver, records with `seq < release_horizon(acked_count, m)` may be
/// freed.
///
/// For a unicast ack carrying sequence `s`, `acked_count` is `s + 1`; for
/// the one-to-many protocol it is [`ChildAcks::min_acked`]. The correct
/// horizon is `acked_count` itself; the
/// [`SenderWindowOffByOne`](ProtoMutation::SenderWindowOffByOne) mutation
/// frees one record too many, which is exactly the kind of bug the
/// `simcheck` exactly-once and deadlock invariants exist to catch.
pub fn release_horizon(acked_count: u64, mutation: ProtoMutation) -> u64 {
    match mutation {
        ProtoMutation::None => acked_count,
        ProtoMutation::SenderWindowOffByOne => acked_count.saturating_add(1),
    }
}

/// The receiver's verdict on an arriving data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxVerdict {
    /// The packet is the next in sequence: accept it (the caller then calls
    /// [`GbnRx::accept`] once resources are secured).
    Accept,
    /// Out of order under Go-Back-N: drop the packet and, if anything was
    /// received in order before, immediately re-acknowledge it so the
    /// sender's window can advance even if the original ack was lost.
    OutOfOrder {
        /// The cumulative sequence to re-ack, if any packet was accepted.
        reack: Option<u64>,
    },
}

/// Go-Back-N receiver state: the next expected sequence number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GbnRx {
    expected: u64,
}

impl GbnRx {
    /// Classify an arriving sequence number. Pure: acceptance is committed
    /// separately by [`GbnRx::accept`], because the real receive path may
    /// still drop an in-order packet for lack of a receive token or SRAM
    /// buffer (in which case the sender's timeout recovers it).
    pub fn verdict(&self, seq: u64) -> RxVerdict {
        if seq == self.expected {
            RxVerdict::Accept
        } else {
            RxVerdict::OutOfOrder {
                reack: self.expected.checked_sub(1),
            }
        }
    }

    /// Commit the in-order packet: advance the window.
    pub fn accept(&mut self) {
        self.expected += 1;
    }

    /// The next sequence number this receiver will accept.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// The cumulative acknowledgment to send: the last in-order sequence
    /// accepted, or `None` if nothing has been.
    pub fn cum_ack(&self) -> Option<u64> {
        self.expected.checked_sub(1)
    }
}

/// Per-child acknowledged-sequence array — the paper's third piece of
/// sequence state (§5): "an array of acknowledged sequence numbers, one per
/// child". Entries hold *counts* (acked seq + 1) so zero means "nothing
/// acknowledged".
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChildAcks {
    acked: Vec<u64>,
}

impl ChildAcks {
    /// All-zero array for `n` children.
    pub fn new(n: usize) -> ChildAcks {
        ChildAcks { acked: vec![0; n] }
    }

    /// A cumulative ack for `seq` arrived from child `ci`. Monotonic:
    /// duplicate or stale acks never regress the count. Returns `true` if
    /// the count advanced.
    pub fn on_ack(&mut self, ci: usize, seq: u64) -> bool {
        let new = seq + 1;
        if new > self.acked[ci] {
            self.acked[ci] = new;
            true
        } else {
            false
        }
    }

    /// Lowest per-child acked count: packets below this are globally
    /// acknowledged and their records may be released. `u64::MAX` with no
    /// children (a leaf holds nothing).
    pub fn min_acked(&self) -> u64 {
        self.acked.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Child `ci`'s acked count.
    pub fn count(&self, ci: usize) -> u64 {
        self.acked[ci]
    }

    /// Does child `ci` still need packet `seq` (not yet acknowledged)?
    /// This is the selective-retransmission test: on timeout, a packet is
    /// resent "only for the destinations which have not acknowledged".
    pub fn needs(&self, ci: usize, seq: u64) -> bool {
        self.acked[ci] <= seq
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.acked.len()
    }

    /// True for a leaf (no children to track).
    pub fn is_empty(&self) -> bool {
        self.acked.is_empty()
    }
}

/// Tree-forwarding step: after feeding child index `idx` of `children`,
/// which child does the replica chain feed next? `None` ends the chain
/// (the packet's buffer reference is released).
pub fn next_replica(children: usize, idx: usize) -> Option<usize> {
    let next = idx + 1;
    if next < children {
        Some(next)
    } else {
        None
    }
}

/// References a freshly accepted multicast packet holds on its SRAM receive
/// buffer: one for the RDMA upload to host memory, one for the forwarding
/// chain if this node has children, and — only under the `HoldSram`
/// ablation the paper rejects — one held until every child acknowledges.
pub fn fwd_buf_refs(has_children: bool, hold_sram: bool) -> u8 {
    1 + u8::from(has_children) + u8::from(has_children && hold_sram)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_conserves() {
        let mut p = Pool::new(2);
        assert!(p.try_take());
        assert!(p.try_take());
        assert!(!p.try_take(), "exhausted");
        assert_eq!(p.in_use(), 2);
        p.put();
        assert_eq!(p.free(), 1);
        assert!(p.is_conserved());
    }

    #[test]
    #[should_panic(expected = "token conservation")]
    #[cfg(debug_assertions)]
    fn pool_double_free_asserts() {
        let mut p = Pool::new(1);
        p.put();
    }

    #[test]
    fn credits_grow_and_consume() {
        let mut c = Credits::new(1);
        assert!(c.try_consume());
        assert!(!c.try_consume());
        c.grant(2);
        assert_eq!(c.available(), 2);
        assert!(c.try_consume());
        assert!(c.is_conserved());
    }

    #[test]
    fn gbn_tx_window_and_seqs() {
        let mut tx = GbnTx::default();
        assert!(tx.can_admit(0, 2));
        assert!(tx.can_admit(1, 2));
        assert!(!tx.can_admit(2, 2));
        assert_eq!(tx.assign_seq(), 0);
        assert_eq!(tx.assign_seq(), 1);
        assert_eq!(tx.next_seq(), 2);
    }

    #[test]
    fn gbn_rx_in_order_and_reack() {
        let mut rx = GbnRx::default();
        assert_eq!(rx.verdict(1), RxVerdict::OutOfOrder { reack: None });
        assert_eq!(rx.verdict(0), RxVerdict::Accept);
        rx.accept();
        assert_eq!(rx.cum_ack(), Some(0));
        // A duplicate of 0 is out of order now and re-acks 0.
        assert_eq!(rx.verdict(0), RxVerdict::OutOfOrder { reack: Some(0) });
    }

    #[test]
    fn release_horizon_mutation_is_off_by_one() {
        assert_eq!(release_horizon(3, ProtoMutation::None), 3);
        assert_eq!(
            release_horizon(3, ProtoMutation::SenderWindowOffByOne),
            4
        );
    }

    #[test]
    fn child_acks_min_and_needs() {
        let mut a = ChildAcks::new(3);
        assert_eq!(a.min_acked(), 0);
        assert!(a.on_ack(0, 2)); // counts: [3,0,0]
        assert!(a.on_ack(1, 0)); // counts: [3,1,0]
        assert!(!a.on_ack(1, 0), "duplicate ack does not advance");
        assert_eq!(a.min_acked(), 0);
        assert!(a.on_ack(2, 1)); // counts: [3,1,2]
        assert_eq!(a.min_acked(), 1);
        assert!(a.needs(1, 1));
        assert!(!a.needs(0, 1));
        assert_eq!(ChildAcks::new(0).min_acked(), u64::MAX);
    }

    #[test]
    fn replica_chain_steps_through_children() {
        assert_eq!(next_replica(3, 0), Some(1));
        assert_eq!(next_replica(3, 2), None);
        assert_eq!(next_replica(1, 0), None);
    }

    #[test]
    fn buf_refs_match_forwarding_roles() {
        assert_eq!(fwd_buf_refs(false, false), 1, "leaf: RDMA only");
        assert_eq!(fwd_buf_refs(true, false), 2, "forwarder: RDMA + chain");
        assert_eq!(fwd_buf_refs(true, true), 3, "HoldSram ablation");
        assert_eq!(fwd_buf_refs(false, true), 1, "leaf ignores HoldSram");
    }

    #[test]
    fn mutation_parses_round_trip() {
        for m in [ProtoMutation::None, ProtoMutation::SenderWindowOffByOne] {
            assert_eq!(ProtoMutation::parse(m.name()), Some(m));
        }
        assert_eq!(ProtoMutation::parse("bogus"), None);
    }
}
