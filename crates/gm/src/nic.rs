//! The NIC model: a LANai-like serial firmware processor, SDMA/RDMA engines
//! on a shared PCI bus, limited SRAM packet buffers, send/receive tokens, and
//! the GM Go-Back-N protocol state machines.
//!
//! [`NicCore`] holds all NIC state and exposes two surfaces:
//!
//! * **Cluster surface** — `host_*`, `packet_arrived`, `lanai_*`, `pci_*`,
//!   `tx_*`, `timer_fired`, and the `drain_*` intent queues. The cluster
//!   world calls these on events and converts drained intents into new
//!   scheduled events. The NIC never touches the scheduler directly, which
//!   keeps it unit-testable without an engine.
//! * **Extension surface** — buffer/token/DMA/timer/notify primitives used
//!   by [`NicExtension`] implementations (the multicast firmware).

use std::collections::{BTreeMap, VecDeque};

use bytes::{Bytes, BytesMut};
use gm_sim::{Counters, FlowId, SimDuration, SimTime};
use myrinet::{NodeId, Packet, PacketKind, PortId, MTU};

use crate::ext::NicExtension;
use crate::params::GmParams;
use crate::proto::{self, Credits, GbnRx, GbnTx, Pool, RxVerdict};

/// Identifies one direction of a GM connection: the remote node plus the
/// (sender port, receiver port) pair.
///
/// Note: acknowledgments carry only the receiver's port, so a node must not
/// open two connections to the same `(peer, dst_port)` from different
/// source ports (GM's subport pairing makes the same assumption; every
/// workload here uses symmetric `src_port == dst_port`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnKey {
    /// The remote node.
    pub peer: NodeId,
    /// Port on the sending node.
    pub src_port: PortId,
    /// Port on the receiving node.
    pub dst_port: PortId,
}

/// Arguments of a host send call (`gm_send_with_callback` analogue).
#[derive(Clone, Debug)]
pub struct SendArgs {
    /// Destination node.
    pub dst: NodeId,
    /// Destination port.
    pub dst_port: PortId,
    /// Sending port.
    pub src_port: PortId,
    /// Message payload (lives in registered host memory).
    pub data: Bytes,
    /// Opaque tag returned in the completion notice and delivered with the
    /// message.
    pub tag: u64,
}

/// NIC-to-host notifications.
#[derive(Clone, Debug)]
pub enum Notice<N> {
    /// A send token completed (all packets acknowledged).
    SendComplete {
        /// The sending port.
        port: PortId,
        /// The tag from [`SendArgs`].
        tag: u64,
    },
    /// A complete message arrived and was copied to host memory.
    Recv {
        /// The receiving port.
        port: PortId,
        /// Sending node.
        src: NodeId,
        /// Sending port.
        src_port: PortId,
        /// Sender's tag.
        tag: u64,
        /// Message contents.
        data: Bytes,
    },
    /// A host compute block finished (host-internal; never from the NIC).
    ComputeDone {
        /// The tag passed to `compute`.
        tag: u64,
    },
    /// An extension notification.
    Ext(N),
}

/// Transmit-complete descriptor callback tags.
#[derive(Clone, Debug)]
pub enum Cb<T> {
    /// No callback.
    None,
    /// Base protocol: free the send buffer and stamp the send record.
    Base {
        /// Connection of the record.
        conn: ConnKey,
        /// Sequence number of the record.
        seq: u64,
    },
    /// Base protocol: control packet (no buffer), nothing to do.
    Control,
    /// Extension callback (the GM-2 descriptor callback mechanism).
    Ext(T),
}

/// Timer identifiers.
#[derive(Clone, Debug)]
pub enum TimerTag<T> {
    /// Base per-connection retransmission timer (with arm generation).
    Conn {
        /// Connection the timer guards.
        conn: ConnKey,
        /// Generation at arm time; stale generations are ignored.
        gen: u64,
    },
    /// Coalesced-ack flush timer for a receive connection.
    AckFlush {
        /// Receive connection to ack.
        conn: ConnKey,
    },
    /// Extension timer.
    Ext(T),
}

/// A queued LANai work item, paired with its processing cost at enqueue.
#[derive(Debug)]
pub enum Work<X: NicExtension> {
    /// Turn a host send event into a send token and start packetizing.
    SendToken {
        /// Token to activate.
        token: u64,
    },
    /// Process a received unicast data packet.
    RxData(Packet),
    /// Process a received unicast ack.
    RxAck(Packet),
    /// Process a received multicast-typed packet (goes to the extension).
    RxExt(Packet),
    /// Process a host extension request.
    HostReq(X::Request),
    /// Run an extension transmit-complete callback.
    Callback(X::Tag),
    /// Run a deferred extension work item.
    ExtWork(X::Tag),
}

/// A PCI DMA job, paired with its byte count at enqueue.
#[derive(Debug)]
pub enum PciJob<X: NicExtension> {
    /// Download one packet of a message from host memory (first send).
    Sdma {
        /// Connection owning the record.
        conn: ConnKey,
        /// Record sequence.
        seq: u64,
    },
    /// Re-download a packet for Go-Back-N retransmission.
    Retx {
        /// Connection owning the record.
        conn: ConnKey,
        /// Record sequence.
        seq: u64,
    },
    /// Upload received packet data to the host receive buffer.
    Rdma {
        /// Receive connection.
        conn: ConnKey,
        /// Which in-progress message the data belongs to.
        msg_uid: u64,
        /// Payload bytes uploaded.
        bytes: u32,
    },
    /// Extension-owned transfer.
    Ext(X::Tag),
}

/// A packet ready for the transmit DMA engine.
#[derive(Debug)]
pub struct TxJob<T> {
    /// The packet to put on the wire.
    pub pkt: Packet,
    /// Descriptor callback to run when serialization completes.
    pub cb: Cb<T>,
}

/// Fold a 64-bit GM message tag onto the 31-bit [`FlowId`] tag space.
///
/// The top bit of a message tag marks NIC-level collective releases (see
/// `BARRIER_TAG_BIT` in the multicast firmware); a plain truncation would
/// alias round `r` with data tag `r`. Mapping bit 63 onto bit 30 keeps
/// control rounds and data iterations distinct flows. Every flow-from-tag
/// derivation must go through this one function so all layers agree.
pub fn flow_tag(tag: u64) -> u64 {
    (tag & ((1 << 30) - 1)) | ((tag >> 63) << 30)
}

/// The causal flow a wire packet belongs to (see `gm_sim::flow`).
///
/// Data packets carry `(src, tag, dst)`; multicast packets carry the root as
/// origin so every hop of a forwarded message shares one flow per
/// destination. Acks and control packets are not part of any delivery
/// lineage.
pub fn flow_of_packet(pkt: &Packet) -> FlowId {
    match &pkt.kind {
        PacketKind::Data { tag, .. } => FlowId::new(pkt.src.0, flow_tag(*tag), pkt.dst.0),
        PacketKind::Mcast { tag, root, .. } => FlowId::new(root.0, flow_tag(*tag), pkt.dst.0),
        PacketKind::Ack { .. } | PacketKind::McastAck { .. } | PacketKind::Ctl { .. } => {
            FlowId::NONE
        }
    }
}

// ---------------------------------------------------------------------------
// Internal protocol state
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SendRecord {
    seq: u64,
    token: u64,
    offset: u32,
    payload: Bytes,
    /// Set when the packet's serialization onto the wire completed; `None`
    /// while the packet is still queued for SDMA/transmit (or re-queued for
    /// retransmission).
    sent_at: Option<SimTime>,
    retries: u32,
}

#[derive(Debug, Default)]
struct SendConn {
    tx: GbnTx,
    records: VecDeque<SendRecord>,
    pending_tokens: VecDeque<u64>,
    active_token: Option<u64>,
    /// Packets awaiting a send buffer on this connection (the NIC
    /// round-robins across connections, like GM's per-port send queues).
    sdma_wait: VecDeque<SdmaReq>,
    timer_gen: u64,
    timer_armed: bool,
}

#[derive(Debug)]
struct SendTokenState {
    dst: NodeId,
    dst_port: PortId,
    src_port: PortId,
    data: Bytes,
    tag: u64,
    next_offset: usize,
    unacked: usize,
    done_creating: bool,
}

#[derive(Debug)]
struct InProgressMsg {
    uid: u64,
    msg_len: u32,
    tag: u64,
    received: u32,
    rdma_done: u32,
    data: BytesMut,
}

/// Receive-side connection state. Several messages can be in flight at once:
/// the last one is still receiving packets while earlier ones finish their
/// RDMA into host memory.
#[derive(Debug, Default)]
struct RecvConn {
    rx: GbnRx,
    next_uid: u64,
    msgs: VecDeque<InProgressMsg>,
    /// An ack-flush timer is pending for this connection.
    ack_armed: bool,
}

/// One packet waiting for a send buffer (per-connection queue).
#[derive(Debug, Clone, Copy)]
struct SdmaReq {
    seq: u64,
    retx: bool,
}

// ---------------------------------------------------------------------------
// NicCore
// ---------------------------------------------------------------------------

/// All state of one NIC.
pub struct NicCore<X: NicExtension> {
    node: NodeId,
    params: GmParams,
    now: SimTime,

    // LANai processor.
    lanai_busy: bool,
    work: VecDeque<(SimDuration, Work<X>)>,

    // PCI bus.
    pci_busy: bool,
    pci: VecDeque<(u64, PciJob<X>)>,

    // Transmit engine.
    tx_busy: bool,
    tx: VecDeque<TxJob<X::Tag>>,

    // SRAM buffers (counted pools from the pure protocol core; conservation
    // is debug-asserted at every grant/release site, mirroring the simcheck
    // invariant).
    send_bufs: Pool,
    recv_bufs: Pool,
    /// Round-robin rotation of connections with queued SDMA requests (each
    /// connection appears at most once).
    sdma_rotation: VecDeque<ConnKey>,

    // Tokens.
    send_token_pool: Pool,
    tokens: BTreeMap<u64, SendTokenState>,
    next_token: u64,
    recv_tokens: BTreeMap<PortId, Credits>,

    // Protocol state.
    send_conns: BTreeMap<ConnKey, SendConn>,
    recv_conns: BTreeMap<ConnKey, RecvConn>,

    // Intents drained by the cluster.
    notices: Vec<Notice<X::Notice>>,
    timer_reqs: Vec<(SimDuration, TimerTag<X::Tag>)>,

    // Extension resource-wait handshake.
    ext_waiting: bool,
    resource_freed: bool,

    /// Protocol counters (packets, drops, retransmissions...).
    pub counters: Counters,
}

impl<X: NicExtension> NicCore<X> {
    /// A fresh NIC for `node`.
    pub fn new(node: NodeId, params: GmParams) -> Self {
        NicCore {
            node,
            send_bufs: Pool::new(params.send_buffers),
            recv_bufs: Pool::new(params.recv_buffers),
            send_token_pool: Pool::new(params.send_tokens),
            params,
            now: SimTime::ZERO,
            lanai_busy: false,
            work: VecDeque::new(),
            pci_busy: false,
            pci: VecDeque::new(),
            tx_busy: false,
            tx: VecDeque::new(),
            sdma_rotation: VecDeque::new(),
            tokens: BTreeMap::new(),
            next_token: 0,
            recv_tokens: BTreeMap::new(),
            send_conns: BTreeMap::new(),
            recv_conns: BTreeMap::new(),
            notices: Vec::new(),
            timer_reqs: Vec::new(),
            ext_waiting: false,
            resource_freed: false,
            counters: Counters::new(),
        }
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulated time (updated by the cluster before each call).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's parameter set.
    pub fn params(&self) -> &GmParams {
        &self.params
    }

    /// Advance the NIC's view of time. Called by the cluster at dispatch.
    pub fn set_now(&mut self, now: SimTime) {
        debug_assert!(now >= self.now);
        self.now = now;
    }

    // -- Host surface --------------------------------------------------------

    /// A host send event arrived at the NIC (doorbell). Queues LANai work to
    /// translate it into a send token.
    ///
    /// Returns `false` if the node is out of send tokens (callers should
    /// treat this as backpressure; the cluster's host model retries).
    pub fn host_send(&mut self, args: SendArgs) -> bool {
        assert!(args.dst != self.node, "GM loopback send is not modelled");
        if !self.send_token_pool.try_take() {
            self.counters.bump("send_token_stall");
            return false;
        }
        self.debug_check_conservation();
        let id = self.next_token;
        self.next_token += 1;
        self.tokens.insert(
            id,
            SendTokenState {
                dst: args.dst,
                dst_port: args.dst_port,
                src_port: args.src_port,
                data: args.data,
                tag: args.tag,
                next_offset: 0,
                unacked: 0,
                done_creating: false,
            },
        );
        self.work
            .push_back((self.params.send_token_proc, Work::SendToken { token: id }));
        true
    }

    /// The host preposted `n` receive buffers on `port`.
    pub fn host_provide_recv(&mut self, port: PortId, n: usize) {
        self.recv_tokens
            .entry(port)
            .or_default()
            .grant(n as u64);
        self.debug_check_conservation();
    }

    /// Receive tokens currently available on `port`.
    pub fn recv_tokens(&self, port: PortId) -> usize {
        self.recv_tokens
            .get(&port)
            .map_or(0, |c| c.available() as usize)
    }

    /// Free send tokens (host sends park until one is available).
    pub fn send_tokens_free(&self) -> usize {
        self.send_token_pool.free()
    }

    /// Queue LANai work for a host extension request (cost supplied by the
    /// extension's `request_cost`).
    pub fn host_ext_request(&mut self, cost: SimDuration, req: X::Request) {
        self.work.push_back((cost, Work::HostReq(req)));
    }

    // -- Wire surface --------------------------------------------------------

    /// A packet's tail arrived from the fabric.
    pub fn packet_arrived(&mut self, pkt: Packet) {
        match &pkt.kind {
            PacketKind::Ack { .. } | PacketKind::McastAck { .. } | PacketKind::Ctl { .. } => {
                // Control packets are consumed from the small receive FIFO
                // and never occupy an SRAM packet buffer.
                let cost = self.params.ack_proc;
                let work = if pkt.kind.is_mcast() {
                    Work::RxExt(pkt)
                } else {
                    Work::RxAck(pkt)
                };
                self.work.push_back((cost, work));
            }
            PacketKind::Data { .. } | PacketKind::Mcast { .. } => {
                if !self.recv_bufs.try_take() {
                    // GM behaviour: no buffer, drop; the sender's timeout
                    // recovers the packet.
                    self.counters.bump("rx_drop_no_sram");
                    return;
                }
                let cost = self.params.recv_proc;
                let work = if pkt.kind.is_mcast() {
                    Work::RxExt(pkt)
                } else {
                    Work::RxData(pkt)
                };
                self.work.push_back((cost, work));
            }
        }
    }

    // -- LANai processor -----------------------------------------------------

    /// If the LANai is idle and work is queued, start the next item.
    /// The caller schedules completion after the returned cost.
    // simlint::hot
    pub fn lanai_start(&mut self) -> Option<(SimDuration, Work<X>)> {
        if self.lanai_busy {
            return None;
        }
        let (cost, work) = self.work.pop_front()?;
        self.lanai_busy = true;
        Some((cost, work))
    }

    /// Apply the effects of a completed work item.
    // simlint::hot
    pub fn lanai_finish(&mut self, work: Work<X>, ext: &mut X) {
        self.lanai_busy = false;
        match work {
            Work::SendToken { token } => self.activate_token(token),
            Work::RxData(pkt) => self.rx_data(&pkt),
            Work::RxAck(pkt) => self.rx_ack(&pkt),
            Work::RxExt(pkt) => ext.packet(self, pkt),
            Work::HostReq(req) => ext.host_request(self, req),
            Work::Callback(tag) => ext.tx_callback(self, tag),
            Work::ExtWork(tag) => ext.work(self, tag),
        }
    }

    // -- Transmit engine -----------------------------------------------------

    /// If the wire is idle and a packet is queued, start transmitting it.
    /// The caller injects the packet into the fabric and schedules
    /// [`tx_drained`](Self::tx_drained) at the fabric's `src_free` time.
    // simlint::hot
    pub fn tx_start(&mut self) -> Option<TxJob<X::Tag>> {
        if self.tx_busy {
            return None;
        }
        let job = self.tx.pop_front()?;
        self.tx_busy = true;
        Some(job)
    }

    /// The transmit DMA engine finished serializing the current packet.
    pub fn tx_drained(&mut self, cb: Cb<X::Tag>) {
        self.tx_busy = false;
        match cb {
            Cb::None | Cb::Control => {}
            Cb::Base { conn, seq } => {
                self.free_send_buffer();
                if let Some(rec) = self
                    .send_conns
                    .get_mut(&conn)
                    .and_then(|c| c.records.iter_mut().find(|r| r.seq == seq))
                {
                    rec.sent_at = Some(self.now);
                }
                self.arm_conn_timer(conn);
            }
            Cb::Ext(tag) => {
                // The descriptor's callback handler runs on the LANai.
                self.work
                    .push_back((self.params.callback_proc, Work::Callback(tag)));
            }
        }
    }

    // -- PCI bus -------------------------------------------------------------

    /// If the PCI bus is idle and a DMA is queued, start it. The caller
    /// schedules [`pci_finish`](Self::pci_finish) after the returned time.
    // simlint::hot
    pub fn pci_start(&mut self) -> Option<(SimDuration, PciJob<X>)> {
        if self.pci_busy {
            return None;
        }
        let (bytes, job) = self.pci.pop_front()?;
        self.pci_busy = true;
        Some((self.params.dma_time(bytes), job))
    }

    /// Apply the effects of a completed DMA transfer.
    pub fn pci_finish(&mut self, job: PciJob<X>, ext: &mut X) {
        self.pci_busy = false;
        match job {
            PciJob::Sdma { conn, seq } | PciJob::Retx { conn, seq } => {
                self.sdma_complete(conn, seq);
            }
            PciJob::Rdma {
                conn,
                msg_uid,
                bytes,
            } => self.rdma_complete(conn, msg_uid, bytes),
            PciJob::Ext(tag) => ext.dma_done(self, tag),
        }
    }

    // -- Timers --------------------------------------------------------------

    /// A previously requested timer fired.
    pub fn timer_fired(&mut self, tag: TimerTag<X::Tag>, ext: &mut X) {
        match tag {
            TimerTag::Conn { conn, gen } => self.conn_timeout(conn, gen),
            TimerTag::AckFlush { conn } => self.flush_ack(conn),
            TimerTag::Ext(tag) => ext.timer(self, tag),
        }
    }

    /// Send the pending cumulative ack for a receive connection.
    fn flush_ack(&mut self, key: ConnKey) {
        let Some(conn) = self.recv_conns.get_mut(&key) else {
            return;
        };
        conn.ack_armed = false;
        if let Some(a) = conn.rx.cum_ack() {
            let ack = Packet::ack(self.node, key.peer, key.dst_port, a);
            self.counters.bump("tx_acks");
            self.tx.push_back(TxJob {
                pkt: ack,
                cb: Cb::Control,
            });
        }
    }

    // -- Intent drains -------------------------------------------------------

    /// True if the LANai has queued work and is idle (the cluster should
    /// pump).
    pub fn wants_pump(&self) -> bool {
        (!self.lanai_busy && !self.work.is_empty())
            || (!self.pci_busy && !self.pci.is_empty())
            || (!self.tx_busy && !self.tx.is_empty())
            || !self.notices.is_empty()
            || !self.timer_reqs.is_empty()
            || (self.ext_waiting && self.resource_freed)
    }

    /// Take all pending NIC-to-host notices.
    pub fn drain_notices(&mut self) -> Vec<Notice<X::Notice>> {
        std::mem::take(&mut self.notices)
    }

    /// Take all pending timer arm requests.
    pub fn drain_timer_reqs(&mut self) -> Vec<(SimDuration, TimerTag<X::Tag>)> {
        std::mem::take(&mut self.timer_reqs)
    }

    // -- Extension surface ---------------------------------------------------

    /// Queue a packet for transmission with an optional descriptor callback.
    ///
    /// Extension packets do not consume base send buffers; the extension
    /// does its own buffer accounting.
    pub fn ext_tx(&mut self, pkt: Packet, cb: Cb<X::Tag>) {
        self.tx.push_back(TxJob { pkt, cb });
    }

    /// Queue a deferred LANai work item at `cost`.
    pub fn ext_work(&mut self, cost: SimDuration, tag: X::Tag) {
        self.work.push_back((cost, Work::ExtWork(tag)));
    }

    /// Queue an extension DMA of `bytes` over the shared PCI bus.
    pub fn ext_dma(&mut self, bytes: u64, tag: X::Tag) {
        self.pci.push_back((bytes, PciJob::Ext(tag)));
    }

    /// Arm an extension timer.
    pub fn ext_timer(&mut self, delay: SimDuration, tag: X::Tag) {
        self.timer_reqs.push((delay, TimerTag::Ext(tag)));
    }

    /// Post an extension notice to the host.
    pub fn ext_notify(&mut self, notice: X::Notice) {
        self.notices.push(Notice::Ext(notice));
    }

    /// Post a receive notice to the host (the extension delivers multicast
    /// messages through the same host receive path as unicast).
    pub fn notify_recv(&mut self, port: PortId, src: NodeId, src_port: PortId, tag: u64, data: Bytes) {
        self.notices.push(Notice::Recv {
            port,
            src,
            src_port,
            tag,
            data,
        });
    }

    /// Consume one receive token on `port`. Returns false (and counts) if
    /// none are available.
    pub fn take_recv_token(&mut self, port: PortId) -> bool {
        let ok = self
            .recv_tokens
            .get_mut(&port)
            .is_some_and(Credits::try_consume);
        if ok {
            self.debug_check_conservation();
        } else {
            self.counters.bump("rx_drop_no_token");
        }
        ok
    }

    /// Try to claim a send SRAM buffer.
    pub fn alloc_send_buffer(&mut self) -> bool {
        let ok = self.send_bufs.try_take();
        if ok {
            self.debug_check_conservation();
        }
        ok
    }

    /// Return a send SRAM buffer and let waiting SDMA requests proceed.
    pub fn free_send_buffer(&mut self) {
        self.send_bufs.put();
        self.debug_check_conservation();
        self.resource_freed = true;
        self.pump_sdma();
    }

    /// Return a receive SRAM buffer (extension forwarding path).
    pub fn free_recv_buffer(&mut self) {
        self.recv_bufs.put();
        self.debug_check_conservation();
        self.resource_freed = true;
    }

    /// The extension declares it is blocked on an SRAM buffer or token; the
    /// cluster will invoke `resources_available` once something frees up.
    pub fn signal_resource_wait(&mut self) {
        self.ext_waiting = true;
    }

    /// Cluster-side check: should `resources_available` run now?
    pub fn take_resource_signal(&mut self) -> bool {
        if self.ext_waiting && self.resource_freed {
            self.ext_waiting = false;
            self.resource_freed = false;
            true
        } else {
            false
        }
    }

    /// Try to claim a send token from the free pool (used only by the
    /// ablation that retransmits from pool tokens instead of transforming
    /// the receive token; can deadlock, as the paper warns).
    pub fn take_send_token(&mut self) -> bool {
        let ok = self.send_token_pool.try_take();
        if ok {
            self.debug_check_conservation();
        }
        ok
    }

    /// Return a pool send token.
    pub fn return_send_token(&mut self) {
        self.send_token_pool.put();
        self.debug_check_conservation();
        self.resource_freed = true;
    }

    /// Free send SRAM buffers currently available (for tests/ablations).
    pub fn send_buffers_free(&self) -> usize {
        self.send_bufs.free()
    }

    /// Free receive SRAM buffers currently available.
    pub fn recv_buffers_free(&self) -> usize {
        self.recv_bufs.free()
    }

    /// Runtime mirror of simcheck's token-conservation invariant (I2):
    /// checked at every grant/release site in debug builds so ordinary
    /// simulation runs cheaply cross-validate the model. Release builds
    /// compile this to nothing.
    fn debug_check_conservation(&self) {
        debug_assert!(
            self.send_bufs.is_conserved(),
            "token conservation: send-buffer pool leaked or double-freed"
        );
        debug_assert!(
            self.recv_bufs.is_conserved(),
            "token conservation: recv-buffer pool leaked or double-freed"
        );
        debug_assert!(
            self.send_token_pool.is_conserved(),
            "token conservation: send-token pool leaked or double-freed"
        );
        debug_assert!(
            self.recv_tokens.values().all(Credits::is_conserved),
            "token conservation: receive credits consumed beyond grants"
        );
    }

    // -- Flow attribution ----------------------------------------------------

    /// The causal flow a queued LANai work item belongs to. Extension work
    /// resolves through [`NicExtension::flow_of_tag`]/[`flow_of_request`];
    /// acks resolve to [`FlowId::NONE`] (they end a window, not a delivery).
    ///
    /// [`flow_of_request`]: NicExtension::flow_of_request
    pub fn flow_of_work(&self, work: &Work<X>, ext: &X) -> FlowId {
        match work {
            Work::SendToken { token } => match self.tokens.get(token) {
                Some(t) => FlowId::new(self.node.0, flow_tag(t.tag), t.dst.0),
                None => FlowId::NONE,
            },
            Work::RxData(pkt) | Work::RxExt(pkt) => flow_of_packet(pkt),
            Work::RxAck(_) => FlowId::NONE,
            Work::HostReq(req) => ext.flow_of_request(self.node.0, req),
            Work::Callback(tag) | Work::ExtWork(tag) => ext.flow_of_tag(self.node.0, tag),
        }
    }

    /// The causal flow a PCI DMA job moves bytes for: SDMA/retransmit jobs
    /// resolve through the send record's token, RDMA jobs through the
    /// receive connection's in-progress message.
    pub fn flow_of_pci(&self, job: &PciJob<X>, ext: &X) -> FlowId {
        match job {
            PciJob::Sdma { conn, seq } | PciJob::Retx { conn, seq } => {
                let tag = self
                    .send_conns
                    .get(conn)
                    .and_then(|c| c.records.iter().find(|r| r.seq == *seq))
                    .and_then(|r| self.tokens.get(&r.token))
                    .map(|t| t.tag);
                match tag {
                    Some(tag) => FlowId::new(self.node.0, flow_tag(tag), conn.peer.0),
                    None => FlowId::NONE,
                }
            }
            PciJob::Rdma { conn, msg_uid, .. } => {
                let tag = self
                    .recv_conns
                    .get(conn)
                    .and_then(|c| c.msgs.iter().find(|m| m.uid == *msg_uid))
                    .map(|m| m.tag);
                match tag {
                    Some(tag) => FlowId::new(conn.peer.0, flow_tag(tag), self.node.0),
                    None => FlowId::NONE,
                }
            }
            PciJob::Ext(tag) => ext.flow_of_tag(self.node.0, tag),
        }
    }

    /// The causal flow a base receive notice delivers ([`FlowId::NONE`] for
    /// send completions and compute ticks; extension notices resolve through
    /// [`NicExtension::flow_of_notice`]).
    pub fn flow_of_notice(&self, notice: &Notice<X::Notice>, ext: &X) -> FlowId {
        match notice {
            Notice::Recv { src, tag, .. } => FlowId::new(src.0, flow_tag(*tag), self.node.0),
            Notice::Ext(n) => ext.flow_of_notice(self.node.0, n),
            Notice::SendComplete { .. } | Notice::ComputeDone { .. } => FlowId::NONE,
        }
    }

    // -- Telemetry gauges ----------------------------------------------------

    /// Queued LANai work items (telemetry gauge).
    pub fn lanai_queue_len(&self) -> usize {
        self.work.len()
    }

    /// Queued PCI DMA jobs (telemetry gauge).
    pub fn pci_queue_len(&self) -> usize {
        self.pci.len()
    }

    /// Packets queued for the transmit DMA engine (telemetry gauge).
    pub fn tx_queue_len(&self) -> usize {
        self.tx.len()
    }

    /// Send tokens currently in use (telemetry gauge).
    pub fn send_tokens_used(&self) -> usize {
        self.send_token_pool.in_use()
    }

    /// SRAM packet buffers currently in use, send + receive (telemetry
    /// gauge: the paper's firmware competes for this pool).
    pub fn sram_buffers_used(&self) -> usize {
        self.send_bufs.in_use() + self.recv_bufs.in_use()
    }

    /// Receive tokens available across all ports (telemetry gauge).
    pub fn recv_tokens_avail(&self) -> usize {
        self.recv_tokens.values().map(|c| c.available() as usize).sum()
    }

    // -- Base protocol internals ----------------------------------------------

    fn conn_for_token(&self, t: &SendTokenState) -> ConnKey {
        ConnKey {
            peer: t.dst,
            src_port: t.src_port,
            dst_port: t.dst_port,
        }
    }

    /// LANai finished translating a host send event: make the token active
    /// on its connection (or queue it behind earlier messages).
    fn activate_token(&mut self, token: u64) {
        let t = &self.tokens[&token];
        let key = self.conn_for_token(t);
        let conn = self.send_conns.entry(key).or_default();
        conn.pending_tokens.push_back(token);
        self.pump_conn(key);
    }

    /// Advance a connection: activate the next token and create packet
    /// records up to the Go-Back-N window.
    fn pump_conn(&mut self, key: ConnKey) {
        loop {
            let Some(conn) = self.send_conns.get_mut(&key) else {
                return;
            };
            if conn.active_token.is_none() {
                conn.active_token = conn.pending_tokens.pop_front();
            }
            let Some(tid) = conn.active_token else {
                return;
            };
            let token = self.tokens.get_mut(&tid).expect("active token exists");
            let len = token.data.len();
            let mut made_progress = false;
            while !token.done_creating
                && conn.tx.can_admit(conn.records.len(), self.params.send_window)
            {
                let off = token.next_offset;
                let chunk = (len - off).min(MTU);
                let payload = token.data.slice(off..off + chunk);
                let seq = conn.tx.assign_seq();
                conn.records.push_back(SendRecord {
                    seq,
                    token: tid,
                    offset: off as u32,
                    payload,
                    sent_at: None,
                    retries: 0,
                });
                token.unacked += 1;
                token.next_offset = off + chunk;
                if token.next_offset >= len {
                    token.done_creating = true;
                }
                conn.sdma_wait.push_back(SdmaReq { seq, retx: false });
                made_progress = true;
            }
            if token.done_creating {
                // Allow the next message on this connection to start
                // packetizing (its packets follow in seq order).
                conn.active_token = None;
                if conn.pending_tokens.is_empty() {
                    break;
                }
                continue;
            }
            if !made_progress {
                break;
            }
        }
        self.enroll_sdma(key);
        self.pump_sdma();
    }

    /// Put `key` into the SDMA round-robin if it has waiting requests.
    fn enroll_sdma(&mut self, key: ConnKey) {
        let waiting = self
            .send_conns
            .get(&key)
            .is_some_and(|c| !c.sdma_wait.is_empty());
        if waiting && !self.sdma_rotation.contains(&key) {
            self.sdma_rotation.push_back(key);
        }
    }

    /// Start SDMA downloads while send buffers are available, taking one
    /// request per connection in rotation (GM round-robins across its
    /// per-port send queues, so bulk traffic cannot starve other ports).
    fn pump_sdma(&mut self) {
        while self.send_bufs.free() > 0 {
            let Some(key) = self.sdma_rotation.pop_front() else {
                return;
            };
            let Some(conn) = self.send_conns.get_mut(&key) else {
                continue;
            };
            let Some(req) = conn.sdma_wait.pop_front() else {
                continue;
            };
            if !conn.sdma_wait.is_empty() {
                self.sdma_rotation.push_back(key);
            }
            // The record may have been acked while waiting (retransmit race).
            let Some(rec) = self
                .send_conns
                .get(&key)
                .and_then(|c| c.records.iter().find(|r| r.seq == req.seq))
            else {
                self.enroll_sdma(key);
                continue;
            };
            let took = self.send_bufs.try_take();
            debug_assert!(took, "loop guard guarantees a free send buffer");
            let bytes = rec.payload.len() as u64;
            let job = if req.retx {
                PciJob::Retx {
                    conn: key,
                    seq: req.seq,
                }
            } else {
                PciJob::Sdma {
                    conn: key,
                    seq: req.seq,
                }
            };
            self.pci.push_back((bytes, job));
        }
    }

    /// A packet finished downloading into a send buffer: put it on the wire.
    fn sdma_complete(&mut self, key: ConnKey, seq: u64) {
        let Some(rec) = self
            .send_conns
            .get(&key)
            .and_then(|c| c.records.iter().find(|r| r.seq == seq))
        else {
            // Acked while the DMA was in flight; release the buffer.
            self.free_send_buffer();
            return;
        };
        let token = &self.tokens[&rec.token];
        let pkt = Packet {
            src: self.node,
            dst: key.peer,
            kind: PacketKind::Data {
                port: key.dst_port,
                src_port: key.src_port,
                seq,
                offset: rec.offset,
                msg_len: token.data.len() as u32,
                tag: token.tag,
            },
            payload: rec.payload.clone(),
        };
        self.counters.bump("tx_data");
        self.tx.push_back(TxJob {
            pkt,
            cb: Cb::Base { conn: key, seq },
        });
    }

    /// Arm the retransmission timer for a connection if not already armed.
    fn arm_conn_timer(&mut self, key: ConnKey) {
        let Some(conn) = self.send_conns.get_mut(&key) else {
            return;
        };
        if conn.timer_armed || conn.records.is_empty() {
            return;
        }
        conn.timer_armed = true;
        conn.timer_gen += 1;
        let gen = conn.timer_gen;
        self.timer_reqs
            .push((self.params.timeout, TimerTag::Conn { conn: key, gen }));
    }

    /// Retransmission timer fired for a connection.
    fn conn_timeout(&mut self, key: ConnKey, gen: u64) {
        let timeout = self.params.timeout;
        let now = self.now;
        let Some(conn) = self.send_conns.get_mut(&key) else {
            return;
        };
        if gen != conn.timer_gen {
            return; // stale timer
        }
        conn.timer_armed = false;
        if conn.records.is_empty() {
            return;
        }
        // Oldest transmitted-and-unacked record decides.
        let oldest_sent = conn.records.iter().filter_map(|r| r.sent_at).min();
        match oldest_sent {
            None => {
                // Nothing on the wire yet (all waiting for SDMA); check later.
                conn.timer_armed = true;
                conn.timer_gen += 1;
                let gen = conn.timer_gen;
                self.timer_reqs
                    .push((timeout, TimerTag::Conn { conn: key, gen }));
            }
            Some(sent) if now.saturating_since(sent) >= timeout => {
                // Go-Back-N: retransmit every sent-and-unacked record, oldest
                // first ("retransmit the packet, as well as all the later
                // packets from the same port").
                let mut retx: Vec<u64> = Vec::new();
                let mut max_retries = 0u32;
                for r in conn.records.iter_mut() {
                    if r.sent_at.is_some() {
                        r.sent_at = None;
                        r.retries += 1;
                        max_retries = max_retries.max(r.retries);
                        retx.push(r.seq);
                    }
                }
                for &seq in retx.iter().rev() {
                    conn.sdma_wait.push_front(SdmaReq { seq, retx: true });
                }
                self.counters.add("retransmissions", retx.len() as u64);
                conn.timer_armed = true;
                conn.timer_gen += 1;
                let gen = conn.timer_gen;
                // Exponential backoff: never beat a congested network while
                // it is already draining our duplicates.
                let delay = timeout * (1u64 << max_retries.min(5));
                self.timer_reqs
                    .push((delay, TimerTag::Conn { conn: key, gen }));
                self.enroll_sdma(key);
                self.pump_sdma();
            }
            Some(sent) => {
                // Not yet due: re-check when the oldest record matures.
                conn.timer_armed = true;
                conn.timer_gen += 1;
                let gen = conn.timer_gen;
                let remaining = timeout - now.saturating_since(sent);
                self.timer_reqs
                    .push((remaining, TimerTag::Conn { conn: key, gen }));
            }
        }
    }

    /// Received a unicast data packet (LANai cost already charged).
    fn rx_data(&mut self, pkt: &Packet) {
        let &PacketKind::Data {
            port,
            src_port,
            seq,
            offset,
            msg_len,
            tag,
        } = &pkt.kind
        else {
            unreachable!("rx_data called on non-data packet");
        };
        let key = ConnKey {
            peer: pkt.src,
            src_port,
            dst_port: port,
        };
        let verdict = self.recv_conns.entry(key).or_default().rx.verdict(seq);
        if let RxVerdict::OutOfOrder { reack } = verdict {
            // Out of order (Go-Back-N): drop, re-ack the last in-order seq
            // immediately (duplicates signal the sender is retransmitting,
            // so never delay this one).
            self.counters.bump("rx_out_of_order");
            self.free_recv_buffer();
            if let Some(a) = reack {
                let ack = Packet::ack(self.node, key.peer, port, a);
                self.counters.bump("tx_acks");
                self.tx.push_back(TxJob {
                    pkt: ack,
                    cb: Cb::Control,
                });
            }
            return;
        }
        if offset == 0 {
            // A new message needs a receive token.
            if !self.take_recv_token(port) {
                // No token: drop without acking; sender retries.
                self.free_recv_buffer();
                return;
            }
            let conn = self.recv_conns.get_mut(&key).expect("conn exists");
            let uid = conn.next_uid;
            conn.next_uid += 1;
            conn.msgs.push_back(InProgressMsg {
                uid,
                msg_len,
                tag,
                received: 0,
                rdma_done: 0,
                data: BytesMut::with_capacity(msg_len as usize),
            });
        }
        let conn = self.recv_conns.get_mut(&key).expect("conn exists");
        // In-order delivery means mid-message packets always extend the
        // youngest open message.
        let msg = conn
            .msgs
            .back_mut()
            .expect("mid-message packet without an open message");
        debug_assert_eq!(offset, msg.received, "in-order implies contiguous");
        debug_assert_eq!(msg_len, msg.msg_len);
        msg.data.extend_from_slice(&pkt.payload);
        msg.received += pkt.payload.len() as u32;
        let msg_uid = msg.uid;
        conn.rx.accept();
        self.counters.bump("rx_data");
        // Ack the packet (possibly coalesced) and upload its payload to the
        // host buffer. The receive SRAM buffer stays occupied until the
        // RDMA drains.
        self.ack_or_coalesce(key, seq);
        self.pci.push_back((
            pkt.payload.len() as u64,
            PciJob::Rdma {
                conn: key,
                msg_uid,
                bytes: pkt.payload.len() as u32,
            },
        ));
    }

    /// Either ack `seq` right away or arm the coalescing flush timer.
    fn ack_or_coalesce(&mut self, key: ConnKey, seq: u64) {
        let window = self.params.ack_coalesce;
        if window == SimDuration::ZERO {
            let ack = Packet::ack(self.node, key.peer, key.dst_port, seq);
            self.counters.bump("tx_acks");
            self.tx.push_back(TxJob {
                pkt: ack,
                cb: Cb::Control,
            });
            return;
        }
        let conn = self.recv_conns.get_mut(&key).expect("conn exists");
        if !conn.ack_armed {
            conn.ack_armed = true;
            self.timer_reqs.push((window, TimerTag::AckFlush { conn: key }));
        } else {
            // A flush is already pending: this ack merges into it.
            self.counters.bump("acks_coalesced");
        }
    }

    /// A received packet's payload finished uploading to host memory.
    fn rdma_complete(&mut self, key: ConnKey, msg_uid: u64, bytes: u32) {
        self.free_recv_buffer();
        let conn = self.recv_conns.get_mut(&key).expect("conn exists");
        let idx = conn
            .msgs
            .iter()
            .position(|m| m.uid == msg_uid)
            .expect("rdma for an open message");
        let msg = &mut conn.msgs[idx];
        msg.rdma_done += bytes;
        if msg.rdma_done >= msg.msg_len && msg.received >= msg.msg_len {
            let msg = conn.msgs.remove(idx).expect("index valid");
            self.notices.push(Notice::Recv {
                port: key.dst_port,
                src: key.peer,
                src_port: key.src_port,
                tag: msg.tag,
                data: msg.data.freeze(),
            });
        }
    }

    /// Received a cumulative ack for a unicast connection.
    fn rx_ack(&mut self, pkt: &Packet) {
        let &PacketKind::Ack { port, seq } = &pkt.kind else {
            unreachable!("rx_ack called on non-ack packet");
        };
        // Find the send connection this ack belongs to. The ack carries the
        // receiver's port; ports pair uniquely per peer in our workloads.
        let key = self
            .send_conns
            .keys()
            .find(|k| k.peer == pkt.src && k.dst_port == port)
            .copied();
        let Some(key) = key else {
            self.counters.bump("rx_stray_ack");
            return;
        };
        let conn = self.send_conns.get_mut(&key).expect("key exists");
        // A cumulative ack for `seq` means `seq + 1` packets are confirmed;
        // the shared release-horizon function decides how many records that
        // frees (the seeded off-by-one mutation lives in there).
        let horizon = proto::release_horizon(seq + 1, self.params.mutation);
        let mut completed: Vec<u64> = Vec::new();
        while let Some(front) = conn.records.front() {
            if front.seq >= horizon {
                break;
            }
            let rec = conn.records.pop_front().expect("nonempty");
            completed.push(rec.token);
        }
        if completed.is_empty() {
            return;
        }
        self.counters.add("acked_packets", completed.len() as u64);
        for tid in completed {
            let token = self.tokens.get_mut(&tid).expect("token exists");
            token.unacked -= 1;
            if token.done_creating && token.unacked == 0 {
                let token = self.tokens.remove(&tid).expect("token exists");
                self.send_token_pool.put();
                self.debug_check_conservation();
                self.notices.push(Notice::SendComplete {
                    port: token.src_port,
                    tag: token.tag,
                });
            }
        }
        // Window space may have opened for the active message.
        self.pump_conn(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::NoExt;

    const P0: PortId = PortId(0);

    fn nic() -> (NicCore<NoExt>, NoExt) {
        (NicCore::new(NodeId(0), GmParams::default()), NoExt)
    }

    fn args(dst: u32, len: usize, tag: u64) -> SendArgs {
        SendArgs {
            dst: NodeId(dst),
            dst_port: P0,
            src_port: P0,
            data: Bytes::from(vec![7u8; len]),
            tag,
        }
    }

    /// Drive the LANai until its work queue drains, like the cluster would.
    fn drain_lanai(n: &mut NicCore<NoExt>, ext: &mut NoExt) {
        while let Some((_cost, work)) = n.lanai_start() {
            n.lanai_finish(work, ext);
        }
    }

    #[test]
    fn send_token_pool_is_bounded() {
        let (mut n, _) = nic();
        let limit = n.params().send_tokens;
        for i in 0..limit {
            assert!(n.host_send(args(1, 8, i as u64)), "token {i} available");
        }
        assert!(!n.host_send(args(1, 8, 999)), "pool exhausted");
        assert_eq!(n.counters.get("send_token_stall"), 1);
    }

    #[test]
    fn send_pipeline_produces_packets_in_seq_order() {
        let (mut n, mut ext) = nic();
        assert!(n.host_send(args(1, 10_000, 5))); // 3 packets
        drain_lanai(&mut n, &mut ext);
        // Packetization queued SDMA jobs; complete them and collect tx.
        let mut seqs = Vec::new();
        while let Some((_d, job)) = n.pci_start() {
            n.pci_finish(job, &mut ext);
            while let Some(TxJob { pkt, cb }) = n.tx_start() {
                if let PacketKind::Data { seq, offset, msg_len, .. } = pkt.kind {
                    seqs.push((seq, offset));
                    assert_eq!(msg_len, 10_000);
                }
                n.tx_drained(cb);
            }
        }
        assert_eq!(seqs, vec![(0, 0), (1, 4096), (2, 8192)]);
        // Transmissions armed the retransmission timer.
        assert!(!n.drain_timer_reqs().is_empty());
    }

    #[test]
    fn receive_path_reassembles_and_acks() {
        let (mut n, mut ext) = nic();
        n.host_provide_recv(P0, 1);
        let payload = Bytes::from(vec![3u8; 100]);
        let pkt = Packet {
            src: NodeId(1),
            dst: NodeId(0),
            kind: PacketKind::Data {
                port: P0,
                src_port: P0,
                seq: 0,
                offset: 0,
                msg_len: 100,
                tag: 42,
            },
            payload,
        };
        n.packet_arrived(pkt);
        drain_lanai(&mut n, &mut ext);
        // An ack went out...
        let TxJob { pkt: ack, cb } = n.tx_start().expect("ack queued");
        assert!(matches!(ack.kind, PacketKind::Ack { seq: 0, .. }));
        n.tx_drained(cb);
        // ...and the RDMA completion delivers the message.
        let (_d, job) = n.pci_start().expect("rdma queued");
        n.pci_finish(job, &mut ext);
        let notices = n.drain_notices();
        assert_eq!(notices.len(), 1);
        match &notices[0] {
            Notice::Recv { tag, data, src, .. } => {
                assert_eq!(*tag, 42);
                assert_eq!(data.len(), 100);
                assert_eq!(*src, NodeId(1));
            }
            other => panic!("unexpected notice {other:?}"),
        }
    }

    #[test]
    fn out_of_order_packet_dropped_and_reacked() {
        let (mut n, mut ext) = nic();
        n.host_provide_recv(P0, 4);
        let mk = |seq| Packet {
            src: NodeId(1),
            dst: NodeId(0),
            kind: PacketKind::Data {
                port: P0,
                src_port: P0,
                seq,
                offset: 0,
                msg_len: 4,
                tag: seq,
            },
            payload: Bytes::from_static(b"abcd"),
        };
        // seq 1 before seq 0: dropped without consuming a token, no ack
        // (nothing in order yet).
        n.packet_arrived(mk(1));
        drain_lanai(&mut n, &mut ext);
        assert_eq!(n.counters.get("rx_out_of_order"), 1);
        assert!(n.tx_start().is_none(), "no ack before first in-order pkt");
        assert_eq!(n.recv_tokens(P0), 4);
        assert_eq!(n.recv_buffers_free(), n.params().recv_buffers);
    }

    #[test]
    fn no_sram_buffer_drops_without_processing() {
        let params = GmParams {
            recv_buffers: 1,
            ..GmParams::default()
        };
        let mut n: NicCore<NoExt> = NicCore::new(NodeId(0), params);
        let mut ext = NoExt;
        n.host_provide_recv(P0, 4);
        let mk = |seq| Packet {
            src: NodeId(1),
            dst: NodeId(0),
            kind: PacketKind::Data {
                port: P0,
                src_port: P0,
                seq,
                offset: 0,
                msg_len: 4,
                tag: 0,
            },
            payload: Bytes::from_static(b"abcd"),
        };
        // Two arrivals back-to-back with one buffer: the second drops.
        n.packet_arrived(mk(0));
        n.packet_arrived(mk(1));
        assert_eq!(n.counters.get("rx_drop_no_sram"), 1);
        drain_lanai(&mut n, &mut ext);
    }

    #[test]
    fn cumulative_ack_completes_token_and_returns_it() {
        let (mut n, mut ext) = nic();
        let free_before = {
            // consume all tx/pci to get the message on the wire
            assert!(n.host_send(args(1, 5000, 9))); // 2 packets
            drain_lanai(&mut n, &mut ext);
            while let Some((_d, job)) = n.pci_start() {
                n.pci_finish(job, &mut ext);
                while let Some(TxJob { cb, .. }) = n.tx_start() {
                    n.tx_drained(cb);
                }
            }
            n.params().send_tokens
        };
        // Cumulative ack for both packets at once.
        n.packet_arrived(Packet::ack(NodeId(1), NodeId(0), P0, 1));
        drain_lanai(&mut n, &mut ext);
        let notices = n.drain_notices();
        assert!(
            matches!(notices.as_slice(), [Notice::SendComplete { tag: 9, .. }]),
            "got {notices:?}"
        );
        // The token is back: we can fill the pool completely again.
        for i in 0..free_before {
            assert!(n.host_send(args(1, 8, i as u64)));
        }
    }

    #[test]
    fn stray_ack_is_counted_not_crashing() {
        let (mut n, mut ext) = nic();
        n.packet_arrived(Packet::ack(NodeId(3), NodeId(0), P0, 7));
        drain_lanai(&mut n, &mut ext);
        assert_eq!(n.counters.get("rx_stray_ack"), 1);
    }

    #[test]
    fn wants_pump_reflects_queued_intents() {
        let (mut n, _) = nic();
        assert!(!n.wants_pump());
        assert!(n.host_send(args(1, 8, 0)));
        assert!(n.wants_pump(), "lanai work pending");
    }
}
