//! Criterion macrobenches: simulator wall-clock cost of full protocol runs
//! (how fast the reproduction itself executes, not the simulated latencies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_mpi::{execute_mpi, BcastImpl, MpiRun};
use gm_sim::SimDuration;
use nic_mcast::{Scenario, TreeShape};

fn bench_gm_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_runtime");
    g.sample_size(10);
    for &(nodes, size) in &[(16u32, 64usize), (16, 16384), (64, 1024)] {
        g.bench_with_input(
            BenchmarkId::new("nic_mcast_20iters", format!("{nodes}n_{size}B")),
            &(nodes, size),
            |b, &(nodes, size)| {
                b.iter(|| {
                    Scenario::nic_based(nodes)
                        .size(size)
                        .tree(TreeShape::Binomial)
                        .warmup(2)
                        .iters(20)
                        .run()
                });
            },
        );
    }
    g.bench_function("mpi_bcast_16ranks_20iters", |b| {
        b.iter(|| {
            let run = MpiRun::bcast_loop(16, 1024, BcastImpl::NicBased, SimDuration::ZERO, 2, 20);
            execute_mpi(&run)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_gm_multicast);
criterion_main!(benches);
