//! Criterion bench of the sharded engine against the sequential reference
//! on the same multicast workload: identical event streams (the parity
//! suites prove bit-for-bit equality), so any median delta is pure engine
//! overhead — window bookkeeping on a single core, parallel speedup when
//! cores are available.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gm_sim::probe::ProbeConfig;
use nic_mcast::{execute_instrumented, McastMode, McastRun, TreeShape};

/// One fixed workload: a 32-node Clos cluster, 2 KB NIC-based multicast,
/// modest iteration count (the shard partition splits it four leaf-aligned
/// ways).
fn workload(shards: u32) -> McastRun {
    let mut run = McastRun::new(32, 2048, McastMode::NicBased, TreeShape::KAry(4));
    run.warmup = 2;
    run.iters = 8;
    run.shards = shards;
    run
}

fn bench_parallel_dispatch(c: &mut Criterion) {
    // Pin the event count once so the throughput label is honest.
    let events = execute_instrumented(&workload(1), ProbeConfig::off()).output.events;
    let mut g = c.benchmark_group("parallel");
    g.throughput(Throughput::Elements(events));
    for shards in [1u32, 2, 4] {
        let run = workload(shards);
        g.bench_function(format!("dispatch_32n_{shards}_shards"), |b| {
            b.iter(|| {
                let out = execute_instrumented(&run, ProbeConfig::off());
                assert_eq!(out.output.events, events, "sharding changed the event stream");
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_dispatch);
criterion_main!(benches);
