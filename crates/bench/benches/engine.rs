//! Criterion microbenches of the simulation substrate: raw event-dispatch
//! throughput and fabric injection cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gm_sim::{Engine, Scheduler, SimDuration, SimTime, World};
use myrinet::{Fabric, NodeId, Packet, PacketKind, PortId, Topology};

/// A ping world: one event chain of fixed length.
struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_nanos(10), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("event_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(Chain { remaining: n });
                eng.schedule(SimTime::ZERO, ());
                eng.run_to_idle();
                assert_eq!(eng.events_handled(), n + 1);
            });
        });
    }
    g.finish();
}

/// A fan world: many interleaved timers (stresses the heap).
struct Fan {
    remaining: u64,
}

impl World for Fan {
    type Event = u64;
    fn handle(&mut self, ev: u64, sched: &mut Scheduler<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_nanos(7 + ev % 13), ev + 1);
        }
    }
}

fn bench_heap_pressure(c: &mut Criterion) {
    c.bench_function("engine/heap_64_streams_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Fan { remaining: 100_000 });
            for i in 0..64 {
                eng.schedule(SimTime::from_nanos(i), i);
            }
            eng.run_to_idle();
        });
    });
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    for &nodes in &[16u32, 128] {
        g.bench_with_input(
            BenchmarkId::new("inject_4kb", nodes),
            &nodes,
            |b, &nodes| {
                let topo = Topology::for_nodes(nodes);
                let pkt = Packet {
                    src: NodeId(0),
                    dst: NodeId(nodes - 1),
                    kind: PacketKind::Data {
                        port: PortId(0),
                        src_port: PortId(0),
                        seq: 0,
                        offset: 0,
                        msg_len: 4096,
                        tag: 0,
                    },
                    payload: bytes::Bytes::from(vec![0u8; 4096]),
                };
                b.iter_batched(
                    || Fabric::new(topo.clone(), 1),
                    |mut f| {
                        let mut t = SimTime::ZERO;
                        for _ in 0..1_000 {
                            let v = f.inject(t, &pkt);
                            t = v.src_free();
                        }
                        f
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine, bench_heap_pressure, bench_fabric);
criterion_main!(benches);
