//! Criterion microbenches of the simulation substrate: raw event-dispatch
//! throughput, queue implementations head-to-head, route lookup cost, and
//! fabric injection cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gm_sim::{Engine, EventQueue, QueueKind, Scheduler, SimDuration, SimTime, World};
use myrinet::{Fabric, NodeId, Packet, PacketKind, PortId, Topology};

/// A ping world: one event chain of fixed length.
struct Chain {
    remaining: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_nanos(10), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("event_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(Chain { remaining: n });
                eng.schedule(SimTime::ZERO, ());
                eng.run_to_idle();
                assert_eq!(eng.events_handled(), n + 1);
            });
        });
    }
    g.finish();
}

/// A fan world: many interleaved timers. `scale_ns` stretches the timer
/// distribution: 1 gives sub-bucket nanosecond chains (worst case for the
/// wheel queue — everything lands in its active heap), while fabric-scale
/// values spread timers the way packet serialization (36 ns–65 µs at
/// 250 MB/s), hop delay (300 ns) and host overheads (µs) do in real runs.
struct Fan {
    remaining: u64,
    scale_ns: u64,
}

impl World for Fan {
    type Event = u64;
    fn handle(&mut self, ev: u64, sched: &mut Scheduler<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_nanos((7 + ev % 13) * self.scale_ns), ev + 1);
        }
    }
}

fn bench_heap_pressure(c: &mut Criterion) {
    // Same interleaved-timer world on both queue implementations, in one
    // process so the comparison is unaffected by machine drift between runs.
    // The fabric-scale pair (timers spread over ~0.9–250 µs, the simulator's
    // real event horizon) is the dispatch-rate number perf_baseline.json
    // tracks; the ns pair documents the wheel's worst case (sub-bucket
    // chains where it degenerates to a heap plus bookkeeping).
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(100_064));
    for (kind, qlabel) in [(QueueKind::Wheel, "wheel"), (QueueKind::Heap, "heap")] {
        for (scale_ns, slabel) in [(13_000u64, "fabric_scale"), (1, "ns_scale")] {
            g.bench_function(format!("dispatch_64_streams_{slabel}_{qlabel}"), |b| {
                b.iter(|| {
                    let mut eng =
                        Engine::with_queue_kind(Fan { remaining: 100_000, scale_ns }, kind);
                    for i in 0..64 {
                        eng.schedule(SimTime::from_nanos(i), i);
                    }
                    eng.run_to_idle();
                    assert_eq!(eng.events_handled(), 100_064);
                });
            });
        }
    }
    g.finish();
}

/// Steady-state queue churn: `pending` events in flight; each step pops the
/// earliest and schedules a replacement a pseudo-random short delay later.
/// This is the event-queue access pattern of a busy simulation, isolated
/// from world dispatch cost — the headline wheel-vs-heap comparison.
fn queue_churn(kind: QueueKind, pending: u64, steps: u64) -> u64 {
    let mut q = EventQueue::with_kind(kind);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..pending {
        q.push(SimTime::from_nanos(rnd() % 1_000_000), i);
    }
    let mut acc = 0u64;
    for i in 0..steps {
        let (t, ev) = q.pop().expect("steady state");
        acc = acc.wrapping_add(ev);
        // Mostly short horizons with an occasional far-future outlier,
        // mirroring packet timings vs retransmission timers.
        let delta = if rnd() % 64 == 0 {
            5_000_000 + rnd() % 5_000_000
        } else {
            rnd() % 20_000
        };
        q.push(SimTime::from_nanos(t.as_nanos() + delta), pending + i);
    }
    acc
}

fn bench_queue_kinds(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    for &pending in &[64u64, 1_024, 16_384] {
        let steps = 100_000u64;
        g.throughput(Throughput::Elements(steps));
        for (kind, label) in [(QueueKind::Wheel, "wheel"), (QueueKind::Heap, "heap")] {
            g.bench_with_input(
                BenchmarkId::new(format!("churn_{label}"), pending),
                &pending,
                |b, &pending| {
                    b.iter(|| queue_churn(kind, pending, steps));
                },
            );
        }
    }
    g.finish();
}

fn bench_route_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("route");
    for &nodes in &[16u32, 128] {
        let topo = Topology::for_nodes(nodes);
        let table = topo.route_table();
        // Visit every ordered pair once per iteration.
        let pairs: Vec<(NodeId, NodeId)> = (0..nodes)
            .flat_map(|a| {
                (0..nodes)
                    .filter(move |&b| a != b)
                    .map(move |b| (NodeId(a), NodeId(b)))
            })
            .collect();
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("on_demand_vec", nodes),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &(s, d) in pairs {
                        acc += topo.route(s, d).len();
                    }
                    acc
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("interned_slice", nodes),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut acc = 0usize;
                    for &(s, d) in pairs {
                        acc += table.route(s, d).len();
                    }
                    acc
                });
            },
        );
    }
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    for &nodes in &[16u32, 128] {
        g.bench_with_input(
            BenchmarkId::new("inject_4kb", nodes),
            &nodes,
            |b, &nodes| {
                let topo = Topology::for_nodes(nodes);
                let pkt = Packet {
                    src: NodeId(0),
                    dst: NodeId(nodes - 1),
                    kind: PacketKind::Data {
                        port: PortId(0),
                        src_port: PortId(0),
                        seq: 0,
                        offset: 0,
                        msg_len: 4096,
                        tag: 0,
                    },
                    payload: bytes::Bytes::from(vec![0u8; 4096]),
                };
                b.iter_batched(
                    || Fabric::new(topo.clone(), 1),
                    |mut f| {
                        let mut t = SimTime::ZERO;
                        for _ in 0..1_000 {
                            let v = f.inject(t, &pkt);
                            t = v.src_free();
                        }
                        f
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_heap_pressure,
    bench_queue_kinds,
    bench_route_lookup,
    bench_fabric
);
criterion_main!(benches);
