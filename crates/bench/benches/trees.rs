//! Criterion microbenches of host-side spanning-tree construction — the
//! part of the protocol the paper deliberately placed on the host because
//! "the NIC processor is typically much slower than the host processor".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_sim::SimDuration;
use myrinet::NodeId;
use nic_mcast::{PostalParams, SpanningTree, TreeShape};

fn dests(n: u32) -> Vec<NodeId> {
    (1..n).map(NodeId).collect()
}

fn bench_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    for &n in &[16u32, 128, 1024] {
        let d = dests(n);
        g.bench_with_input(BenchmarkId::new("binomial", n), &d, |b, d| {
            b.iter(|| SpanningTree::build(NodeId(0), d, TreeShape::Binomial));
        });
        g.bench_with_input(BenchmarkId::new("postal", n), &d, |b, d| {
            let p = PostalParams::new(
                SimDuration::from_micros(7),
                SimDuration::from_nanos(600),
            );
            b.iter(|| SpanningTree::build(NodeId(0), d, TreeShape::Postal(p)));
        });
        g.bench_with_input(BenchmarkId::new("kary2", n), &d, |b, d| {
            b.iter(|| SpanningTree::build(NodeId(0), d, TreeShape::KAry(2)));
        });
    }
    g.finish();
}

fn bench_coverage(c: &mut Criterion) {
    c.bench_function("tree_build/min_makespan_10k_lambda5", |b| {
        b.iter(|| nic_mcast::min_makespan(10_000, 5));
    });
}

criterion_group!(benches, bench_builders, bench_coverage);
criterion_main!(benches);
