//! Ablation: per-packet acknowledgments (GM-2-alpha behaviour, what the
//! paper ran on) vs coalesced cumulative acks. Coalescing cuts control
//! traffic on bulk transfers but delays the sender's completion notice —
//! a classic protocol trade-off worth quantifying on this substrate.

use bench::{par_map, us, CliOpts, Table};
use gm::GmParams;
use gm_sim::SimDuration;
use nic_mcast::{AckMode, Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    coalesce_us: u64,
    latency_us: f64,
    completion_us: f64,
    acks: u64,
    coalesced: u64,
}

/// Host-based multicast of 16KB over 8 nodes: latency to the probe plus
/// the root's completion time (NIC-level acks), total ack packets, and
/// how many acknowledgments merged into an already-pending flush.
fn measure(coalesce_us: u64, iters: u32, warmup: u32) -> (f64, f64, u64, u64) {
    let run_with = |ack: AckMode| {
        let params = GmParams {
            ack_coalesce: SimDuration::from_micros(coalesce_us),
            ..GmParams::default()
        };
        let rep = Scenario::host_based(8)
            .size(16 * 1024)
            .tree(TreeShape::Binomial)
            .ack(ack)
            .warmup(warmup)
            .iters(iters)
            .params(params)
            .run();
        let acks = rep.metrics.get("nic.tx_acks");
        let coalesced = rep.metrics.get("nic.acks_coalesced");
        (rep.latency.mean(), acks, coalesced)
    };
    let (latency, acks, coalesced) = run_with(AckMode::ProbeReply);
    let (completion, _, _) = run_with(AckMode::NicAck);
    (latency, completion, acks, coalesced)
}

fn main() {
    let opts = CliOpts::parse();
    let results: Vec<Point> = par_map(vec![0u64, 10, 30, 100, 300], |&coalesce_us| {
        let (latency_us, completion_us, acks, coalesced) =
            measure(coalesce_us, opts.iters, opts.warmup);
        Point {
            coalesce_us,
            latency_us,
            completion_us,
            acks,
            coalesced,
        }
    });
    let mut t = Table::new(
        "Ack-coalescing ablation: 16KB host-based multicast, 8 nodes",
        &[
            "coalesce (us)",
            "delivery (us)",
            "send completion (us)",
            "ack packets",
            "acks merged",
        ],
    );
    for p in &results {
        t.row(vec![
            p.coalesce_us.to_string(),
            us(p.latency_us),
            us(p.completion_us),
            p.acks.to_string(),
            p.coalesced.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nCoalescing barely moves delivery latency (data packets pipeline\n\
         regardless) while cutting ack packets several-fold; the cost shows\n\
         in the sender's completion time, which waits for the flushed\n\
         cumulative ack."
    );
    bench::write_json("ablation_ack_coalesce", &results);
}
