//! Ablation: where a forwarding NIC gets its transmit token (paper §5
//! "Messages Forwarding", first design issue).
//!
//! The paper transforms the receive token into a send token because
//! grabbing one from the free pool "can lead to the possibility of deadlock
//! when the intermediate nodes are running out of send tokens". We compare
//! both policies while shrinking the send-token pool: the transform policy
//! is immune; the free-pool policy stalls forwarding whenever the pool runs
//! dry (visible as `mcast_fwd_token_stall` events and inflated latency).

use bench::{par_map, us, CliOpts, Table};
use gm::GmParams;
use nic_mcast::{FwdTokenPolicy, McastConfig, Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    send_tokens: usize,
    transform_us: f64,
    freepool_us: f64,
    freepool_stalls: u64,
}

fn measure(tokens: usize, policy: FwdTokenPolicy, iters: u32, warmup: u32) -> (f64, u64) {
    let params = GmParams {
        send_tokens: tokens,
        ..GmParams::default()
    };
    let rep = Scenario::nic_based(16)
        .size(8192)
        .tree(TreeShape::Binomial)
        .warmup(warmup)
        .iters(iters)
        .params(params)
        .config(McastConfig {
            fwd_token: policy,
            ..McastConfig::default()
        })
        .run();
    (rep.latency.mean(), rep.metrics.get("nic.mcast_fwd_token_stall"))
}

fn main() {
    let opts = CliOpts::parse();
    let results: Vec<Point> = par_map(vec![64usize, 8, 4, 2, 1], |&tokens| {
        let (transform_us, tstalls) =
            measure(tokens, FwdTokenPolicy::TransformRecv, opts.iters, opts.warmup);
        assert_eq!(tstalls, 0, "transform policy never touches the pool");
        let (freepool_us, freepool_stalls) =
            measure(tokens, FwdTokenPolicy::FreePool, opts.iters, opts.warmup);
        Point {
            send_tokens: tokens,
            transform_us,
            freepool_us,
            freepool_stalls,
        }
    });

    let mut t = Table::new(
        "Forward-token ablation: 8KB multicast over 16 nodes",
        &["send tokens", "transform (us)", "free pool (us)", "pool stalls"],
    );
    for p in &results {
        t.row(vec![
            p.send_tokens.to_string(),
            us(p.transform_us),
            us(p.freepool_us),
            p.freepool_stalls.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nThe receive-token transformation (the paper's choice) is insensitive\n\
         to pool size; the free-pool policy stalls forwarding as tokens dry up."
    );
    bench::write_json("ablation_token", &results);
}
