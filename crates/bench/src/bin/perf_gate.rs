//! CI perf-regression gate: compare a freshly recorded dispatch rate in
//! `results/perf_baseline.json` against a pre-run snapshot of the same
//! file and fail when the rate dropped by more than the allowed fraction.
//!
//! ```console
//! cp results/perf_baseline.json /tmp/perf_before.json
//! cargo run --release -p bench --bin ext_scalability -- --iters 10
//! cargo run --release -p bench --bin perf_gate -- \
//!     ext_scalability /tmp/perf_before.json results/perf_baseline.json 0.25
//! ```
//!
//! Rates compare per-key `events_per_sec` (a rate, so baseline and gate
//! runs may use different iteration counts). A missing key on either side
//! passes with a note — a new binary has no baseline yet. The gate also
//! refuses to compare across different `cores` counts: a single-core CI
//! runner measuring a 4-shard record from a 16-core box would always
//! "regress".

use serde::Value;

fn field<'a>(map: &'a Value, name: &str) -> Option<&'a Value> {
    match map {
        Value::Map(m) => m.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {path}: {e}");
        std::process::exit(2)
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: {path} is not valid JSON: {e}");
        std::process::exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (key, before_path, after_path) = match &args[..] {
        [_, k, b, a] | [_, k, b, a, _] => (k.as_str(), b.as_str(), a.as_str()),
        _ => {
            eprintln!("usage: perf_gate <key> <baseline.json> <current.json> [max-regression]");
            std::process::exit(2)
        }
    };
    let max_regress: f64 = args
        .get(4)
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("perf_gate: bad max-regression {s:?}");
                std::process::exit(2)
            })
        })
        .unwrap_or(0.25);

    let before = load(before_path);
    let after = load(after_path);
    let (Some(b), Some(a)) = (field(&before, key), field(&after, key)) else {
        println!("perf_gate: no `{key}` entry on both sides — nothing to compare, passing");
        return;
    };
    let (Some(rate_b), Some(rate_a)) = (
        field(b, "events_per_sec").and_then(as_f64),
        field(a, "events_per_sec").and_then(as_f64),
    ) else {
        println!("perf_gate: `{key}` lacks events_per_sec on one side, passing");
        return;
    };
    if let (Some(cores_b), Some(cores_a)) = (
        field(b, "cores").and_then(as_f64),
        field(a, "cores").and_then(as_f64),
    ) {
        if cores_b != cores_a {
            println!(
                "perf_gate: `{key}` recorded on {cores_b}-core vs {cores_a}-core hosts — \
                 not comparable, passing"
            );
            return;
        }
    }
    let ratio = rate_a / rate_b;
    println!(
        "perf_gate: `{key}` {rate_a:.0} ev/s vs baseline {rate_b:.0} ev/s ({:+.1}%)",
        (ratio - 1.0) * 100.0
    );
    if ratio < 1.0 - max_regress {
        eprintln!(
            "perf_gate: FAIL — dispatch rate regressed more than {:.0}% \
             (set MYRI_CI_NO_PERF=1 to skip the gate)",
            max_regress * 100.0
        );
        std::process::exit(1);
    }
    println!("perf_gate: OK (allowed regression {:.0}%)", max_regress * 100.0);
}
