//! Ablation: retransmission data source at forwarding NICs (paper §5
//! "Messages Forwarding", second design issue).
//!
//! The "naive solution" holds the NIC receive buffer until every child has
//! acknowledged — but "the NIC receive buffer is a limited resource, and
//! holding on to one or more receive buffers will slow down the receiver or
//! even block the network". The paper instead frees the buffer when
//! forwarding completes and retransmits from the registered host-memory
//! replica. We shrink the receive-buffer pool and stream back-to-back
//! multicasts: the hold-SRAM policy exhausts buffers (visible as
//! `rx_drop_no_sram` drops and timeout recoveries), the host-memory policy
//! does not.

use bench::{par_map, us, CliOpts, Table};
use nic_mcast::{build_cluster, McastConfig, McastMode, McastRun, RetxBufferPolicy, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    recv_buffers: usize,
    host_memory_us: f64,
    hold_sram_us: f64,
    hold_sram_drops: u64,
    host_memory_drops: u64,
}

fn measure(bufs: usize, policy: RetxBufferPolicy, iters: u32, warmup: u32) -> (f64, u64) {
    let mut run = McastRun::new(16, 16384, McastMode::NicBased, TreeShape::Binomial);
    run.warmup = warmup;
    run.iters = iters;
    // Mild loss delays some acknowledgments by the 1 ms timeout, so the
    // hold-SRAM policy keeps buffers pinned long enough to starve the pool.
    run.faults = myrinet::FaultPlan::with_loss(0.01);
    run.params.recv_buffers = bufs;
    run.config = McastConfig {
        retx_buffer: policy,
        ..McastConfig::default()
    };
    let (cluster, shared) = build_cluster(&run);
    let mut eng = cluster.into_engine();
    eng.run_to_idle();
    let drops: u64 = (0..run.n_nodes)
        .map(|i| {
            eng.world()
                .nic(myrinet::NodeId(i))
                .counters
                .get("rx_drop_no_sram")
        })
        .sum();
    let s = shared.borrow();
    assert_eq!(s.iters_done, iters, "run incomplete");
    (s.latency.mean(), drops)
}

fn main() {
    let opts = CliOpts::parse();
    let results: Vec<Point> = par_map(vec![64usize, 12, 8, 6], |&bufs| {
        let (host_memory_us, host_memory_drops) =
            measure(bufs, RetxBufferPolicy::HostMemory, opts.iters, opts.warmup);

        let (hold_sram_us, hold_sram_drops) =
            measure(bufs, RetxBufferPolicy::HoldSram, opts.iters, opts.warmup);
        Point {
            recv_buffers: bufs,
            host_memory_us,
            hold_sram_us,
            hold_sram_drops,
            host_memory_drops,
        }
    });

    let mut t = Table::new(
        "Retransmit-buffer ablation: 16KB multicast over 16 nodes",
        &[
            "recv bufs",
            "host-mem (us)",
            "hold-SRAM (us)",
            "host-mem drops",
            "hold-SRAM drops",
        ],
    );
    for p in &results {
        t.row(vec![
            p.recv_buffers.to_string(),
            us(p.host_memory_us),
            us(p.hold_sram_us),
            p.host_memory_drops.to_string(),
            p.hold_sram_drops.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nHolding SRAM buffers until children ack starves the receive path as\n\
         the pool shrinks; retransmitting from host memory (the paper's choice)\n\
         keeps the pipeline full."
    );
    bench::write_json("ablation_retx_buffer", &results);
}
