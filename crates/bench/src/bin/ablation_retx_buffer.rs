//! Ablation: retransmission data source at forwarding NICs (paper §5
//! "Messages Forwarding", second design issue).
//!
//! The "naive solution" holds the NIC receive buffer until every child has
//! acknowledged — but "the NIC receive buffer is a limited resource, and
//! holding on to one or more receive buffers will slow down the receiver or
//! even block the network". The paper instead frees the buffer when
//! forwarding completes and retransmits from the registered host-memory
//! replica. We shrink the receive-buffer pool and stream back-to-back
//! multicasts: the hold-SRAM policy exhausts buffers (visible as
//! `rx_drop_no_sram` drops and timeout recoveries), the host-memory policy
//! does not.

use bench::{par_map, us, CliOpts, Table};
use gm::GmParams;
use nic_mcast::{McastConfig, RetxBufferPolicy, Scenario, TreeShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    recv_buffers: usize,
    host_memory_us: f64,
    hold_sram_us: f64,
    hold_sram_drops: u64,
    host_memory_drops: u64,
}

fn measure(bufs: usize, policy: RetxBufferPolicy, iters: u32, warmup: u32) -> (f64, u64) {
    let params = GmParams {
        recv_buffers: bufs,
        ..GmParams::default()
    };
    // Mild loss delays some acknowledgments by the 1 ms timeout, so the
    // hold-SRAM policy keeps buffers pinned long enough to starve the pool.
    let rep = Scenario::nic_based(16)
        .size(16384)
        .tree(TreeShape::Binomial)
        .warmup(warmup)
        .iters(iters)
        .loss(0.01)
        .params(params)
        .config(McastConfig {
            retx_buffer: policy,
            ..McastConfig::default()
        })
        .run();
    (rep.latency.mean(), rep.metrics.get("nic.rx_drop_no_sram"))
}

fn main() {
    let opts = CliOpts::parse();
    let results: Vec<Point> = par_map(vec![64usize, 12, 8, 6], |&bufs| {
        let (host_memory_us, host_memory_drops) =
            measure(bufs, RetxBufferPolicy::HostMemory, opts.iters, opts.warmup);

        let (hold_sram_us, hold_sram_drops) =
            measure(bufs, RetxBufferPolicy::HoldSram, opts.iters, opts.warmup);
        Point {
            recv_buffers: bufs,
            host_memory_us,
            hold_sram_us,
            hold_sram_drops,
            host_memory_drops,
        }
    });

    let mut t = Table::new(
        "Retransmit-buffer ablation: 16KB multicast over 16 nodes",
        &[
            "recv bufs",
            "host-mem (us)",
            "hold-SRAM (us)",
            "host-mem drops",
            "hold-SRAM drops",
        ],
    );
    for p in &results {
        t.row(vec![
            p.recv_buffers.to_string(),
            us(p.host_memory_us),
            us(p.hold_sram_us),
            p.host_memory_drops.to_string(),
            p.hold_sram_drops.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nHolding SRAM buffers until children ack starves the receive path as\n\
         the pool shrinks; retransmitting from host memory (the paper's choice)\n\
         keeps the pipeline full."
    );
    bench::write_json("ablation_retx_buffer", &results);
}
